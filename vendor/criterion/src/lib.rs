//! Minimal, API-compatible stand-in for `criterion` for offline builds
//! (see `vendor/README.md`).
//!
//! Benchmarks compile and run with plain mean-time reporting (no
//! statistics, no plots). Pass `--bench` on the command line as the real
//! harness does; every other flag is ignored.

use std::fmt;
use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for compatibility; ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an ID from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an ID from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by the `iter*` calls.
    mean_nanos: f64,
    iters_done: u64,
    measure_for: Duration,
}

impl Bencher {
    fn new(measure_for: Duration) -> Self {
        Bencher {
            mean_nanos: 0.0,
            iters_done: 0,
            measure_for,
        }
    }

    /// Times `routine` over repeated calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: one call, also provides a duration estimate.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();

        let budget = self.measure_for;
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget || iters < 10 {
            black_box(routine());
            iters += 1;
            if iters >= 10_000_000 {
                break;
            }
        }
        let total = start.elapsed() + first;
        self.iters_done = iters + 1;
        self.mean_nanos = total.as_nanos() as f64 / self.iters_done as f64;
    }

    /// Times `routine` over inputs produced by `setup`; only `routine` is
    /// on the clock.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let budget = self.measure_for;
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        while (timed < budget || iters < 10) && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
            // Bail out early when a single iteration blows the budget —
            // probe-style benchmarks run whole workloads per iteration.
            if iters >= 10 && timed > budget * 4 {
                break;
            }
        }
        self.iters_done = iters;
        self.mean_nanos = timed.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn report(group: &str, name: &str, bencher: &Bencher) {
    let mean = bencher.mean_nanos;
    let human = if mean >= 1e9 {
        format!("{:.3} s", mean / 1e9)
    } else if mean >= 1e6 {
        format!("{:.3} ms", mean / 1e6)
    } else if mean >= 1e3 {
        format!("{:.3} us", mean / 1e3)
    } else {
        format!("{mean:.1} ns")
    };
    println!(
        "{group}/{name}: {human}/iter ({} iters)",
        bencher.iters_done
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; scales the per-benchmark time budget.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // Fewer samples => caller expects slow iterations; keep the budget
        // proportional so whole-workload benches stay fast.
        self.sample_budget = Duration::from_millis((samples as u64).clamp(5, 100) * 10);
        self
    }

    /// Accepted for compatibility; ignored.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.sample_budget = budget;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        let mut bencher = Bencher::new(self.sample_budget);
        f(&mut bencher);
        report(&self.name, &id.to_string(), &bencher);
        let _ = self.criterion;
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        let mut bencher = Bencher::new(self.sample_budget);
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_budget: self.default_budget,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        let mut bencher = Bencher::new(self.default_budget);
        f(&mut bencher);
        report("bench", &name.to_string(), &bencher);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loops_produce_positive_means() {
        let mut criterion = Criterion {
            default_budget: Duration::from_millis(5),
        };
        let mut group = criterion.benchmark_group("test");
        group.sample_size(10);
        group.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("batched", 1), &1u64, |b, &n| {
            b.iter_batched(|| n, |x| x + 1, BatchSize::LargeInput)
        });
        group.finish();
    }

    #[test]
    fn ids_render_name_and_parameter() {
        assert_eq!(BenchmarkId::new("read", "si").to_string(), "read/si");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
