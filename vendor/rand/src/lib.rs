//! Minimal, API-compatible stand-in for `rand` 0.8 for offline builds
//! (see `vendor/README.md`).
//!
//! Provides [`rngs::StdRng`] (a SplitMix64/xoshiro-style generator — fast,
//! deterministic, NOT cryptographically secure) plus the [`Rng`] and
//! [`SeedableRng`] traits with the `gen_range` / `gen_bool` / `gen`
//! methods this workspace uses.

/// Sampling ranges for [`Rng::gen_range`].
pub mod distributions {
    use std::ops::{Range, RangeInclusive};

    /// A half-open or inclusive integer/float range that can be sampled.
    pub trait SampleRange<T> {
        /// Bounds as (low, high, inclusive).
        fn bounds(self) -> (T, T, bool);
    }

    macro_rules! impl_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn bounds(self) -> ($t, $t, bool) {
                    (self.start, self.end, false)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn bounds(self) -> ($t, $t, bool) {
                    (*self.start(), *self.end(), true)
                }
            }
        )*};
    }

    impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);
}

/// A value that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `next_u64` outputs.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: distributions::SampleRange<T>,
    {
        let (low, high, inclusive) = range.bounds();
        T::sample(self, low, high, inclusive)
    }

    /// Returns `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        f64::from_rng(self) < p
    }

    /// Draws one uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer/float types uniform-sampleable by [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample in `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (high as u128).wrapping_sub(low as u128).wrapping_add(1)
                } else {
                    assert!(low < high, "gen_range: empty range");
                    (high as u128) - (low as u128)
                };
                if span == 0 {
                    // Inclusive full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                let value = ((rng.next_u64() as u128) % span) as $t;
                low.wrapping_add(value)
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self {
                let ulow = low as $u;
                let uhigh = high as $u;
                let span = if inclusive {
                    uhigh.wrapping_sub(ulow).wrapping_add(1) as u128
                } else {
                    assert!(low < high, "gen_range: empty range");
                    uhigh.wrapping_sub(ulow) as u128
                };
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let value = ((rng.next_u64() as u128) % span) as $u;
                ulow.wrapping_add(value) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl UniformInt for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, _inclusive: bool) -> Self {
        low + f64::from_rng(rng) * (high - low)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS entropy (here: clock + address).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9);
        let local = 0u8;
        Self::seed_from_u64(t ^ (&local as *const u8 as u64))
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// SplitMix64, matching the statistical quality the workloads need.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let x = rng.gen_range(0..=3u32);
            assert!(x <= 3);
            let f = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn distribution_covers_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
