//! Minimal, API-compatible stand-in for `proptest` for offline builds
//! (see `vendor/README.md`).
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with an
//! optional `proptest_config`, integer/float range strategies, tuple
//! strategies, [`collection::vec`], [`option::of`], `num::<int>::ANY`,
//! simple `[class]{m,n}` regex string strategies, [`prop_oneof!`],
//! `prop_map`, [`Just`], and the `prop_assert*` macros.
//!
//! Failing inputs are reported (case number and `Debug` of the generated
//! values where available) but NOT shrunk.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returning a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Boxes a strategy for use in a [`Union`] (used by `prop_oneof!`).
    pub fn boxed<T, S>(strategy: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(strategy)
    }

    /// Weighted union of boxed strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Creates a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof: all weights are zero");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total_weight;
            for (weight, strat) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strat.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of bounds")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let offset = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + offset) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi - lo + 1;
                    let offset = (rng.next_u64() as i128).rem_euclid(span);
                    (lo + offset) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// A `[class]{m,n}`-subset regex string strategy (what `&str` patterns
    /// in this workspace use). Unsupported patterns panic at generation.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_repeat(self).unwrap_or_else(|| {
                panic!(
                    "unsupported regex strategy {self:?} (stub supports only \"[class]{{m,n}}\")"
                )
            });
            let span = (max - min + 1) as u64;
            let len = min + (rng.next_u64() % span) as usize;
            (0..len)
                .map(|_| alphabet[(rng.next_u64() % alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let repeat = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .split_once(',')?;
        let min = repeat.0.trim().parse().ok()?;
        let max = repeat.1.trim().parse().ok()?;
        if min > max {
            return None;
        }
        Some((alphabet, min, max))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds of a generated collection.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (50% `Some`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` or a value drawn from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod num {
    macro_rules! any_int_module {
        ($($mod_name:ident: $t:ty),*) => {$(
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Full-range strategy for this integer type.
                #[derive(Clone, Copy, Debug)]
                pub struct Any;

                /// Generates any value of the type, uniformly.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    any_int_module!(u8: u8, u16: u16, u32: u32, u64: u64, i8: i8, i16: i16, i32: i32, i64: i64);
}

pub mod test_runner {
    /// Deterministic generator driving the stub strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next uniformly random 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// FNV-1a hash of a test name, used to derive per-test seeds.
    pub fn name_seed(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; ignored.
    pub verbose: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            verbose: 0,
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::seed(
                $crate::test_runner::name_seed(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest stub: case {}/{} of {} failed (no shrinking)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Like `assert!`, inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Like `assert_eq!`, inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Like `assert_ne!`, inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1u32 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed(1);
        for _ in 0..1_000 {
            let v = (0u8..2, 0u64..50).generate(&mut rng);
            assert!(v.0 < 2 && v.1 < 50);
            let w = (0..4usize, -1000i64..1000).generate(&mut rng);
            assert!(w.0 < 4 && (-1000..1000).contains(&w.1));
        }
    }

    #[test]
    fn vec_and_option_respect_sizes() {
        let mut rng = TestRng::seed(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            let o = crate::option::of(0u64..9).generate(&mut rng);
            if let Some(x) = o {
                assert!(x < 9);
            }
        }
    }

    #[test]
    fn regex_class_strategy() {
        let mut rng = TestRng::seed(3);
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 ]{0,100}".generate(&mut rng);
            assert!(s.len() <= 100);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn oneof_weights_bias_choice() {
        let mut rng = TestRng::seed(4);
        let strat = prop_oneof![
            9 => (0u8..1).prop_map(|_| true),
            1 => Just(false),
        ];
        let trues = (0..1_000).filter(|_| strat.generate(&mut rng)).count();
        assert!(trues > 800, "trues = {trues}");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(x in 0u64..100, v in crate::collection::vec(0i64..10, 0..=4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
