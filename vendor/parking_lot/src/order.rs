//! Runtime lock-order witness (compiled only under the `lock-order`
//! feature).
//!
//! Every ranked lock acquisition is checked against the acquiring
//! thread's held-set: a **blocking** acquisition must carry a rank
//! strictly greater than every rank the thread already holds, otherwise
//! the witness panics immediately — before the thread can park — naming
//! both acquisition sites. Ranks are static (assigned at construction
//! sites, see the README's lock-rank map), so the reachable
//! acquisition-order graph is a DAG by construction: an edge can only go
//! from a lower rank to a higher one.
//!
//! `try_lock` acquisitions are exempt from the panic — a non-blocking
//! acquisition can never contribute to a deadlock cycle, and the idle
//! session sweeper legitimately probes session locks "out of order" —
//! but they are still pushed onto the held-set and recorded in the
//! global graph, so [`assert_acyclic`] can audit whatever order they
//! introduced.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex as SysMutex;

use crate::UNRANKED;

/// One acquisition-order graph node: a ranked lock identity.
pub type GraphNode = (u32, &'static str);

/// One recorded edge: the first observed pair of acquisition sites for
/// (held lock → acquired lock).
pub type GraphEdge = ((GraphNode, GraphNode), (String, String));

#[derive(Clone, Copy)]
struct Held {
    rank: u32,
    name: &'static str,
    site: &'static Location<'static>,
    key: u64,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

static NEXT_KEY: AtomicU64 = AtomicU64::new(1);

/// The site pair first observed for an acquisition-order edge.
type EdgeSites = (&'static Location<'static>, &'static Location<'static>);

// The graph uses a raw std mutex: it must not recurse into the
// instrumented wrappers it observes.
static GRAPH: SysMutex<BTreeMap<(GraphNode, GraphNode), EdgeSites>> =
    SysMutex::new(BTreeMap::new());

/// Pops its held-set entry when the guard that owns it drops.
pub struct HeldToken {
    key: u64,
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        if self.key == 0 {
            return;
        }
        let key = self.key;
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            // Out-of-order guard drops are legal; search from the end
            // (the common LIFO case pops in O(1)).
            if let Some(pos) = held.iter().rposition(|h| h.key == key) {
                held.remove(pos);
            }
        });
    }
}

/// Records a blocking acquisition, panicking on a rank inversion before
/// the caller can park on the lock.
#[track_caller]
pub fn acquire_blocking(rank: u32, name: &'static str) -> HeldToken {
    acquire(rank, name, true)
}

/// Records a successful `try_lock` acquisition. Never panics: an
/// acquisition that cannot block cannot deadlock.
#[track_caller]
pub fn acquire_try(rank: u32, name: &'static str) -> HeldToken {
    acquire(rank, name, false)
}

#[track_caller]
fn acquire(rank: u32, name: &'static str, blocking: bool) -> HeldToken {
    if rank == UNRANKED {
        return HeldToken { key: 0 };
    }
    let site = Location::caller();
    HELD.with(|held| {
        {
            let held = held.borrow();
            for h in held.iter() {
                record_edge((h.rank, h.name), (rank, name), h.site, site);
            }
            if blocking {
                if let Some(h) = held.iter().find(|h| h.rank >= rank) {
                    panic!(
                        "lock-order violation: blocking on \"{name}\" (rank {rank}) at {site} \
                         while holding \"{held_name}\" (rank {held_rank}) acquired at {held_site}",
                        held_name = h.name,
                        held_rank = h.rank,
                        held_site = h.site,
                    );
                }
            }
        }
        let key = NEXT_KEY.fetch_add(1, Ordering::Relaxed);
        held.borrow_mut().push(Held {
            rank,
            name,
            site,
            key,
        });
        HeldToken { key }
    })
}

fn record_edge(
    from: GraphNode,
    to: GraphNode,
    from_site: &'static Location<'static>,
    to_site: &'static Location<'static>,
) {
    let mut graph = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
    graph.entry((from, to)).or_insert((from_site, to_site));
}

/// Every acquisition-order edge observed so far, with the first pair of
/// sites that produced it. Ordered by (held, acquired) node.
pub fn edges() -> Vec<GraphEdge> {
    let graph = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
    graph
        .iter()
        .map(|(&(from, to), &(fs, ts))| ((from, to), (fs.to_string(), ts.to_string())))
        .collect()
}

/// Ranks currently held by the calling thread (rank, name, site), in
/// acquisition order. Intended for tests and diagnostics.
pub fn held_by_current_thread() -> Vec<(u32, &'static str, String)> {
    HELD.with(|held| {
        held.borrow()
            .iter()
            .map(|h| (h.rank, h.name, h.site.to_string()))
            .collect()
    })
}

/// Audits the global acquisition-order graph for cycles and panics with
/// the offending edge list if one exists. Blocking acquisitions cannot
/// create a cycle (they are forced rank-ascending), so a cycle here can
/// only come from `try_lock` edges — which is exactly what this audit is
/// for.
pub fn assert_acyclic() {
    let graph = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
    let mut adj: BTreeMap<GraphNode, Vec<GraphNode>> = BTreeMap::new();
    for &(from, to) in graph.keys() {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    // Iterative DFS three-colour cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour: BTreeMap<GraphNode, Colour> = adj.keys().map(|&n| (n, Colour::White)).collect();
    for &start in adj.keys() {
        if colour[&start] != Colour::White {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        colour.insert(start, Colour::Grey);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let children = &adj[&node];
            if *next < children.len() {
                let child = children[*next];
                *next += 1;
                match colour[&child] {
                    Colour::White => {
                        colour.insert(child, Colour::Grey);
                        stack.push((child, 0));
                    }
                    Colour::Grey => {
                        let cycle: Vec<String> = stack
                            .iter()
                            .map(|&(n, _)| format!("{} (rank {})", n.1, n.0))
                            .chain(std::iter::once(format!("{} (rank {})", child.1, child.0)))
                            .collect();
                        panic!("lock acquisition graph has a cycle: {}", cycle.join(" -> "));
                    }
                    Colour::Black => {}
                }
            } else {
                colour.insert(node, Colour::Black);
                stack.pop();
            }
        }
    }
}
