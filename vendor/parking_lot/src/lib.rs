//! Minimal, API-compatible stand-in for `parking_lot` built on
//! `std::sync`, for offline builds (see `vendor/README.md`).
//!
//! Differences from the real crate: poisoning is ignored (a poisoned lock
//! is recovered transparently), and only the subset of the API used by
//! this workspace is provided.
//!
//! # Lock-order witness (`lock-order` feature)
//!
//! Because this workspace owns its `parking_lot`, it can carry the
//! correctness tooling the real crate cannot: with the `lock-order`
//! feature enabled, locks constructed through [`Mutex::with_rank`] /
//! [`RwLock::with_rank`] participate in a runtime lock-order witness.
//! Every ranked acquisition is recorded in a per-thread held-set and in a
//! global acquisition-order graph, and a *blocking* acquisition whose
//! rank is not strictly greater than every rank already held panics
//! immediately — naming both acquisition sites — instead of deadlocking
//! some day in production. `try_lock` acquisitions are exempt from the
//! panic (they cannot deadlock) but are still recorded, so the graph and
//! [`order::assert_acyclic`] observe them. Locks built with the plain
//! constructors are unranked and invisible to the witness.
//!
//! With the feature disabled every witness field and check compiles away.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

#[cfg(feature = "lock-order")]
pub mod order;

#[cfg(feature = "lock-order")]
use order::HeldToken;

/// Rank given to locks constructed without [`Mutex::with_rank`] /
/// [`RwLock::with_rank`]; the witness ignores them entirely.
pub const UNRANKED: u32 = u32::MAX;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    rank: u32,
    #[cfg(feature = "lock-order")]
    name: &'static str,
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Declared before `inner` so the held-set entry pops before (well,
    // while) the lock is released.
    #[cfg(feature = "lock-order")]
    _held: HeldToken,
    // `Option` so that `Condvar::wait_until` can temporarily take the
    // underlying std guard by value. The held-set entry deliberately
    // survives a condvar wait: the parked thread acquires nothing while
    // parked, and it holds the lock again the moment `wait` returns.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new (unranked) mutex.
    pub const fn new(value: T) -> Self {
        Self::with_rank(value, UNRANKED, "unranked")
    }

    /// Creates a mutex carrying a static lock-order rank and a display
    /// name for the witness. A thread may only block on this lock while
    /// every lock it already holds has a strictly smaller rank. With the
    /// `lock-order` feature disabled, rank and name are discarded.
    pub const fn with_rank(value: T, rank: u32, name: &'static str) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = (rank, name);
        Mutex {
            #[cfg(feature = "lock-order")]
            rank,
            #[cfg(feature = "lock-order")]
            name,
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let held = order::acquire_blocking(self.rank, self.name);
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            #[cfg(feature = "lock-order")]
            _held: held,
            inner: Some(guard),
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            #[cfg(feature = "lock-order")]
            _held: order::acquire_try(self.rank, self.name),
            inner: Some(guard),
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken by condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with `parking_lot`'s guard-by-reference API.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or until `deadline`, whichever comes first.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    rank: u32,
    #[cfg(feature = "lock-order")]
    name: &'static str,
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    _held: HeldToken,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    _held: HeldToken,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new (unranked) reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self::with_rank(value, UNRANKED, "unranked")
    }

    /// Creates a reader-writer lock carrying a static lock-order rank and
    /// a display name for the witness (see [`Mutex::with_rank`]).
    pub const fn with_rank(value: T, rank: u32, name: &'static str) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = (rank, name);
        RwLock {
            #[cfg(feature = "lock-order")]
            rank,
            #[cfg(feature = "lock-order")]
            name,
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let held = order::acquire_blocking(self.rank, self.name);
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard {
            #[cfg(feature = "lock-order")]
            _held: held,
            inner: guard,
        }
    }

    /// Acquires an exclusive write lock.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        let held = order::acquire_blocking(self.rank, self.name);
        let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard {
            #[cfg(feature = "lock-order")]
            _held: held,
            inner: guard,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut guard = m.lock();
        let result = c.wait_until(&mut guard, Instant::now() + Duration::from_millis(10));
        assert!(result.timed_out());
        drop(guard);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        handle.join().unwrap();
    }

    #[cfg(feature = "lock-order")]
    mod witness {
        use super::super::*;

        #[test]
        fn ascending_ranks_are_quiet() {
            let a = Mutex::with_rank((), 10, "test.a");
            let b = Mutex::with_rank((), 20, "test.b");
            let _ga = a.lock();
            let _gb = b.lock();
        }

        #[test]
        fn inversion_panics_with_both_sites() {
            let result = std::thread::spawn(|| {
                let a = Mutex::with_rank((), 10, "test.low");
                let b = Mutex::with_rank((), 20, "test.high");
                let _gb = b.lock();
                let _ga = a.lock(); // rank 10 while holding rank 20: inversion
            })
            .join();
            let err = result.expect_err("inversion must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("test.low"), "missing acquiring lock: {msg}");
            assert!(msg.contains("test.high"), "missing held lock: {msg}");
            assert!(
                msg.matches("vendor/parking_lot/src/lib.rs").count() >= 2
                    || msg.matches(".rs:").count() >= 2,
                "both acquisition sites must be named: {msg}"
            );
        }

        #[test]
        fn try_lock_out_of_order_is_tolerated() {
            let a = Mutex::with_rank((), 10, "test.try_low");
            let b = Mutex::with_rank((), 20, "test.try_high");
            let _gb = b.lock();
            let ga = a.try_lock();
            assert!(ga.is_some(), "try_lock must not panic on inversion");
        }

        #[test]
        fn unranked_locks_are_invisible() {
            let ranked = Mutex::with_rank((), 50, "test.ranked");
            let unranked = Mutex::new(());
            let _g1 = ranked.lock();
            let _g2 = unranked.lock(); // no rank: never checked
            let again = Mutex::with_rank((), 10, "test.low_again");
            // Still panics against the ranked one, proving the unranked
            // acquisition did not clear the held-set.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = again.lock();
            }));
            assert!(result.is_err());
        }
    }
}
