//! Minimal, API-compatible stand-in for `parking_lot` built on
//! `std::sync`, for offline builds (see `vendor/README.md`).
//!
//! Differences from the real crate: poisoning is ignored (a poisoned lock
//! is recovered transparently), and only the subset of the API used by
//! this workspace is provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so that `Condvar::wait_until` can temporarily take the
    // underlying std guard by value.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard taken by condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with `parking_lot`'s guard-by-reference API.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already taken");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or until `deadline`, whichever comes first.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already taken");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner: guard }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner: guard }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut guard = m.lock();
        let result = c.wait_until(&mut guard, Instant::now() + Duration::from_millis(10));
        assert!(result.timed_out());
        drop(guard);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        handle.join().unwrap();
    }
}
