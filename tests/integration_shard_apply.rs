//! Per-shard stage-C store apply: commits whose footprints (node pages +
//! relationship chains) are disjoint flush through to the persistent store
//! concurrently, overlapping ones queue per shard — and either way the
//! store ends up exactly as a serial, commit-ts-ordered apply would leave
//! it.
//!
//! The store comparisons run over a checkpointed-then-reopened database:
//! the checkpoint truncates the WAL, so the asserted state comes from the
//! store files alone — a chain splice lost to a shard race could not hide
//! behind recovery replay.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, Direction, GraphDb, NodeId, PropertyValue, SyncPolicy};

fn sharded_config() -> DbConfig {
    DbConfig::default()
        .with_sync_policy(SyncPolicy::OnDemand)
        .with_group_commit_max_batch(16)
        .with_group_commit_max_delay(Duration::from_millis(2))
        .with_store_apply_shards(64)
}

/// One action of a writer's workload, confined to that writer's private
/// node set so footprints across writers are disjoint.
#[derive(Clone, Debug)]
enum Action {
    /// Set a property on the writer's `slot`-th node.
    Set { slot: usize, value: i64 },
    /// Create a relationship between two of the writer's nodes.
    Link { from: usize, to: usize },
    /// Delete the `nth` relationship this writer created (mod the number
    /// created so far; no-op when none exist yet).
    Unlink { nth: usize },
}

const SLOTS: usize = 4;

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0..SLOTS, -100i64..100).prop_map(|(slot, value)| Action::Set { slot, value }),
        3 => (0..SLOTS, 0..SLOTS).prop_map(|(from, to)| Action::Link { from, to }),
        1 => (0..16usize).prop_map(|nth| Action::Unlink { nth }),
    ]
}

/// Runs one writer's actions, one commit per action (the real commit
/// pipeline, including the sharded stage-C apply). Retries on conflicts:
/// writers' *footprints* are disjoint, but freed relationship IDs are
/// reused across writers, so lock-level collisions on recycled IDs can
/// still abort an attempt.
fn run_writer(db: &GraphDb, nodes: &[NodeId], actions: &[Action]) {
    let mut created = Vec::new();
    for action in actions {
        match action {
            Action::Set { slot, value } => db
                .write_with_retry(|tx| {
                    tx.set_node_property(nodes[*slot], "v", PropertyValue::Int(*value))
                })
                .unwrap(),
            Action::Link { from, to } => {
                let rel = db
                    .write_with_retry(|tx| {
                        tx.create_relationship(nodes[*from], nodes[*to], "E", &[])
                    })
                    .unwrap();
                created.push(rel);
            }
            Action::Unlink { nth } => {
                if created.is_empty() {
                    continue; // nothing to delete yet
                }
                let rel = created.remove(nth % created.len());
                db.write_with_retry(|tx| tx.delete_relationship(rel))
                    .unwrap();
            }
        }
    }
}

/// Store state digest, independent of relationship-ID allocation order:
/// per node (identified by a stable seed property) the final value and the
/// sorted multiset of neighbour seeds.
fn store_digest(db: &GraphDb, nodes: &[NodeId]) -> Vec<(i64, Option<i64>, Vec<i64>)> {
    let seed_of: BTreeMap<NodeId, i64> = nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i as i64))
        .collect();
    let tx = db.txn().read_only().begin();
    let mut out = Vec::new();
    for &node in nodes {
        let value = match tx.node_property(node, "v").unwrap() {
            Some(PropertyValue::Int(v)) => Some(v),
            None => None,
            other => panic!("unexpected value {other:?}"),
        };
        let mut neighbors: Vec<i64> = tx
            .neighbors_vec(node, Direction::Both)
            .unwrap()
            .into_iter()
            .map(|n| seed_of[&n])
            .collect();
        neighbors.sort_unstable();
        out.push((seed_of[&node], value, neighbors));
    }
    out
}

/// Seeds `writers * SLOTS` nodes in one commit and returns them grouped
/// per writer.
fn seed_nodes(db: &GraphDb, writers: usize) -> Vec<Vec<NodeId>> {
    let mut tx = db.begin();
    let groups: Vec<Vec<NodeId>> = (0..writers)
        .map(|_| {
            (0..SLOTS)
                .map(|_| tx.create_node(&["S"], &[]).unwrap())
                .collect()
        })
        .collect();
    tx.commit().unwrap();
    groups
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// The tentpole property: for any per-writer action lists, running the
    /// writers concurrently through the sharded stage-C apply leaves the
    /// *persistent store* in exactly the state the same actions produce
    /// when committed serially (which is serial ts-order apply).
    #[test]
    fn concurrent_disjoint_apply_matches_serial_ts_order_apply(
        workloads in proptest::collection::vec(
            proptest::collection::vec(action_strategy(), 1..12), 3)
    ) {
        // Concurrent run: one thread per writer, disjoint node sets.
        let dir_c = TempDir::new("shard_prop_concurrent");
        let concurrent = {
            let db = GraphDb::open(dir_c.path(), sharded_config()).unwrap();
            let groups = seed_nodes(&db, workloads.len());
            let handles: Vec<_> = groups
                .iter()
                .zip(&workloads)
                .map(|(nodes, actions)| {
                    let db = db.clone();
                    let nodes = nodes.clone();
                    let actions = actions.clone();
                    std::thread::spawn(move || run_writer(&db, &nodes, &actions))
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            // Checkpoint: flush the store, truncate the WAL — then reopen
            // so the digest is served by the store files alone.
            db.checkpoint().unwrap();
            drop(db);
            let db = GraphDb::open(dir_c.path(), sharded_config()).unwrap();
            let all: Vec<NodeId> = groups.into_iter().flatten().collect();
            store_digest(&db, &all)
        };

        // Serial reference: same actions, one writer after another.
        let dir_s = TempDir::new("shard_prop_serial");
        let serial = {
            let db = GraphDb::open(dir_s.path(), sharded_config()).unwrap();
            let groups = seed_nodes(&db, workloads.len());
            for (nodes, actions) in groups.iter().zip(&workloads) {
                run_writer(&db, nodes, actions);
            }
            db.checkpoint().unwrap();
            drop(db);
            let db = GraphDb::open(dir_s.path(), sharded_config()).unwrap();
            let all: Vec<NodeId> = groups.into_iter().flatten().collect();
            store_digest(&db, &all)
        };

        prop_assert_eq!(concurrent, serial);
    }
}

/// Overlapping commits — many writers splicing relationships into the
/// *same* hub nodes' chains — queue per shard, race concurrent
/// checkpoints, and then recovery replays the WAL over the partially
/// flushed store. No acknowledged splice may be lost, duplicated, or left
/// as a corrupt chain.
///
/// Runs under first-committer-wins: there the endpoint write locks are
/// advisory, so splices on the same hub genuinely reach stage C
/// concurrently — exactly the multi-record read-modify-write hazard the
/// per-shard locks exist to serialise.
#[test]
fn overlapping_commits_race_checkpoints_and_recovery_replay() {
    const WRITERS: usize = 4;
    const ROUNDS: usize = 30;
    const HUBS: usize = 2;
    let dir = TempDir::new("shard_overlap");
    let config =
        sharded_config().with_conflict_strategy(graphsi_core::ConflictStrategy::FirstCommitterWins);
    let hubs: Vec<NodeId>;
    // (hub index, spoke) of every acknowledged, still-linked spoke.
    let acknowledged: Arc<Mutex<Vec<(usize, NodeId)>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let db = GraphDb::open(dir.path(), config.clone()).unwrap();
        let mut tx = db.begin();
        hubs = (0..HUBS)
            .map(|_| tx.create_node(&["Hub"], &[]).unwrap())
            .collect();
        tx.commit().unwrap();

        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let db = db.clone();
                let hubs = hubs.clone();
                let acknowledged = Arc::clone(&acknowledged);
                std::thread::spawn(move || {
                    let mut own: Vec<(usize, NodeId, graphsi_core::RelationshipId)> = Vec::new();
                    for i in 0..ROUNDS {
                        let hub = (w + i) % HUBS;
                        if i % 5 == 4 {
                            // Unlink one of this writer's earlier spokes:
                            // another chain splice on a shared hub.
                            let Some((h, spoke, rel)) = own.pop() else {
                                continue;
                            };
                            let result = db.write_with_retry(|tx| {
                                tx.delete_relationship(rel)?;
                                tx.delete_node(spoke)
                            });
                            match result {
                                Ok(()) => {
                                    let mut acked = acknowledged.lock().unwrap();
                                    let idx = acked.iter().position(|e| *e == (h, spoke)).unwrap();
                                    acked.swap_remove(idx);
                                }
                                Err(e) if e.is_conflict() => own.push((h, spoke, rel)),
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        } else {
                            let result = db.write_with_retry(|tx| {
                                let spoke = tx.create_node(&["Spoke"], &[]).unwrap();
                                let rel = tx.create_relationship(hubs[hub], spoke, "SPOKE", &[])?;
                                Ok((spoke, rel))
                            });
                            match result {
                                Ok((spoke, rel)) => {
                                    own.push((hub, spoke, rel));
                                    acknowledged.lock().unwrap().push((hub, spoke));
                                }
                                Err(e) if e.is_conflict() => {}
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                    }
                })
            })
            .collect();
        // Concurrent checkpoints flush the store mid-stream and truncate
        // the WAL, so the final crash leaves a partially flushed store
        // plus a WAL holding only the tail — replay must be idempotent
        // over whatever made it to the pages.
        for _ in 0..8 {
            db.checkpoint().unwrap();
        }
        for wr in writers {
            wr.join().unwrap();
        }
        // Overlapping splices queueing on shards
        // (`store_apply_shard_conflicts`) requires two threads to be
        // *physically* inside stage C at once, which a single-core host
        // cannot produce; the deterministic queueing proof lives in the
        // pipeline's unit tests. Here the point is the end state.
        // Crash: no clean shutdown.
    }
    let db = GraphDb::open(dir.path(), config).unwrap();
    let tx = db.txn().read_only().begin();
    let acked = acknowledged.lock().unwrap();
    for (hub, degree) in hubs
        .iter()
        .map(|&h| (h, acked.iter().filter(|(i, _)| hubs[*i] == h).count()))
    {
        assert_eq!(
            tx.degree(hub, Direction::Both).unwrap(),
            degree,
            "hub chain length diverged from the acknowledged splices"
        );
    }
    assert_eq!(
        tx.nodes_with_label("Spoke").unwrap().count(),
        acked.len(),
        "spoke set diverged from the acknowledged commits"
    );
    for &(hub, spoke) in acked.iter() {
        assert_eq!(
            tx.neighbors_vec(spoke, Direction::Both).unwrap(),
            vec![hubs[hub]],
            "an acknowledged splice was lost or rewired"
        );
    }
}

/// The scalability witness behind E13: on disjoint keyspaces the sharded
/// apply really overlaps — more than one commit is inside its store
/// flush-through at the same time — where the single-lock stage C pinned
/// the peak at exactly 1.
///
/// Observing the overlap through real scheduling needs ≥ 2 CPUs (on one
/// core, threads released from a group sync run stage C back-to-back and
/// a ~60µs apply window is never preempted mid-flight); single-core hosts
/// run the workload for its correctness assertions only, and the
/// deterministic overlap proof lives in the pipeline's unit tests.
#[test]
fn disjoint_commits_overlap_inside_store_apply() {
    const THREADS: usize = 4;
    const COMMITS_PER_THREAD: usize = 100;
    let multicore = std::thread::available_parallelism()
        .map(|p| p.get() >= 2)
        .unwrap_or(false);
    // Overlap is a race by nature: retry a few fresh rounds before
    // declaring the sharded path broken.
    for round in 0..5 {
        let dir = TempDir::new("shard_peak");
        let db = GraphDb::open(dir.path(), sharded_config()).unwrap();
        let mut tx = db.begin();
        // Multi-node write sets make each flush-through long enough to
        // observe overlap; keyspaces stay disjoint across threads.
        let groups: Vec<Vec<NodeId>> = (0..THREADS)
            .map(|_| {
                (0..16)
                    .map(|_| {
                        tx.create_node(&["W"], &[("v", PropertyValue::Int(0))])
                            .unwrap()
                    })
                    .collect()
            })
            .collect();
        tx.commit().unwrap();
        let handles: Vec<_> = groups
            .iter()
            .map(|nodes| {
                let db = db.clone();
                let nodes = nodes.clone();
                std::thread::spawn(move || {
                    for i in 0..COMMITS_PER_THREAD {
                        let mut tx = db.begin();
                        for &node in &nodes {
                            tx.set_node_property(node, "v", PropertyValue::Int(i as i64))
                                .unwrap();
                        }
                        tx.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let m = db.metrics();
        let tx = db.txn().read_only().begin();
        for nodes in &groups {
            for &node in nodes {
                assert_eq!(
                    tx.node_property(node, "v").unwrap(),
                    Some(PropertyValue::Int(COMMITS_PER_THREAD as i64 - 1))
                );
            }
        }
        if !multicore {
            eprintln!("single CPU: skipping the concurrency-peak assertion");
            return;
        }
        if m.store_apply_concurrency_peak >= 2 {
            return;
        }
        eprintln!(
            "round {round}: store_apply_concurrency_peak = {}, retrying",
            m.store_apply_concurrency_peak
        );
    }
    panic!("disjoint-footprint commits never overlapped in stage C");
}

/// `store_apply_shards = 1` is the old single-lock stage C: everything
/// still works, and the concurrency peak proves the lock is global.
#[test]
fn single_shard_config_serialises_the_apply() {
    const THREADS: usize = 4;
    let dir = TempDir::new("shard_single");
    let db = GraphDb::open(dir.path(), sharded_config().with_store_apply_shards(1)).unwrap();
    let mut tx = db.begin();
    let nodes: Vec<NodeId> = (0..THREADS)
        .map(|_| {
            tx.create_node(&["W"], &[("v", PropertyValue::Int(0))])
                .unwrap()
        })
        .collect();
    tx.commit().unwrap();
    let handles: Vec<_> = nodes
        .iter()
        .map(|&node| {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..50 {
                    let mut tx = db.begin();
                    tx.set_node_property(node, "v", PropertyValue::Int(i))
                        .unwrap();
                    tx.commit().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let m = db.metrics();
    assert_eq!(
        m.store_apply_concurrency_peak, 1,
        "one shard = one global store-apply lock"
    );
    let tx = db.txn().read_only().begin();
    for node in nodes {
        assert_eq!(
            tx.node_property(node, "v").unwrap(),
            Some(PropertyValue::Int(49))
        );
    }
}
