//! Multi-threaded integration tests for the owned-handle transaction API:
//! `GraphDb` handles clone across threads, `Transaction` is
//! `Send + 'static`, read-only snapshot transactions never touch the lock
//! manager, and concurrent writers under contention keep the data
//! consistent with the conflict accounting adding up.

use std::sync::mpsc;
use std::thread;

use graphsi_core::test_support::{TempDir, Watchdog};
use graphsi_core::{
    DbConfig, Direction, GraphDb, IsolationLevel, NodeId, PropertyValue, Transaction,
};

/// The headline API guarantee of the redesign, checked at compile time.
#[test]
fn transactions_are_send_and_static() {
    fn assert_send<T: Send + 'static>() {}
    assert_send::<Transaction>();
    assert_send::<GraphDb>();
}

/// A transaction begun on one thread can be moved to another thread,
/// used there, and committed — the server-session pattern.
#[test]
fn transactions_move_across_threads() {
    let dir = TempDir::new("threads_move");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();

    let mut tx = db.begin();
    let node = tx.create_node(&["Parked"], &[]).unwrap();

    // Park the open transaction on another thread and finish it there.
    let handle = thread::spawn(move || {
        tx.set_node_property(node, "slot", PropertyValue::Int(7))
            .unwrap();
        tx.commit().unwrap()
    });
    let commit_ts = handle.join().unwrap();
    assert!(commit_ts.raw() > 0);

    let found = db.read(|tx| tx.node_property(node, "slot")).unwrap();
    assert_eq!(found, Some(PropertyValue::Int(7)));
}

/// A transaction can outlive the handle that created it (`'static`).
#[test]
fn transaction_outlives_its_handle() {
    let dir = TempDir::new("threads_outlive");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
    let mut tx = {
        let clone = db.clone();
        clone.begin()
        // `clone` dropped here; `tx` keeps the database alive.
    };
    let node = tx.create_node(&["Orphan"], &[]).unwrap();
    tx.commit().unwrap();
    assert!(db.read(|tx| tx.node_exists(node)).unwrap());
}

/// Read-only snapshot transactions make zero lock-manager calls, begin to
/// commit, even while writers are active (the paper's no-read-locks
/// claim, asserted through the lock-manager counters).
#[test]
fn read_only_transactions_never_touch_the_lock_manager() {
    let dir = TempDir::new("threads_no_read_locks");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
    let mut tx = db.begin();
    let hub = tx
        .create_node(&["Hub"], &[("balance", PropertyValue::Int(0))])
        .unwrap();
    let spoke = tx.create_node(&["Hub"], &[]).unwrap();
    tx.create_relationship(hub, spoke, "LINK", &[]).unwrap();
    tx.commit().unwrap();

    let locks_before = db.lock_stats();
    let reads_before = db.metrics().reads;

    let reader = db.txn().read_only().begin();
    // Exercise every read shape: point reads, expansion, scans.
    assert!(reader.node_exists(hub).unwrap());
    assert_eq!(reader.degree(hub, Direction::Both).unwrap(), 1);
    assert_eq!(reader.nodes_with_label("Hub").unwrap().count(), 2);
    assert_eq!(reader.all_nodes_vec().unwrap().len(), 2);
    assert_eq!(
        reader.neighbors_vec(hub, Direction::Both).unwrap(),
        vec![spoke]
    );
    reader.commit().unwrap();

    let locks_after = db.lock_stats();
    assert!(
        db.metrics().reads > reads_before,
        "reads were actually served"
    );
    assert_eq!(
        locks_before, locks_after,
        "read-only transaction must not touch the lock manager"
    );
}

/// Read-only snapshots skip lock acquisition even when the database
/// default is read committed (read_only forces snapshot reads).
#[test]
fn read_only_fast_path_applies_under_read_committed_default() {
    let dir = TempDir::new("threads_ro_rc");
    let db = GraphDb::open(dir.path(), DbConfig::read_committed()).unwrap();
    let mut tx = db.begin();
    let node = tx.create_node(&["N"], &[]).unwrap();
    tx.commit().unwrap();

    let shared_before = db.lock_stats().shared_acquired;
    let reader = db.txn().read_only().begin();
    assert!(reader.node_exists(node).unwrap());
    reader.commit().unwrap();
    assert_eq!(db.lock_stats().shared_acquired, shared_before);

    // An ordinary read-committed reader DOES take short read locks — the
    // baseline behaviour stays observable.
    let reader = db.txn().isolation(IsolationLevel::ReadCommitted).begin();
    assert!(reader.node_exists(node).unwrap());
    drop(reader);
    assert!(db.lock_stats().shared_acquired > shared_before);
}

/// N writer threads + M read-only snapshot threads over `Send`
/// transactions: snapshots stay stable under concurrent commits, all
/// committed increments survive, and the conflict accounting adds up.
#[test]
fn writers_and_snapshot_readers_under_contention() {
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const INCREMENTS_PER_WRITER: usize = 50;

    // A wedged contention test aborts with the witness's lock-order state
    // instead of hanging CI.
    let _watchdog = Watchdog::arm(
        "writers_and_snapshot_readers_under_contention",
        std::time::Duration::from_secs(120),
    );
    let dir = TempDir::new("threads_contention");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();

    let mut tx = db.begin();
    let counters: Vec<NodeId> = (0..4)
        .map(|_| {
            tx.create_node(&["Counter"], &[("value", PropertyValue::Int(0))])
                .unwrap()
        })
        .collect();
    tx.commit().unwrap();

    let read_value = |tx: &Transaction, id: NodeId| -> i64 {
        tx.node_property(id, "value")
            .unwrap()
            .and_then(|v| v.as_int())
            .unwrap_or(0)
    };

    // Readers signal the writers to stop once each has observed enough
    // stable snapshots.
    let (done_tx, done_rx) = mpsc::channel::<()>();

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let db = db.clone();
        let counters = counters.clone();
        handles.push(thread::spawn(move || {
            for i in 0..INCREMENTS_PER_WRITER {
                let target = counters[(w + i) % counters.len()];
                db.write_with_retry(|tx| {
                    let current = tx
                        .node_property(target, "value")?
                        .and_then(|v| v.as_int())
                        .unwrap_or(0);
                    tx.set_node_property(target, "value", PropertyValue::Int(current + 1))
                })
                .expect("increment with retry");
            }
        }));
    }

    let mut reader_handles = Vec::new();
    for _ in 0..READERS {
        let db = db.clone();
        let counters = counters.clone();
        let done = done_tx.clone();
        reader_handles.push(thread::spawn(move || {
            for _ in 0..25 {
                let tx = db.txn().read_only().begin();
                let first: Vec<i64> = counters.iter().map(|&c| read_value(&tx, c)).collect();
                thread::yield_now();
                let second: Vec<i64> = counters.iter().map(|&c| read_value(&tx, c)).collect();
                assert_eq!(
                    first, second,
                    "snapshot must be stable within a transaction"
                );
                assert_eq!(
                    tx.nodes_with_label("Counter").unwrap().count(),
                    counters.len()
                );
                tx.commit().unwrap();
            }
            drop(done);
        }));
    }
    drop(done_tx);

    for h in handles {
        h.join().unwrap();
    }
    let _ = done_rx.recv_timeout(std::time::Duration::from_secs(30));
    for h in reader_handles {
        h.join().unwrap();
    }

    // Every committed increment survives: the total equals the number of
    // increments performed (write_with_retry retries conflicting ones).
    let total: i64 = db
        .read(|tx| Ok(counters.iter().map(|&c| read_value(tx, c)).sum()))
        .unwrap();
    assert_eq!(total, (WRITERS * INCREMENTS_PER_WRITER) as i64);

    // Conflict accounting: begins = completions, and every conflict abort
    // was counted by the lock manager or the commit-time validator.
    let m = db.metrics();
    assert_eq!(
        m.begins,
        m.commits + m.rollbacks + m.conflict_aborts,
        "every transaction must be accounted for: {m:?}"
    );
    // Contended single-node increments must have produced at least some
    // first-updater-wins conflicts (otherwise the test is not contended).
    assert!(
        m.conflict_aborts > 0 || db.lock_stats().immediate_conflicts == 0,
        "conflict accounting out of sync with the lock manager"
    );
}

/// Regression for the retry backoff: two writers that keep colliding on
/// the same hot node must both eventually commit through
/// `write_with_retry`'s jittered backoff, and the retries they performed
/// must be visible in the `write_retries` / `write_retry_backoff_us`
/// metrics. (The deterministic schedule this replaces could retry
/// colliding sessions in lockstep.)
#[test]
fn conflicting_writers_both_commit_through_jittered_retries() {
    const ROUNDS: usize = 40;
    let _watchdog = Watchdog::arm(
        "conflicting_writers_both_commit_through_jittered_retries",
        std::time::Duration::from_secs(120),
    );
    let dir = TempDir::new("threads_retry_jitter");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();

    let mut tx = db.begin();
    let hot = tx
        .create_node(&["Hot"], &[("value", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    // A barrier aligns the two writers round by round, maximising the
    // chance each round really collides on the hot node.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let db = db.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            thread::spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.wait();
                    db.write_with_retry(|tx| {
                        let current = tx
                            .node_property(hot, "value")?
                            .and_then(|v| v.as_int())
                            .unwrap_or(0);
                        tx.set_node_property(hot, "value", PropertyValue::Int(current + 1))
                    })
                    .expect("conflicting writer must eventually commit");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let total = db
        .read(|tx| Ok(tx.node_property(hot, "value").unwrap()))
        .unwrap();
    assert_eq!(
        total,
        Some(PropertyValue::Int(2 * ROUNDS as i64)),
        "no committed increment may be lost"
    );

    let m = db.metrics();
    assert!(
        m.write_retries > 0,
        "aligned writers on one node must have conflicted at least once"
    );
    assert!(
        m.write_retry_backoff_us >= m.write_retries * GraphDb::WRITE_RETRY_BACKOFF_BASE_US,
        "every retry sleeps at least the base backoff: {m:?}"
    );
}

/// The deprecated `begin_with_isolation` shim still works and delegates
/// to the builder.
#[test]
#[allow(deprecated)]
fn deprecated_begin_with_isolation_still_works() {
    let dir = TempDir::new("threads_deprecated");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
    let tx = db.begin_with_isolation(IsolationLevel::ReadCommitted);
    assert_eq!(tx.isolation(), IsolationLevel::ReadCommitted);
    assert!(!tx.is_read_only());
    drop(tx);
}

/// Lazy scans and expansions hold snapshot consistency across threads: an
/// iterator created before concurrent commits only ever observes its own
/// snapshot.
#[test]
fn lazy_iterators_stay_snapshot_consistent_across_commits() {
    let dir = TempDir::new("threads_lazy_snapshots");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
    let mut tx = db.begin();
    let hub = tx.create_node(&["HubL"], &[]).unwrap();
    for _ in 0..8 {
        let s = tx.create_node(&["SpokeL"], &[]).unwrap();
        tx.create_relationship(hub, s, "L", &[]).unwrap();
    }
    tx.commit().unwrap();

    let reader = db.txn().read_only().begin();
    let mut iter = reader.relationships(hub, Direction::Both).unwrap();
    let mut seen = 0usize;
    // Interleave: resolve a couple of elements, then let a writer add and
    // remove spokes, then drain the rest.
    for _ in 0..2 {
        assert!(iter.next().unwrap().is_ok());
        seen += 1;
    }
    let writer_db = db.clone();
    thread::spawn(move || {
        let mut tx = writer_db.begin();
        let s = tx.create_node(&["SpokeL"], &[]).unwrap();
        tx.create_relationship(hub, s, "L", &[]).unwrap();
        tx.commit().unwrap();
    })
    .join()
    .unwrap();
    for rel in iter {
        rel.unwrap();
        seen += 1;
    }
    assert_eq!(seen, 8, "iterator must not observe the concurrent commit");
}
