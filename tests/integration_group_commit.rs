//! Pipelined group-commit tests: fsync batching under contention, strictly
//! in-order (gap-free) publication of the visible timestamp, checkpoint
//! quiescing, and first-committer-wins validation across the pipeline's
//! pending window.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use graphsi_core::test_support::TempDir;
use graphsi_core::{
    ConflictStrategy, DbConfig, GraphDb, NodeId, PropertyValue, SyncPolicy, Timestamp,
};

fn group_commit_config() -> DbConfig {
    DbConfig::default()
        .with_sync_policy(SyncPolicy::OnDemand)
        .with_group_commit_max_batch(16)
        .with_group_commit_max_delay(Duration::from_millis(2))
}

/// Creates one node per worker thread so writers never conflict.
fn worker_nodes(db: &GraphDb, threads: usize) -> Vec<NodeId> {
    let mut tx = db.begin();
    let nodes: Vec<NodeId> = (0..threads)
        .map(|_| {
            tx.create_node(&["Worker"], &[("v", PropertyValue::Int(0))])
                .unwrap()
        })
        .collect();
    tx.commit().unwrap();
    nodes
}

/// Acceptance criterion: under a multi-threaded write workload the WAL
/// sync count stays *strictly below* the committed-transaction count —
/// the proof that one leader fsync covers a whole batch of committers.
#[test]
fn wal_syncs_stay_below_commits_under_contention() {
    const THREADS: usize = 4;
    const COMMITS_PER_THREAD: usize = 50;
    let dir = TempDir::new("gc_batching");
    let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
    let nodes = worker_nodes(&db, THREADS);

    let handles: Vec<_> = nodes
        .iter()
        .map(|&node| {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..COMMITS_PER_THREAD {
                    let mut tx = db.begin();
                    tx.set_node_property(node, "v", PropertyValue::Int(i as i64))
                        .unwrap();
                    tx.commit().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let m = db.metrics();
    let write_commits = m.commits - m.read_only_commits;
    assert_eq!(write_commits as usize, THREADS * COMMITS_PER_THREAD + 1);
    assert!(m.wal_syncs >= 1);
    assert!(
        m.wal_syncs < write_commits,
        "group commit must amortise fsyncs: {} syncs for {} commits",
        m.wal_syncs,
        write_commits
    );
    assert_eq!(m.group_commit_batches, m.wal_syncs);
    assert!(
        m.group_commit_batch_size_max >= 2,
        "at least one batch must have covered multiple commits, max was {}",
        m.group_commit_batch_size_max
    );

    // Every acknowledged commit is readable.
    let tx = db.txn().read_only().begin();
    for node in nodes {
        assert_eq!(
            tx.node_property(node, "v").unwrap(),
            Some(PropertyValue::Int((COMMITS_PER_THREAD - 1) as i64))
        );
    }
}

/// Under `SyncPolicy::Always` every append syncs itself: the pipeline
/// records degenerate batches of one, so syncs equal write commits.
#[test]
fn always_policy_syncs_every_commit() {
    let dir = TempDir::new("gc_always");
    let db = GraphDb::open(
        dir.path(),
        DbConfig::default().with_sync_policy(SyncPolicy::Always),
    )
    .unwrap();
    let nodes = worker_nodes(&db, 1);
    for i in 0..10i64 {
        let mut tx = db.begin();
        tx.set_node_property(nodes[0], "v", PropertyValue::Int(i))
            .unwrap();
        tx.commit().unwrap();
    }
    let m = db.metrics();
    assert_eq!(m.wal_syncs, m.commits - m.read_only_commits);
    assert_eq!(m.group_commit_batch_size_max, 1);
}

/// Regression: the batcher's durable watermark must be seeded from the
/// log at open. A reopened database whose WAL held replayed records used
/// to count them all into the first post-recovery sync's batch size.
#[test]
fn batch_size_is_not_inflated_after_recovery() {
    let dir = TempDir::new("gc_recovered_batch");
    let node;
    {
        let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
        node = worker_nodes(&db, 1)[0];
        for i in 0..20i64 {
            let mut tx = db.begin();
            tx.set_node_property(node, "v", PropertyValue::Int(i))
                .unwrap();
            tx.commit().unwrap();
        }
        // Drop without checkpoint: the next open replays a 21-record WAL.
    }
    let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
    let mut tx = db.begin();
    tx.set_node_property(node, "v", PropertyValue::Int(99))
        .unwrap();
    tx.commit().unwrap();
    let m = db.metrics();
    assert_eq!(
        m.group_commit_batch_size_max, 1,
        "a single post-recovery commit is a batch of one, not of \
         1 + every replayed record"
    );
}

/// Acceptance criterion: `visible_ts` publication is gap-free in
/// commit-ts order. Writers record every acknowledged commit; concurrent
/// readers assert that *every* recorded commit at or below their snapshot
/// is visible — if commit N+1 ever published without commit N, a reader
/// snapshotting between them would observe a stale value and fail.
#[test]
fn visible_ts_publication_is_gap_free_in_commit_ts_order() {
    const THREADS: usize = 4;
    const COMMITS_PER_THREAD: usize = 60;
    let dir = TempDir::new("gc_gap_free");
    let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
    let nodes = worker_nodes(&db, THREADS);

    // (commit_ts, node, value) of every acknowledged commit.
    let committed: Arc<Mutex<Vec<(Timestamp, NodeId, i64)>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let writers: Vec<_> = nodes
        .iter()
        .map(|&node| {
            let db = db.clone();
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                for i in 1..=COMMITS_PER_THREAD as i64 {
                    let mut tx = db.begin();
                    tx.set_node_property(node, "v", PropertyValue::Int(i))
                        .unwrap();
                    let ts = tx.commit().unwrap();
                    committed.lock().unwrap().push((ts, node, i));
                }
            })
        })
        .collect();

    // A sampler asserting the published watermark never runs backwards.
    let monotone = {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = Timestamp(0);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let now = db.visible_timestamp();
                assert!(now >= last, "visible_ts ran backwards: {now:?} < {last:?}");
                last = now;
            }
        })
    };

    // Readers snapshotting mid-stream: everything recorded at or below
    // the snapshot must be visible (per node, values only grow).
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let db = db.clone();
            let committed = Arc::clone(&committed);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let tx = db.txn().read_only().begin();
                    let snapshot = tx.start_timestamp();
                    let seen: Vec<(Timestamp, NodeId, i64)> = committed.lock().unwrap().clone();
                    for (cts, node, value) in seen {
                        if cts <= snapshot {
                            let read = match tx.node_property(node, "v").unwrap() {
                                Some(PropertyValue::Int(v)) => v,
                                other => panic!("unexpected value {other:?}"),
                            };
                            assert!(
                                read >= value,
                                "snapshot {snapshot:?} missed commit {cts:?}: \
                                 read {read} < {value} (a publication gap)"
                            );
                        }
                    }
                }
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    monotone.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(
        committed.lock().unwrap().len(),
        THREADS * COMMITS_PER_THREAD
    );
}

/// Checkpoints quiesce the pipeline: they must wait for every in-flight
/// commit to finish its store flush-through before truncating the WAL,
/// otherwise an acknowledged commit could vanish (in neither log nor
/// store) on the next open.
#[test]
fn checkpoint_during_concurrent_commits_loses_nothing() {
    const THREADS: usize = 4;
    const COMMITS_PER_THREAD: usize = 40;
    let dir = TempDir::new("gc_checkpoint");
    {
        let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
        let nodes = worker_nodes(&db, THREADS);
        let writers: Vec<_> = nodes
            .iter()
            .map(|&node| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 1..=COMMITS_PER_THREAD as i64 {
                        let mut tx = db.begin();
                        tx.set_node_property(node, "v", PropertyValue::Int(i))
                            .unwrap();
                        tx.commit().unwrap();
                    }
                })
            })
            .collect();
        for _ in 0..10 {
            db.checkpoint().unwrap();
        }
        for w in writers {
            w.join().unwrap();
        }
        // No clean shutdown: recovery must see the checkpointed store plus
        // whatever the WAL holds past the last checkpoint.
    }
    let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
    let tx = db.txn().read_only().begin();
    let workers: Vec<NodeId> = tx
        .nodes_with_label("Worker")
        .unwrap()
        .collect::<graphsi_core::Result<Vec<_>>>()
        .unwrap();
    assert_eq!(workers.len(), THREADS);
    for node in workers {
        assert_eq!(
            tx.node_property(node, "v").unwrap(),
            Some(PropertyValue::Int(COMMITS_PER_THREAD as i64))
        );
    }
}

/// First-committer-wins validation must see commits that are still inside
/// the pipeline (sequenced but not yet installed): hammering one hot node
/// from many FCW threads may abort transactions, but it must never lose
/// an acknowledged update.
#[test]
fn first_committer_wins_sees_pipelined_commits() {
    const THREADS: usize = 4;
    const ATTEMPTS: usize = 30;
    let dir = TempDir::new("gc_fcw");
    let db = GraphDb::open(
        dir.path(),
        group_commit_config().with_conflict_strategy(ConflictStrategy::FirstCommitterWins),
    )
    .unwrap();
    let mut tx = db.begin();
    let hot = tx
        .create_node(&["Hot"], &[("n", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    let successes: Vec<usize> = {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let db = db.clone();
                std::thread::spawn(move || {
                    let mut ok = 0usize;
                    for _ in 0..ATTEMPTS {
                        let result = db.write_with_retry(|tx| {
                            let current = match tx.node_property(hot, "n")? {
                                Some(PropertyValue::Int(v)) => v,
                                other => panic!("unexpected value {other:?}"),
                            };
                            tx.set_node_property(hot, "n", PropertyValue::Int(current + 1))
                        });
                        match result {
                            Ok(()) => ok += 1,
                            Err(e) if e.is_conflict() => {} // retries exhausted
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                    ok
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };

    let total: usize = successes.iter().sum();
    assert!(total > 0, "some increments must have succeeded");
    let tx = db.begin();
    assert_eq!(
        tx.node_property(hot, "n").unwrap(),
        Some(PropertyValue::Int(total as i64)),
        "every acknowledged increment must be applied exactly once \
         (a lost update means validation missed a pipelined commit)"
    );
}
