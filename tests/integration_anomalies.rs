//! Anomaly tests: unrepeatable reads, phantom reads and write skew — the
//! phenomena the paper's introduction uses to motivate snapshot isolation
//! (and the one anomaly SI still admits).

use graphsi_core::test_support::TempDir;
use graphsi_core::traversal;
use graphsi_core::{DbConfig, Direction, GraphDb, IsolationLevel, PropertyValue};

fn open(dir: &TempDir) -> GraphDb {
    GraphDb::open(dir.path(), DbConfig::default()).unwrap()
}

/// Unrepeatable read on a scalar property: the same read inside one
/// transaction returns two different values under read committed, but not
/// under snapshot isolation.
#[test]
fn unrepeatable_read_on_property_rc_vs_si() {
    let dir = TempDir::new("anom_unrepeatable_prop");
    let db = open(&dir);
    let mut tx = db.begin();
    let node = tx
        .create_node(&[], &[("value", PropertyValue::Int(1))])
        .unwrap();
    tx.commit().unwrap();

    for (isolation, expect_repeatable) in [
        (IsolationLevel::ReadCommitted, false),
        (IsolationLevel::SnapshotIsolation, true),
    ] {
        let reader = db.txn().isolation(isolation).begin();
        let first = reader.node_property(node, "value").unwrap().unwrap();

        let mut writer = db
            .txn()
            .isolation(IsolationLevel::SnapshotIsolation)
            .begin();
        let bumped = match first {
            PropertyValue::Int(v) => PropertyValue::Int(v + 100),
            _ => unreachable!(),
        };
        writer.set_node_property(node, "value", bumped).unwrap();
        writer.commit().unwrap();

        let second = reader.node_property(node, "value").unwrap().unwrap();
        let repeatable = first == second;
        assert_eq!(
            repeatable, expect_repeatable,
            "isolation {isolation}: first={first:?} second={second:?}"
        );
        drop(reader);
    }
}

/// The paper's motivating example: a two-step graph algorithm. A path
/// traversed in step one disappears before step two. Under read committed
/// the second traversal differs; under snapshot isolation both traversals
/// observe the same graph.
#[test]
fn unrepeatable_traversal_two_step_algorithm() {
    for (isolation, expect_consistent) in [
        (IsolationLevel::ReadCommitted, false),
        (IsolationLevel::SnapshotIsolation, true),
    ] {
        let dir = TempDir::new("anom_two_step");
        let db = open(&dir);
        // Build a small path graph: hub -> m1 -> leaf1, hub -> m2 -> leaf2.
        let mut tx = db.begin();
        let hub = tx.create_node(&["Hub"], &[]).unwrap();
        let m1 = tx.create_node(&["Mid"], &[]).unwrap();
        let m2 = tx.create_node(&["Mid"], &[]).unwrap();
        let leaf1 = tx.create_node(&["Leaf"], &[]).unwrap();
        let leaf2 = tx.create_node(&["Leaf"], &[]).unwrap();
        let hub_m1 = tx.create_relationship(hub, m1, "LINK", &[]).unwrap();
        tx.create_relationship(hub, m2, "LINK", &[]).unwrap();
        tx.create_relationship(m1, leaf1, "LINK", &[]).unwrap();
        tx.create_relationship(m2, leaf2, "LINK", &[]).unwrap();
        tx.commit().unwrap();

        let reader = db.txn().isolation(isolation).begin();
        // Step one: BFS over the whole reachable graph.
        let first_walk = traversal::bfs(&reader, hub, 3).unwrap();
        assert_eq!(first_walk.len(), 5);

        // A concurrent transaction removes the hub→m1 edge and m1 itself.
        let mut vandal = db.begin();
        vandal.delete_relationship(hub_m1).unwrap();
        // m1 still has the edge to leaf1; remove it too, then the node.
        let m1_rels = vandal.relationships_vec(m1, Direction::Both).unwrap();
        for rel in m1_rels {
            vandal.delete_relationship(rel.id).unwrap();
        }
        vandal.delete_node(m1).unwrap();
        vandal.commit().unwrap();

        // Step two: walk again inside the same reading transaction.
        let second_walk = traversal::bfs(&reader, hub, 3).unwrap();
        let consistent = first_walk == second_walk;
        assert_eq!(
            consistent, expect_consistent,
            "isolation {isolation}: first={first_walk:?} second={second_walk:?}"
        );
        drop(reader);
    }
}

/// Phantom reads on a predicate (label) selection: repeating the same
/// selection sees new rows under read committed but not under snapshot
/// isolation.
#[test]
fn phantom_read_on_label_predicate() {
    for (isolation, expect_stable) in [
        (IsolationLevel::ReadCommitted, false),
        (IsolationLevel::SnapshotIsolation, true),
    ] {
        let dir = TempDir::new("anom_phantom");
        let db = open(&dir);
        let mut tx = db.begin();
        for i in 0..5i64 {
            tx.create_node(&["Person"], &[("idx", PropertyValue::Int(i))])
                .unwrap();
        }
        tx.commit().unwrap();

        let reader = db.txn().isolation(isolation).begin();
        let first = reader.nodes_with_label("Person").unwrap().count();
        assert_eq!(first, 5);

        // A concurrent transaction inserts two more matching nodes and
        // deletes one existing one.
        let mut writer = db.begin();
        writer.create_node(&["Person"], &[]).unwrap();
        writer.create_node(&["Person"], &[]).unwrap();
        let victim = writer.nodes_with_label_vec("Person").unwrap()[0];
        writer.remove_label(victim, "Person").unwrap();
        writer.commit().unwrap();

        let second = reader.nodes_with_label("Person").unwrap().count();
        let stable = first == second;
        assert_eq!(
            stable, expect_stable,
            "isolation {isolation}: first={first} second={second}"
        );
        drop(reader);
    }
}

/// Phantoms on a property-value predicate.
#[test]
fn phantom_read_on_property_predicate() {
    let dir = TempDir::new("anom_phantom_prop");
    let db = open(&dir);
    let mut tx = db.begin();
    for _ in 0..3 {
        tx.create_node(&["Account"], &[("balance", PropertyValue::Int(100))])
            .unwrap();
    }
    tx.commit().unwrap();

    let si_reader = db.begin(); // snapshot isolation
    let rc_reader = db.txn().isolation(IsolationLevel::ReadCommitted).begin();
    let si_first = si_reader
        .nodes_with_property("balance", &PropertyValue::Int(100))
        .unwrap()
        .count();
    let rc_first = rc_reader
        .nodes_with_property("balance", &PropertyValue::Int(100))
        .unwrap()
        .count();

    let mut writer = db.begin();
    writer
        .create_node(&["Account"], &[("balance", PropertyValue::Int(100))])
        .unwrap();
    writer.commit().unwrap();

    let si_second = si_reader
        .nodes_with_property("balance", &PropertyValue::Int(100))
        .unwrap()
        .count();
    let rc_second = rc_reader
        .nodes_with_property("balance", &PropertyValue::Int(100))
        .unwrap()
        .count();

    assert_eq!(
        si_first, si_second,
        "snapshot isolation must not see phantoms"
    );
    assert_eq!(
        rc_first + 1,
        rc_second,
        "read committed sees the phantom row"
    );
}

/// Write skew: the one anomaly snapshot isolation admits (paper §1/§3).
/// Two transactions each read both accounts (sum = 100, constraint:
/// sum >= 0), then each withdraws 80 from a *different* account. Neither
/// sees the other's write, both commit (they touch disjoint items), and the
/// constraint is violated.
#[test]
fn write_skew_is_admitted_under_snapshot_isolation() {
    let dir = TempDir::new("anom_write_skew");
    let db = open(&dir);
    let mut tx = db.begin();
    let a = tx
        .create_node(&["Account"], &[("balance", PropertyValue::Int(50))])
        .unwrap();
    let b = tx
        .create_node(&["Account"], &[("balance", PropertyValue::Int(50))])
        .unwrap();
    tx.commit().unwrap();

    let read_balance = |txn: &graphsi_core::Transaction, id| -> i64 {
        txn.node_property(id, "balance")
            .unwrap()
            .unwrap()
            .as_int()
            .unwrap()
    };

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    // Both check the invariant balance(a) + balance(b) - 80 >= 0.
    let t1_sum = read_balance(&t1, a) + read_balance(&t1, b);
    let t2_sum = read_balance(&t2, a) + read_balance(&t2, b);
    assert!(t1_sum - 80 >= 0 && t2_sum - 80 >= 0);
    // T1 withdraws from a, T2 from b: disjoint write sets, no write-write
    // conflict, so both commit under SI.
    t1.set_node_property(a, "balance", PropertyValue::Int(50 - 80))
        .unwrap();
    t2.set_node_property(b, "balance", PropertyValue::Int(50 - 80))
        .unwrap();
    t1.commit().expect("t1 commits");
    t2.commit().expect("t2 commits (write skew admitted)");

    let check = db.begin();
    let total = read_balance(&check, a) + read_balance(&check, b);
    assert!(
        total < 0,
        "write skew violated the constraint: total={total}"
    );
}

/// The same workload with both withdrawals hitting the same account is a
/// write-write conflict and is prevented by first-updater-wins.
#[test]
fn same_account_conflict_is_prevented() {
    let dir = TempDir::new("anom_same_account");
    let db = open(&dir);
    let mut tx = db.begin();
    let a = tx
        .create_node(&["Account"], &[("balance", PropertyValue::Int(100))])
        .unwrap();
    tx.commit().unwrap();

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    t1.set_node_property(a, "balance", PropertyValue::Int(20))
        .unwrap();
    assert!(t2
        .set_node_property(a, "balance", PropertyValue::Int(20))
        .unwrap_err()
        .is_conflict());
    t1.commit().unwrap();

    let check = db.begin();
    assert_eq!(
        check.node_property(a, "balance").unwrap(),
        Some(PropertyValue::Int(20))
    );
}

/// Friends-of-friends (the two-step query) remains stable within an SI
/// transaction even while the neighbourhood churns.
#[test]
fn friends_of_friends_is_stable_under_si() {
    let dir = TempDir::new("anom_fof");
    let db = open(&dir);
    let mut tx = db.begin();
    let me = tx.create_node(&["Person"], &[]).unwrap();
    let mut friends = Vec::new();
    for _ in 0..4 {
        let f = tx.create_node(&["Person"], &[]).unwrap();
        tx.create_relationship(me, f, "KNOWS", &[]).unwrap();
        friends.push(f);
    }
    let mut fofs = Vec::new();
    for &f in &friends {
        let fof = tx.create_node(&["Person"], &[]).unwrap();
        tx.create_relationship(f, fof, "KNOWS", &[]).unwrap();
        fofs.push(fof);
    }
    tx.commit().unwrap();

    let reader = db.begin();
    let before = traversal::friends_of_friends(&reader, me).unwrap();
    assert_eq!(before.len(), 4);

    // Concurrently add and remove friend-of-friend edges.
    let mut writer = db.begin();
    let extra = writer.create_node(&["Person"], &[]).unwrap();
    writer
        .create_relationship(friends[0], extra, "KNOWS", &[])
        .unwrap();
    let doomed_rels = writer.relationships_vec(fofs[1], Direction::Both).unwrap();
    for rel in doomed_rels {
        writer.delete_relationship(rel.id).unwrap();
    }
    writer.commit().unwrap();

    let after = traversal::friends_of_friends(&reader, me).unwrap();
    assert_eq!(before, after, "SI keeps the two-step result stable");
    drop(reader);

    let fresh = db.begin();
    let latest = traversal::friends_of_friends(&fresh, me).unwrap();
    assert_ne!(before, latest, "a fresh snapshot observes the changes");
}
