//! Range-postings integration tests: comparison predicates executed
//! *inside* the versioned property index (predicate pushdown) must behave
//! exactly like the decode-filter path at every snapshot, while concurrent
//! commits churn property values and the garbage collector compacts the
//! posting lists a range cursor is parked in. The invariants mirror
//! `integration_cursors.rs`:
//!
//! * **no phantoms below the snapshot** — values moved into the range by
//!   commits after the reader's start timestamp never appear;
//! * **no lost entries above the watermark** — nodes whose value was in
//!   range at the snapshot survive GC compaction of the key range;
//! * **pushdown ≡ decode** — the index range scan and the per-candidate
//!   decode filter agree on every snapshot, under every chunk size.

use std::ops::Bound;

use proptest::prelude::*;

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, GraphDb, NodeId, PropertyValue, Transaction};

const CHUNK_SIZES: &[usize] = &[1, 2, DbConfig::DEFAULT_SCAN_CHUNK_SIZE];

fn open(dir: &TempDir) -> GraphDb {
    GraphDb::open(dir.path(), DbConfig::default()).unwrap()
}

fn sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
    v.sort();
    v
}

fn range_ids(tx: &Transaction, lo: i64, hi: i64, pushdown: bool) -> Vec<NodeId> {
    sorted(
        tx.query()
            .filter_property_range("score", PropertyValue::Int(lo)..=PropertyValue::Int(hi))
            .pushdown(pushdown)
            .ids()
            .unwrap(),
    )
}

/// A reader pages a pushed-down range scan in single steps while a writer
/// moves values across the range boundary and deletes/creates nodes, with
/// GC runs in between. The reader must deliver exactly its snapshot.
#[test]
fn range_scan_pages_through_concurrent_commits_and_gc() {
    for &chunk in CHUNK_SIZES {
        let dir = TempDir::new("range_churn");
        let db = open(&dir);

        // Seed: scores 0..20; the range [5, 14] holds exactly ten nodes.
        let mut tx = db.begin();
        let seeded: Vec<NodeId> = (0..20)
            .map(|i| {
                tx.create_node(&["R"], &[("score", PropertyValue::Int(i))])
                    .unwrap()
            })
            .collect();
        tx.commit().unwrap();
        let in_range: Vec<NodeId> = seeded[5..=14].to_vec();

        let reader = db.txn().read_only().scan_chunk_size(chunk).begin();
        let mut stream = reader
            .query()
            .filter_property_range("score", PropertyValue::Int(5)..=PropertyValue::Int(14))
            .stream()
            .unwrap();

        // Pull a few results, then churn: move in-range values out, out-of
        // range values in, delete one in-range node, insert a fresh one in
        // range — each round followed by a vacuum GC pass that compacts
        // the posting lists the cursor is parked in.
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(stream.next().unwrap().unwrap());
        }
        let churn = [
            (seeded[6], 99i64), // in range -> out
            (seeded[10], -5),   // in range -> out
            (seeded[1], 7),     // out of range -> in (phantom for reader)
            (seeded[18], 9),    // out of range -> in (phantom for reader)
        ];
        for (node, value) in churn {
            let mut w = db.begin();
            w.set_node_property(node, "score", PropertyValue::Int(value))
                .unwrap();
            w.commit().unwrap();
            db.run_gc_vacuum();
        }
        {
            let mut w = db.begin();
            w.delete_node(seeded[13]).unwrap();
            w.create_node(&["R"], &[("score", PropertyValue::Int(8))])
                .unwrap();
            w.commit().unwrap();
            db.run_gc_vacuum();
        }
        for id in stream {
            got.push(id.unwrap());
        }

        assert_eq!(
            sorted(got),
            sorted(in_range.clone()),
            "chunk {chunk}: the reader's snapshot is exactly the seeded \
             range — no phantoms from moved-in values, no lost entries \
             from moved-out / deleted ones"
        );
        // The decode path over the same (still-open) snapshot agrees.
        assert_eq!(range_ids(&reader, 5, 14, false), sorted(in_range));
        drop(reader);

        // A fresh snapshot sees the post-churn world: 5,7,8,9,11,12,14 of
        // the seeds (6,10 moved out; 13 deleted), plus 1, 18 moved in,
        // plus the fresh node = 10 nodes.
        let after = db.txn().read_only().begin();
        assert_eq!(range_ids(&after, 5, 14, true).len(), 10);
        assert_eq!(
            range_ids(&after, 5, 14, true),
            range_ids(&after, 5, 14, false)
        );
    }
}

/// The acceptance gauge: pushdown runs through the index (the
/// `predicate_pushdowns` metric proves it), performs **zero** property
/// decodes, and returns the same rows as the decode path while concurrent
/// writer threads churn values and auto-GC compacts postings.
#[test]
fn pushdown_equals_decode_under_concurrent_writers_and_gc() {
    let dir = TempDir::new("range_race");
    let db = GraphDb::open(
        dir.path(),
        DbConfig::default().with_auto_gc(4).with_scan_chunk_size(2),
    )
    .unwrap();

    const NODES: i64 = 60;
    let mut tx = db.begin();
    let nodes: Vec<NodeId> = (0..NODES)
        .map(|i| {
            tx.create_node(&["W"], &[("score", PropertyValue::Int(i % 20))])
                .unwrap()
        })
        .collect();
    tx.commit().unwrap();

    let writers: Vec<_> = (0..2)
        .map(|w| {
            let db = db.clone();
            let nodes = nodes.clone();
            std::thread::spawn(move || {
                for round in 0..40i64 {
                    let node = nodes[((w * 31 + round * 7) % NODES) as usize];
                    db.write_with_retry(|tx| {
                        tx.set_node_property(
                            node,
                            "score",
                            PropertyValue::Int((round * 13 + w) % 20),
                        )
                    })
                    .unwrap();
                }
            })
        })
        .collect();

    let reader = {
        let db = db.clone();
        std::thread::spawn(move || {
            for _ in 0..40 {
                let tx = db.txn().read_only().begin();
                let before = db.metrics();
                let pushed = range_ids(&tx, 5, 12, true);
                let after = db.metrics();
                assert!(
                    after.predicate_pushdowns > before.predicate_pushdowns,
                    "the range query must compile to an index source"
                );
                assert_eq!(
                    after.property_decodes, before.property_decodes,
                    "pushdown must not decode any candidate's properties"
                );
                let decoded = range_ids(&tx, 5, 12, false);
                assert_eq!(
                    pushed, decoded,
                    "index range scan and decode filter must agree on one \
                     snapshot"
                );
            }
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    reader.join().unwrap();

    // Quiesced double-check against a brute-force ground truth.
    let tx = db.txn().read_only().begin();
    let mut truth: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&n| {
            tx.node_property(n, "score")
                .unwrap()
                .and_then(|v| v.as_int())
                .is_some_and(|s| (5..=12).contains(&s))
        })
        .collect();
    truth.sort();
    assert_eq!(range_ids(&tx, 5, 12, true), truth);
}

// Property-based churn: random value moves and deletions across many
// commits, with vacuum GC interleaved and snapshots pinned at random
// points. At every pinned snapshot — checked both mid-churn and after
// all of it — the pushed-down range scan must equal the decode-filter
// scan *and* a brute-force recomputation from per-node reads.
proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn churned_range_scans_agree(
            ops in proptest::collection::vec((0..24usize, -10i64..30, 0..6usize), 10..60),
            lo in -5i64..10,
            width in 0i64..20,
        ) {
            let dir = TempDir::new("range_prop");
            let db = open(&dir);
            let hi = lo + width;

            let mut tx = db.begin();
            let nodes: Vec<NodeId> = (0..24)
                .map(|i| {
                    tx.create_node(&["P"], &[("score", PropertyValue::Int(i as i64))])
                        .unwrap()
                })
                .collect();
            tx.commit().unwrap();
            let mut alive = vec![true; nodes.len()];

            let mut pinned: Vec<(Transaction, Vec<NodeId>)> = Vec::new();
            for (i, &(slot, value, kind)) in ops.iter().enumerate() {
                let node = nodes[slot];
                let delete = kind == 0; // one in six ops deletes
                let mut w = db.begin();
                if delete && alive[slot] {
                    w.delete_node(node).unwrap();
                    alive[slot] = false;
                } else if alive[slot] {
                    w.set_node_property(node, "score", PropertyValue::Int(value))
                        .unwrap();
                }
                w.commit().unwrap();
                if i % 5 == 0 {
                    db.run_gc_vacuum();
                } else if i % 7 == 0 {
                    db.run_gc();
                }
                if i % 4 == 0 {
                    // Pin a snapshot and remember its ground truth now;
                    // later churn and GC must not change what it reads.
                    let snap = db.txn().read_only().begin();
                    let truth = brute_force(&snap, &nodes, lo, hi);
                    // Mid-churn check while the snapshot is fresh.
                    prop_assert_eq!(&range_ids(&snap, lo, hi, true), &truth);
                    pinned.push((snap, truth));
                }
            }
            db.run_gc_vacuum();

            // Every pinned snapshot still reads exactly its ground truth,
            // through both execution paths and across chunk sizes.
            for (snap, truth) in &pinned {
                prop_assert_eq!(&range_ids(snap, lo, hi, true), truth);
                prop_assert_eq!(&range_ids(snap, lo, hi, false), truth);
                let chunk1 = sorted(
                    snap.query()
                        .filter_property_range(
                            "score",
                            PropertyValue::Int(lo)..=PropertyValue::Int(hi),
                        )
                        .chunk_size(1)
                        .ids()
                        .unwrap(),
                );
                prop_assert_eq!(&chunk1, truth);
            }
            // And a fresh snapshot agrees with brute force post-churn.
            let fresh = db.txn().read_only().begin();
            let truth = brute_force(&fresh, &nodes, lo, hi);
            prop_assert_eq!(&range_ids(&fresh, lo, hi, true), &truth);
            prop_assert_eq!(&range_ids(&fresh, lo, hi, false), &truth);
        }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Ordered streaming and sorted-posting intersection agree with their
    /// decode-everything equivalents on every pinned snapshot, across
    /// random churn, deletions and GC compaction. Churned score values are
    /// made unique per (op, slot) so `top_k(key, n)` has one well-defined
    /// answer (`sort-all-take-n`) with no tie ambiguity.
    #[test]
    fn ordered_topk_and_intersections_agree(
            ops in proptest::collection::vec((0..20usize, 0..6usize), 8..40),
            lo in 0i64..120,
            width in 50i64..900,
        ) {
            let dir = TempDir::new("range_order_prop");
            let db = open(&dir);
            let hi = lo + width;

            let mut tx = db.begin();
            let nodes: Vec<NodeId> = (0..20)
                .map(|slot| {
                    tx.create_node(
                        &["P"],
                        &[
                            ("score", PropertyValue::Int(slot as i64)),
                            ("flag", PropertyValue::Int((slot % 3) as i64)),
                        ],
                    )
                    .unwrap()
                })
                .collect();
            tx.commit().unwrap();
            let mut alive = vec![true; nodes.len()];

            let mut pinned: Vec<Transaction> = Vec::new();
            for (i, &(slot, kind)) in ops.iter().enumerate() {
                let node = nodes[slot];
                let mut w = db.begin();
                if kind == 0 && alive[slot] {
                    w.delete_node(node).unwrap();
                    alive[slot] = false;
                } else if alive[slot] {
                    // 100 + i*25 + slot is collision-free: slot < 25, and
                    // the seeds live below 100.
                    let score = 100 + (i as i64) * 25 + slot as i64;
                    w.set_node_property(node, "score", PropertyValue::Int(score)).unwrap();
                    if kind == 1 {
                        w.set_node_property(
                            node,
                            "flag",
                            PropertyValue::Int(((slot + i) % 3) as i64),
                        )
                        .unwrap();
                    }
                }
                w.commit().unwrap();
                if i % 5 == 0 {
                    db.run_gc_vacuum();
                } else if i % 7 == 0 {
                    db.run_gc();
                }
                if i % 4 == 0 {
                    pinned.push(db.txn().read_only().begin());
                }
            }
            db.run_gc_vacuum();
            pinned.push(db.txn().read_only().begin());

            for snap in &pinned {
                // Ground truth: per-node point reads, sorted by score
                // (unique, so the order is total).
                let mut truth: Vec<(i64, NodeId)> = nodes
                    .iter()
                    .copied()
                    .filter_map(|n| {
                        if !snap.node_exists(n).unwrap() {
                            return None;
                        }
                        snap.node_property(n, "score")
                            .unwrap()
                            .and_then(|v| v.as_int())
                            .filter(|s| (lo..=hi).contains(s))
                            .map(|s| (s, n))
                    })
                    .collect();
                truth.sort();
                let range = || PropertyValue::Int(lo)..=PropertyValue::Int(hi);
                let asc_ids: Vec<NodeId> = truth.iter().map(|&(_, n)| n).collect();
                let desc_ids: Vec<NodeId> = truth.iter().rev().map(|&(_, n)| n).collect();

                let asc = snap
                    .query()
                    .filter_property_range("score", range())
                    .order_by("score")
                    .ids()
                    .unwrap();
                prop_assert_eq!(&asc, &asc_ids);
                let desc = snap
                    .query()
                    .filter_property_range("score", range())
                    .order_by_desc("score")
                    .ids()
                    .unwrap();
                prop_assert_eq!(&desc, &desc_ids);

                // top-k ≡ sort-all-take-n, in both directions.
                for k in [1usize, 3, 7] {
                    let top = snap
                        .query()
                        .filter_property_range("score", range())
                        .top_k("score", k)
                        .ids()
                        .unwrap();
                    prop_assert_eq!(&top, &asc_ids.iter().copied().take(k).collect::<Vec<_>>());
                    let bottom = snap
                        .query()
                        .filter_property_range("score", range())
                        .top_k_desc("score", k)
                        .ids()
                        .unwrap();
                    prop_assert_eq!(&bottom, &desc_ids.iter().copied().take(k).collect::<Vec<_>>());
                }

                // Intersection ≡ chained decode-filter ≡ brute force.
                let flag_range = || PropertyValue::Int(0)..=PropertyValue::Int(1);
                let brute: Vec<NodeId> = asc_ids
                    .iter()
                    .copied()
                    .filter(|&n| {
                        snap.node_property(n, "flag")
                            .unwrap()
                            .and_then(|v| v.as_int())
                            .is_some_and(|f| (0..=1).contains(&f))
                    })
                    .collect();
                let merged = sorted(
                    snap.query()
                        .filter_property_range("score", range())
                        .filter_property_range("flag", flag_range())
                        .ids()
                        .unwrap(),
                );
                let chained = sorted(
                    snap.query()
                        .filter_property_range("score", range())
                        .filter_property_range("flag", flag_range())
                        .intersect(false)
                        .ids()
                        .unwrap(),
                );
                prop_assert_eq!(&merged, &sorted(brute.clone()));
                prop_assert_eq!(&chained, &sorted(brute));
            }
        }
}

/// A descending (reverse-cursor) ordered stream paged in tiny chunks
/// through churn and GC compaction must deliver exactly its snapshot, in
/// reverse key order, without a single cursor restart: the reverse cursor
/// resumes from its marker key just like the forward one.
#[test]
fn descending_stream_survives_churn_without_cursor_restarts() {
    let dir = TempDir::new("range_desc_restarts");
    let db = open(&dir);
    let mut tx = db.begin();
    let nodes: Vec<NodeId> = (0..30)
        .map(|i| {
            tx.create_node(&["D"], &[("score", PropertyValue::Int(i))])
                .unwrap()
        })
        .collect();
    tx.commit().unwrap();

    let reader = db.txn().read_only().scan_chunk_size(2).begin();
    let mut stream = reader
        .query()
        .filter_property_range("score", PropertyValue::Int(5)..=PropertyValue::Int(24))
        .order_by_desc("score")
        .stream()
        .unwrap();
    let before = db.metrics();
    let mut got = Vec::new();
    for _ in 0..4 {
        got.push(stream.next().unwrap().unwrap());
    }
    // Churn across the parked cursor: move values over both boundaries,
    // compact the postings in between.
    for (n, v) in [(nodes[20], 99i64), (nodes[8], -3), (nodes[0], 10)] {
        let mut w = db.begin();
        w.set_node_property(n, "score", PropertyValue::Int(v))
            .unwrap();
        w.commit().unwrap();
        db.run_gc_vacuum();
    }
    for id in stream {
        got.push(id.unwrap());
    }
    let expected: Vec<NodeId> = (5..=24).rev().map(|i| nodes[i as usize]).collect();
    assert_eq!(got, expected, "snapshot delivered in reverse key order");
    let after = db.metrics();
    assert_eq!(
        after.cursor_restarts, before.cursor_restarts,
        "the reverse range cursor resumes from its marker, never restarts"
    );
}

/// Ground truth for one snapshot: per-node point reads, no index involved.
fn brute_force(tx: &Transaction, nodes: &[NodeId], lo: i64, hi: i64) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|&n| {
            tx.node_exists(n).unwrap()
                && tx
                    .node_property(n, "score")
                    .unwrap()
                    .and_then(|v| v.as_int())
                    .is_some_and(|s| (lo..=hi).contains(&s))
        })
        .collect();
    out.sort();
    out
}

/// Half-open and typed bounds behave identically on both paths, including
/// floats (whose index keys sort numerically) and cross-type graphs.
#[test]
fn typed_and_half_open_bounds_agree_across_paths() {
    let dir = TempDir::new("range_typed");
    let db = open(&dir);
    let mut tx = db.begin();
    for i in 0..10i64 {
        tx.create_node(&["T"], &[("v", PropertyValue::Int(i))])
            .unwrap();
    }
    for x in [-2.5f64, -0.5, 0.0, 1.5, 9.75] {
        tx.create_node(&["T"], &[("v", PropertyValue::Float(x))])
            .unwrap();
    }
    for s in ["alpha", "beta", "gamma"] {
        tx.create_node(&["T"], &[("v", PropertyValue::String(s.into()))])
            .unwrap();
    }
    tx.commit().unwrap();

    let tx = db.txn().read_only().begin();
    let both = |q: fn() -> (Bound<PropertyValue>, Bound<PropertyValue>)| {
        let pushed = sorted(tx.query().filter_property_range("v", q()).ids().unwrap());
        let decoded = sorted(
            tx.query()
                .filter_property_range("v", q())
                .pushdown(false)
                .ids()
                .unwrap(),
        );
        assert_eq!(pushed, decoded);
        pushed
    };

    // v >= 4 (ints only: half-open stays in the bound's type).
    let ge4 = both(|| (Bound::Included(PropertyValue::Int(4)), Bound::Unbounded));
    assert_eq!(ge4.len(), 6);
    // v < 2 (ints only).
    let lt2 = both(|| (Bound::Unbounded, Bound::Excluded(PropertyValue::Int(2))));
    assert_eq!(lt2.len(), 2);
    // Float range straddling zero: negatives must order correctly.
    let floats = both(|| {
        (
            Bound::Included(PropertyValue::Float(-1.0)),
            Bound::Included(PropertyValue::Float(2.0)),
        )
    });
    assert_eq!(floats.len(), 3, "-0.5, 0.0 and 1.5");
    // String range.
    let strings = both(|| {
        (
            Bound::Included(PropertyValue::String("b".into())),
            Bound::Unbounded,
        )
    });
    assert_eq!(strings.len(), 2, "beta and gamma");
    // Fully open = has the property at all, every type.
    let any = both(|| (Bound::Unbounded, Bound::Unbounded));
    assert_eq!(any.len(), 18);

    // The transaction-level scan surface agrees with the query builder.
    let direct: Vec<NodeId> = tx
        .nodes_with_property_range("v", PropertyValue::Int(4)..)
        .unwrap()
        .collect::<graphsi_core::Result<_>>()
        .unwrap();
    assert_eq!(sorted(direct), ge4);
}
