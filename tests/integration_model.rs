//! Model-based (property) tests: random operation sequences executed both
//! against the real database and against a trivial in-memory model, with
//! snapshot semantics checked after every commit.
//!
//! The model is a map `node index -> value` plus, per committed
//! transaction, the full history of committed states. Snapshot isolation
//! requires that a transaction which began after the i-th commit observes
//! exactly the i-th model state, regardless of later commits.

use std::collections::BTreeMap;

use proptest::prelude::*;

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, GraphDb, NodeId, PropertyValue};

/// One step of the generated workload.
#[derive(Clone, Debug)]
enum Step {
    /// Set `value` on node `slot` and commit.
    CommitUpdate { slot: usize, value: i64 },
    /// Update `slot` but roll the transaction back.
    RolledBackUpdate { slot: usize, value: i64 },
    /// Run garbage collection.
    Gc,
}

fn step_strategy(slots: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0..slots, -1000i64..1000).prop_map(|(slot, value)| Step::CommitUpdate { slot, value }),
        1 => (0..slots, -1000i64..1000)
            .prop_map(|(slot, value)| Step::RolledBackUpdate { slot, value }),
        1 => Just(Step::Gc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Committed state always equals the model, rolled-back updates leave
    /// no trace, and an old snapshot (taken half way through the history)
    /// keeps observing exactly the state it started from.
    #[test]
    fn random_histories_respect_snapshot_isolation(
        steps in proptest::collection::vec(step_strategy(4), 1..40)
    ) {
        let slots = 4usize;
        let dir = TempDir::new("model");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();

        // Seed the slots.
        let mut tx = db.begin();
        let nodes: Vec<NodeId> = (0..slots)
            .map(|i| {
                tx.create_node(&["Slot"], &[("value", PropertyValue::Int(i as i64))])
                    .unwrap()
            })
            .collect();
        tx.commit().unwrap();

        let mut model: BTreeMap<usize, i64> = (0..slots).map(|i| (i, i as i64)).collect();

        // Take a snapshot roughly half way through the step sequence and
        // remember what the model looked like at that point.
        let snapshot_at = steps.len() / 2;
        let mut pinned_model: Option<BTreeMap<usize, i64>> = None;
        let mut pinned_tx = None;

        for (i, step) in steps.iter().enumerate() {
            if i == snapshot_at {
                pinned_model = Some(model.clone());
                pinned_tx = Some(db.begin());
            }
            match step {
                Step::CommitUpdate { slot, value } => {
                    let mut tx = db.begin();
                    tx.set_node_property(nodes[*slot], "value", PropertyValue::Int(*value))
                        .unwrap();
                    tx.commit().unwrap();
                    model.insert(*slot, *value);
                }
                Step::RolledBackUpdate { slot, value } => {
                    let mut tx = db.begin();
                    tx.set_node_property(nodes[*slot], "value", PropertyValue::Int(*value))
                        .unwrap();
                    tx.rollback();
                }
                Step::Gc => {
                    db.run_gc();
                }
            }

            // After every step the latest committed state matches the model.
            let check = db.begin();
            for (slot, expected) in &model {
                let actual = check
                    .node_property(nodes[*slot], "value")
                    .unwrap()
                    .unwrap()
                    .as_int()
                    .unwrap();
                prop_assert_eq!(actual, *expected, "slot {} after step {}", slot, i);
            }

            // The pinned snapshot, if taken, still observes its own state.
            if let (Some(pinned), Some(tx)) = (&pinned_model, &pinned_tx) {
                for (slot, expected) in pinned {
                    let actual = tx
                        .node_property(nodes[*slot], "value")
                        .unwrap()
                        .unwrap()
                        .as_int()
                        .unwrap();
                    prop_assert_eq!(actual, *expected, "pinned slot {} after step {}", slot, i);
                }
            }
        }
    }

    /// Durability model check: whatever the model says at the end is what a
    /// reopened database reports.
    #[test]
    fn random_histories_survive_reopen(
        steps in proptest::collection::vec(step_strategy(3), 1..25)
    ) {
        let slots = 3usize;
        let dir = TempDir::new("model_reopen");
        let mut model: BTreeMap<usize, i64> = (0..slots).map(|i| (i, i as i64)).collect();
        let nodes: Vec<NodeId>;
        {
            let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
            let mut tx = db.begin();
            nodes = (0..slots)
                .map(|i| {
                    tx.create_node(&["Slot"], &[("value", PropertyValue::Int(i as i64))])
                        .unwrap()
                })
                .collect();
            tx.commit().unwrap();
            for step in &steps {
                match step {
                    Step::CommitUpdate { slot, value } => {
                        let mut tx = db.begin();
                        tx.set_node_property(nodes[*slot], "value", PropertyValue::Int(*value))
                            .unwrap();
                        tx.commit().unwrap();
                        model.insert(*slot, *value);
                    }
                    Step::RolledBackUpdate { slot, value } => {
                        let mut tx = db.begin();
                        tx.set_node_property(nodes[*slot], "value", PropertyValue::Int(*value))
                            .unwrap();
                        tx.rollback();
                    }
                    Step::Gc => {
                        db.run_gc();
                    }
                }
            }
            // No checkpoint: recovery must come from the WAL.
        }
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let tx = db.begin();
        for (slot, expected) in &model {
            let actual = tx
                .node_property(nodes[*slot], "value")
                .unwrap()
                .unwrap()
                .as_int()
                .unwrap();
            prop_assert_eq!(actual, *expected, "slot {} after reopen", slot);
        }
    }
}
