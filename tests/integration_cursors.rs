//! Cursor chunk-boundary integration tests: a reader paging through index
//! postings and relationship chains while concurrent writers commit and
//! the garbage collector runs. The invariants, per the paper's snapshot
//! rules:
//!
//! * **no phantoms below the snapshot** — entities committed after the
//!   reader's start timestamp never appear, no matter where a chunk
//!   boundary falls;
//! * **no lost entries above the watermark** — entities visible to the
//!   reader survive GC (the watermark is at or below every active start
//!   timestamp) and are delivered even when GC compacts the structures a
//!   cursor is parked in;
//! * both hold across chunk sizes 1, 2 and the default.

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, Direction, GraphDb, NodeId, PropertyValue, Transaction};

const CHUNK_SIZES: &[usize] = &[1, 2, DbConfig::DEFAULT_SCAN_CHUNK_SIZE];

fn open(dir: &TempDir) -> GraphDb {
    GraphDb::open(dir.path(), DbConfig::default()).unwrap()
}

fn sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
    v.sort();
    v
}

/// A reader pages a label scan in single steps while a writer keeps
/// committing new matching nodes and deleting old ones, with GC runs in
/// between. The reader must deliver exactly its snapshot.
#[test]
fn label_scan_pages_through_concurrent_commits_and_gc() {
    for &chunk in CHUNK_SIZES {
        let dir = TempDir::new("cursor_label");
        let db = open(&dir);

        let mut tx = db.begin();
        let seeded: Vec<NodeId> = (0..10)
            .map(|_| tx.create_node(&["Page"], &[]).unwrap())
            .collect();
        tx.commit().unwrap();

        let reader = db.txn().read_only().scan_chunk_size(chunk).begin();
        let mut stream = reader.query().nodes_with_label("Page").stream().unwrap();

        // Pull a few results, then churn: each round deletes one seeded
        // node (tombstoning its posting) and inserts a fresh one (a
        // would-be phantom), then GC reclaims what it can.
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(stream.next().unwrap().unwrap());
        }
        for victim in [seeded[4], seeded[7], seeded[9]] {
            let mut w = db.begin();
            w.delete_node(victim).unwrap();
            w.create_node(&["Page"], &[]).unwrap();
            w.commit().unwrap();
            db.run_gc();
        }
        for id in stream {
            got.push(id.unwrap());
        }

        assert_eq!(
            sorted(got),
            sorted(seeded.clone()),
            "chunk {chunk}: the reader's snapshot is exactly the seed — \
             no phantoms from the inserts, no lost entries from the deletes"
        );
        drop(reader);

        // A fresh snapshot sees the post-churn world: 10 - 3 + 3 nodes.
        let after = db.txn().read_only().begin();
        assert_eq!(after.query().nodes_with_label("Page").count().unwrap(), 10);
    }
}

/// Same discipline for the relationship-chain cursor: the reader pages a
/// hub's relationships while a writer unlinks some (forcing chain-cursor
/// restarts) and attaches new spokes, with GC interleaved.
#[test]
fn rel_chain_pages_through_concurrent_unlink_and_gc() {
    for &chunk in CHUNK_SIZES {
        let dir = TempDir::new("cursor_chain");
        let db = open(&dir);

        let mut tx = db.begin();
        let hub = tx.create_node(&["Hub"], &[]).unwrap();
        let mut rels = Vec::new();
        for _ in 0..10 {
            let spoke = tx.create_node(&["Spoke"], &[]).unwrap();
            rels.push(tx.create_relationship(hub, spoke, "SPOKE", &[]).unwrap());
        }
        tx.commit().unwrap();
        // Collapse version chains so the reader starts from a clean,
        // store-backed world (overlay pruned lazily on first use).
        db.run_gc();

        let reader = db.txn().read_only().scan_chunk_size(chunk).begin();
        let mut iter = reader.relationships(hub, Direction::Both).unwrap();
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(iter.next().unwrap().unwrap().id);
        }

        // Concurrent writer: delete two not-yet-delivered relationships
        // (the chain is rewired under the parked cursor) and add two new
        // spokes (phantoms for the reader), then GC.
        let mut w = db.begin();
        w.delete_relationship(rels[0]).unwrap();
        w.delete_relationship(rels[5]).unwrap();
        let fresh = w.create_node(&["Spoke"], &[]).unwrap();
        w.create_relationship(hub, fresh, "SPOKE", &[]).unwrap();
        w.commit().unwrap();
        db.run_gc();

        for rel in iter {
            got.push(rel.unwrap().id);
        }
        got.sort();
        got.dedup();
        assert_eq!(
            got.len(),
            rels.len(),
            "chunk {chunk}: reader sees exactly its snapshot's {} spokes \
             (got {:?})",
            rels.len(),
            got
        );
        for rel in &rels {
            assert!(got.contains(rel), "chunk {chunk}: lost {rel:?}");
        }
        drop(reader);

        let after = db.txn().read_only().begin();
        assert_eq!(after.degree(hub, Direction::Both).unwrap(), 9);
    }
}

/// Writer threads keep committing while reader threads page label scans
/// and expansions at tiny chunk sizes with auto-GC enabled: every reader
/// must observe an atomic count (a multiple of the batch size).
#[test]
fn paging_readers_race_writers_and_auto_gc() {
    let dir = TempDir::new("cursor_race");
    let db = GraphDb::open(
        dir.path(),
        DbConfig::default().with_auto_gc(4).with_scan_chunk_size(2),
    )
    .unwrap();

    let mut tx = db.begin();
    let hub = tx.create_node(&["Hub"], &[]).unwrap();
    tx.commit().unwrap();

    const BATCH: usize = 3;
    const ROUNDS: usize = 25;
    let writer = {
        let db = db.clone();
        std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                db.write_with_retry(|tx| {
                    for _ in 0..BATCH {
                        let n = tx.create_node(&["Batch"], &[])?;
                        tx.create_relationship(hub, n, "IN", &[])?;
                    }
                    Ok(())
                })
                .unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = db.clone();
            std::thread::spawn(move || {
                for _ in 0..40 {
                    let tx = db.txn().read_only().begin();
                    let labeled = tx.query().nodes_with_label("Batch").count().unwrap();
                    assert_eq!(labeled % BATCH, 0, "a commit must be atomic to a pager");
                    let expanded = tx
                        .query()
                        .start_nodes([hub])
                        .expand(Direction::Outgoing, Some("IN"))
                        .count()
                        .unwrap();
                    assert_eq!(expanded % BATCH, 0);
                    assert_eq!(expanded, labeled, "chain and index agree per snapshot");
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    let tx = db.txn().read_only().begin();
    assert_eq!(
        tx.query().nodes_with_label("Batch").count().unwrap(),
        BATCH * ROUNDS
    );
}

/// The acceptance gauge: a query pipeline over a scan much larger than the
/// chunk size never buffers more than one chunk of candidate IDs at a
/// time, measured by the `candidate_buffer_peak` metrics counter.
#[test]
fn query_peak_candidate_buffering_is_bounded_by_chunk_size() {
    const CHUNK: usize = 8;
    let dir = TempDir::new("cursor_peak");
    let db = GraphDb::open(dir.path(), DbConfig::default().with_scan_chunk_size(CHUNK)).unwrap();

    let mut tx = db.begin();
    let hub = tx.create_node(&["Hub"], &[]).unwrap();
    for i in 0..500 {
        let n = tx
            .create_node(&["Big"], &[("i", PropertyValue::Int(i))])
            .unwrap();
        tx.create_relationship(hub, n, "IN", &[]).unwrap();
    }
    tx.commit().unwrap();

    let tx = db.txn().read_only().begin();
    let count = tx
        .query()
        .nodes_with_label("Big")
        .filter_property("i", |v| v.as_int().is_some_and(|i| i % 2 == 0))
        .expand(Direction::Incoming, Some("IN"))
        .distinct()
        .ids()
        .unwrap();
    assert_eq!(count, vec![hub]);

    // Also drive the whole-graph scans through the same bound.
    assert_eq!(tx.all_nodes().unwrap().count(), 501);
    assert_eq!(tx.all_relationships().unwrap().count(), 500);

    let metrics = db.metrics();
    assert!(metrics.chunk_refills > 0);
    assert!(
        metrics.candidate_buffer_peak <= CHUNK as u64,
        "501-node scans must never buffer more than {CHUNK} candidate IDs \
         per refill (peak was {})",
        metrics.candidate_buffer_peak
    );
}

/// Whole-graph scans page the MVCC cache through sorted per-shard pages
/// with range-resume, so their transient buffering is bounded by the chunk
/// size even under the worst possible shard skew — here a single cache
/// shard holding every key, which used to be copied wholesale and made
/// `shard_key_buffer_peak` scale with the shard instead of the chunk.
#[test]
fn whole_graph_scan_buffering_is_chunk_bounded_under_shard_skew() {
    const CHUNK: usize = 4;
    const NODES: i64 = 200;
    let dir = TempDir::new("cursor_skewed_shard");
    let config = DbConfig {
        cache_shards: 1, // maximum skew: every cached key in one shard
        ..DbConfig::default().with_scan_chunk_size(CHUNK)
    };
    let db = GraphDb::open(dir.path(), config).unwrap();

    let mut tx = db.begin();
    for i in 0..NODES {
        tx.create_node(&["Skew"], &[("i", PropertyValue::Int(i))])
            .unwrap();
    }
    tx.commit().unwrap();

    // Delete half of the nodes under a pinned old snapshot, so the cache
    // stage of the scan has real work: the deleted nodes' versions live
    // only in the (single-shard) cache.
    let old_reader = db.txn().read_only().begin();
    let mut tx = db.begin();
    let victims: Vec<NodeId> = old_reader
        .all_nodes_vec()
        .unwrap()
        .into_iter()
        .step_by(2)
        .collect();
    for &victim in &victims {
        tx.delete_node(victim).unwrap();
    }
    tx.commit().unwrap();

    assert_eq!(old_reader.all_nodes().unwrap().count(), NODES as usize);
    let fresh = db.txn().read_only().begin();
    assert_eq!(
        fresh.all_nodes().unwrap().count(),
        NODES as usize - victims.len()
    );

    let metrics = db.metrics();
    assert!(metrics.shard_key_buffer_peak > 0, "the cache stage ran");
    assert!(
        metrics.shard_key_buffer_peak <= CHUNK as u64,
        "a {NODES}-key single-shard cache must page in chunks of {CHUNK} \
         (peak was {})",
        metrics.shard_key_buffer_peak
    );
}

/// Paging is equivalent across chunk sizes for every read surface: label
/// scan, property scan, whole-graph scans, expansion and traversal.
#[test]
fn every_read_surface_is_chunk_size_invariant() {
    let dir = TempDir::new("cursor_invariant");
    let db = open(&dir);
    let mut tx = db.begin();
    let hub = tx
        .create_node(&["N"], &[("k", PropertyValue::Int(1))])
        .unwrap();
    for i in 0..17 {
        let n = tx
            .create_node(&["N"], &[("k", PropertyValue::Int(i % 4))])
            .unwrap();
        tx.create_relationship(hub, n, "E", &[]).unwrap();
    }
    tx.commit().unwrap();

    let snapshot = |tx: &Transaction| {
        (
            tx.nodes_with_label_vec("N").unwrap(),
            tx.nodes_with_property_vec("k", &PropertyValue::Int(1))
                .unwrap(),
            tx.all_nodes_vec().unwrap(),
            tx.all_relationships_vec().unwrap(),
            tx.neighbors_vec(hub, Direction::Both).unwrap(),
            graphsi_core::traversal::bfs(tx, hub, 3).unwrap(),
        )
    };
    let baseline = {
        let tx = db.txn().read_only().begin();
        snapshot(&tx)
    };
    for &chunk in CHUNK_SIZES {
        let tx = db.txn().read_only().scan_chunk_size(chunk).begin();
        assert_eq!(snapshot(&tx), baseline, "chunk {chunk}");
    }
}
