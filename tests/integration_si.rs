//! Integration tests for the core snapshot-isolation semantics: the read
//! rule, read-your-own-writes, commit visibility and the write rule
//! (first-updater-wins), exercised through the public `graphsi-core` API.

use graphsi_core::test_support::TempDir;
use graphsi_core::{ConflictStrategy, DbConfig, Direction, GraphDb, IsolationLevel, PropertyValue};

fn open_si(dir: &TempDir) -> GraphDb {
    GraphDb::open(dir.path(), DbConfig::default()).expect("open db")
}

#[test]
fn committed_data_is_visible_to_later_transactions() {
    let dir = TempDir::new("si_visible");
    let db = open_si(&dir);

    let mut tx = db.begin();
    let alice = tx
        .create_node(&["Person"], &[("name", PropertyValue::from("Alice"))])
        .unwrap();
    let bob = tx
        .create_node(&["Person"], &[("name", PropertyValue::from("Bob"))])
        .unwrap();
    let knows = tx
        .create_relationship(
            alice,
            bob,
            "KNOWS",
            &[("since", PropertyValue::from(2016i64))],
        )
        .unwrap();
    tx.commit().unwrap();

    let tx = db.begin();
    let node = tx.get_node(alice).unwrap().expect("alice exists");
    assert!(node.has_label("Person"));
    assert_eq!(node.property("name"), Some(&PropertyValue::from("Alice")));
    let rel = tx.get_relationship(knows).unwrap().expect("rel exists");
    assert_eq!(rel.rel_type, "KNOWS");
    assert_eq!(rel.source, alice);
    assert_eq!(rel.target, bob);
    assert_eq!(tx.neighbors_vec(alice, Direction::Both).unwrap(), vec![bob]);
    assert_eq!(tx.degree(bob, Direction::Both).unwrap(), 1);
}

#[test]
fn uncommitted_writes_are_private_but_readable_by_the_writer() {
    let dir = TempDir::new("si_ryow");
    let db = open_si(&dir);

    // Seed one committed node.
    let mut tx = db.begin();
    let seed = tx.create_node(&["Seed"], &[]).unwrap();
    tx.commit().unwrap();

    let mut writer = db.begin();
    let fresh = writer
        .create_node(&["Person"], &[("name", PropertyValue::from("Carol"))])
        .unwrap();
    writer
        .set_node_property(seed, "touched", PropertyValue::Bool(true))
        .unwrap();
    let pending_rel = writer
        .create_relationship(fresh, seed, "TOUCHES", &[])
        .unwrap();

    // The writer reads its own writes...
    assert!(writer.node_exists(fresh).unwrap());
    assert_eq!(
        writer.node_property(seed, "touched").unwrap(),
        Some(PropertyValue::Bool(true))
    );
    assert_eq!(writer.degree(fresh, Direction::Both).unwrap(), 1);
    assert!(writer.get_relationship(pending_rel).unwrap().is_some());
    assert_eq!(writer.nodes_with_label_vec("Person").unwrap(), vec![fresh]);

    // ...while a concurrent reader sees none of it.
    let reader = db.begin();
    assert!(!reader.node_exists(fresh).unwrap());
    assert_eq!(reader.node_property(seed, "touched").unwrap(), None);
    assert_eq!(reader.degree(seed, Direction::Both).unwrap(), 0);
    assert_eq!(reader.nodes_with_label("Person").unwrap().count(), 0);
    drop(reader);

    writer.commit().unwrap();

    let after = db.begin();
    assert!(after.node_exists(fresh).unwrap());
    assert_eq!(
        after.node_property(seed, "touched").unwrap(),
        Some(PropertyValue::Bool(true))
    );
}

#[test]
fn snapshot_readers_do_not_observe_later_commits() {
    let dir = TempDir::new("si_snapshot");
    let db = open_si(&dir);

    let mut tx = db.begin();
    let node = tx
        .create_node(&["Counter"], &[("value", PropertyValue::Int(1))])
        .unwrap();
    tx.commit().unwrap();

    // The reader starts before the update commits.
    let reader = db.begin();
    assert_eq!(
        reader.node_property(node, "value").unwrap(),
        Some(PropertyValue::Int(1))
    );

    let mut writer = db.begin();
    writer
        .set_node_property(node, "value", PropertyValue::Int(2))
        .unwrap();
    writer.commit().unwrap();

    // Same transaction, same snapshot: still 1.
    assert_eq!(
        reader.node_property(node, "value").unwrap(),
        Some(PropertyValue::Int(1))
    );
    drop(reader);

    // A new transaction sees 2.
    let fresh = db.begin();
    assert_eq!(
        fresh.node_property(node, "value").unwrap(),
        Some(PropertyValue::Int(2))
    );
}

#[test]
fn snapshot_readers_still_see_entities_deleted_after_their_start() {
    let dir = TempDir::new("si_delete_visibility");
    let db = open_si(&dir);

    let mut tx = db.begin();
    let a = tx.create_node(&["Person"], &[]).unwrap();
    let b = tx.create_node(&["Person"], &[]).unwrap();
    let rel = tx.create_relationship(a, b, "KNOWS", &[]).unwrap();
    tx.commit().unwrap();

    let reader = db.begin();

    // Concurrently delete the relationship and node b.
    let mut deleter = db.begin();
    deleter.delete_relationship(rel).unwrap();
    deleter.delete_node(b).unwrap();
    deleter.commit().unwrap();

    // The old snapshot still sees both.
    assert!(reader.node_exists(b).unwrap());
    assert!(reader.get_relationship(rel).unwrap().is_some());
    assert_eq!(reader.neighbors_vec(a, Direction::Both).unwrap(), vec![b]);
    drop(reader);

    // A fresh snapshot does not.
    let fresh = db.begin();
    assert!(!fresh.node_exists(b).unwrap());
    assert!(fresh.get_relationship(rel).unwrap().is_none());
    assert_eq!(fresh.neighbors(a, Direction::Both).unwrap().count(), 0);
}

#[test]
fn first_updater_wins_aborts_the_second_writer() {
    let dir = TempDir::new("si_fuw");
    let db = open_si(&dir);

    let mut tx = db.begin();
    let node = tx
        .create_node(&["Hot"], &[("value", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    t1.set_node_property(node, "value", PropertyValue::Int(1))
        .unwrap();
    // T2 is the second updater of the same node: it must abort right away.
    let err = t2
        .set_node_property(node, "value", PropertyValue::Int(2))
        .unwrap_err();
    assert!(
        err.is_conflict(),
        "expected a write-write conflict, got {err}"
    );
    assert!(!t2.is_active());

    t1.commit().unwrap();
    let check = db.begin();
    assert_eq!(
        check.node_property(node, "value").unwrap(),
        Some(PropertyValue::Int(1))
    );
    assert!(db.metrics().conflict_aborts >= 1);
}

#[test]
fn writer_that_commits_first_invalidates_stale_snapshots_under_fuw() {
    let dir = TempDir::new("si_stale");
    let db = open_si(&dir);

    let mut tx = db.begin();
    let node = tx
        .create_node(&[], &[("value", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    // T2 starts before T1 commits a newer version.
    let mut t2 = db.begin();
    let mut t1 = db.begin();
    t1.set_node_property(node, "value", PropertyValue::Int(1))
        .unwrap();
    t1.commit().unwrap();

    // T2 now tries to update based on its stale snapshot: abort.
    let err = t2
        .set_node_property(node, "value", PropertyValue::Int(2))
        .unwrap_err();
    assert!(err.is_conflict());
}

#[test]
fn first_committer_wins_defers_the_abort_to_commit_time() {
    let dir = TempDir::new("si_fcw");
    let db = GraphDb::open(
        dir.path(),
        DbConfig::default().with_conflict_strategy(ConflictStrategy::FirstCommitterWins),
    )
    .unwrap();

    let mut tx = db.begin();
    let node = tx
        .create_node(&[], &[("value", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    t1.set_node_property(node, "value", PropertyValue::Int(1))
        .unwrap();
    // Under first-committer-wins the second updater is not aborted yet.
    t2.set_node_property(node, "value", PropertyValue::Int(2))
        .unwrap();

    t1.commit().unwrap();
    // T2 loses at commit time.
    let err = t2.commit().unwrap_err();
    assert!(err.is_conflict());

    let check = db.begin();
    assert_eq!(
        check.node_property(node, "value").unwrap(),
        Some(PropertyValue::Int(1))
    );
}

#[test]
fn rollback_discards_everything() {
    let dir = TempDir::new("si_rollback");
    let db = open_si(&dir);

    let mut tx = db.begin();
    let node = tx.create_node(&["Person"], &[]).unwrap();
    tx.rollback();

    let check = db.begin();
    assert!(!check.node_exists(node).unwrap());
    assert_eq!(check.nodes_with_label("Person").unwrap().count(), 0);
    assert_eq!(db.metrics().rollbacks, 1);
}

#[test]
fn dropping_an_active_transaction_rolls_it_back() {
    let dir = TempDir::new("si_drop");
    let db = open_si(&dir);
    let node = {
        let mut tx = db.begin();
        tx.create_node(&["Ghost"], &[]).unwrap()
        // dropped here without commit
    };
    let check = db.begin();
    assert!(!check.node_exists(node).unwrap());
    assert_eq!(db.active_transactions(), 1); // only `check`
}

#[test]
fn label_and_property_index_lookups_respect_snapshots() {
    let dir = TempDir::new("si_index");
    let db = open_si(&dir);

    let mut tx = db.begin();
    let a = tx
        .create_node(&["Person"], &[("age", PropertyValue::Int(30))])
        .unwrap();
    tx.commit().unwrap();

    let old_reader = db.begin();

    let mut tx = db.begin();
    let b = tx
        .create_node(&["Person"], &[("age", PropertyValue::Int(30))])
        .unwrap();
    tx.remove_label(a, "Person").unwrap();
    tx.set_node_property(a, "age", PropertyValue::Int(31))
        .unwrap();
    tx.commit().unwrap();

    // Old snapshot: only `a`, with its old label and value.
    assert_eq!(old_reader.nodes_with_label_vec("Person").unwrap(), vec![a]);
    assert_eq!(
        old_reader
            .nodes_with_property_vec("age", &PropertyValue::Int(30))
            .unwrap(),
        vec![a]
    );
    drop(old_reader);

    // New snapshot: only `b` matches both predicates now.
    let fresh = db.begin();
    assert_eq!(fresh.nodes_with_label_vec("Person").unwrap(), vec![b]);
    assert_eq!(
        fresh
            .nodes_with_property_vec("age", &PropertyValue::Int(30))
            .unwrap(),
        vec![b]
    );
    assert_eq!(
        fresh
            .nodes_with_property_vec("age", &PropertyValue::Int(31))
            .unwrap(),
        vec![a]
    );
}

#[test]
fn deleting_a_node_with_relationships_is_rejected() {
    let dir = TempDir::new("si_delete_guard");
    let db = open_si(&dir);
    let mut tx = db.begin();
    let a = tx.create_node(&[], &[]).unwrap();
    let b = tx.create_node(&[], &[]).unwrap();
    let rel = tx.create_relationship(a, b, "LINK", &[]).unwrap();
    tx.commit().unwrap();

    let mut tx = db.begin();
    assert!(tx.delete_node(a).is_err());
    // After deleting the relationship first it works.
    tx.delete_relationship(rel).unwrap();
    tx.delete_node(a).unwrap();
    tx.commit().unwrap();

    let check = db.begin();
    assert!(!check.node_exists(a).unwrap());
    assert!(check.node_exists(b).unwrap());
}

#[test]
fn reserved_names_are_rejected() {
    let dir = TempDir::new("si_reserved");
    let db = open_si(&dir);
    let mut tx = db.begin();
    let node = tx.create_node(&[], &[]).unwrap();
    assert!(tx
        .set_node_property(node, "__graphsi.commit_ts", PropertyValue::Int(1))
        .is_err());
    assert!(tx.add_label(node, "__graphsi.internal").is_err());
    assert!(tx
        .create_node(&[], &[("__graphsi.x", PropertyValue::Int(1))])
        .is_err());
}

#[test]
fn read_committed_transactions_see_latest_committed_state() {
    let dir = TempDir::new("si_rc_latest");
    let db = open_si(&dir);
    let mut tx = db.begin();
    let node = tx
        .create_node(&[], &[("value", PropertyValue::Int(1))])
        .unwrap();
    tx.commit().unwrap();

    // An RC reader started before an update still observes the newer value
    // afterwards (no snapshot).
    let rc_reader = db.txn().isolation(IsolationLevel::ReadCommitted).begin();
    assert_eq!(
        rc_reader.node_property(node, "value").unwrap(),
        Some(PropertyValue::Int(1))
    );
    let mut writer = db.begin();
    writer
        .set_node_property(node, "value", PropertyValue::Int(2))
        .unwrap();
    writer.commit().unwrap();
    assert_eq!(
        rc_reader.node_property(node, "value").unwrap(),
        Some(PropertyValue::Int(2)),
        "read committed must observe the newer committed value"
    );
}

#[test]
fn update_properties_and_labels_roundtrip() {
    let dir = TempDir::new("si_update_roundtrip");
    let db = open_si(&dir);
    let mut tx = db.begin();
    let node = tx
        .create_node(
            &["A"],
            &[
                ("p", PropertyValue::Int(1)),
                ("q", PropertyValue::Bool(true)),
            ],
        )
        .unwrap();
    tx.commit().unwrap();

    let mut tx = db.begin();
    tx.add_label(node, "B").unwrap();
    tx.remove_label(node, "A").unwrap();
    tx.set_node_property(node, "p", PropertyValue::from("text"))
        .unwrap();
    tx.remove_node_property(node, "q").unwrap();
    tx.commit().unwrap();

    let check = db.begin();
    let n = check.get_node(node).unwrap().unwrap();
    assert_eq!(n.labels, vec!["B".to_string()]);
    assert_eq!(n.property("p"), Some(&PropertyValue::from("text")));
    assert_eq!(n.property("q"), None);
    assert!(check.node_has_label(node, "B").unwrap());
    assert!(!check.node_has_label(node, "A").unwrap());
}

#[test]
fn metrics_track_transaction_outcomes() {
    let dir = TempDir::new("si_metrics");
    let db = open_si(&dir);
    let mut tx = db.begin();
    tx.create_node(&[], &[]).unwrap();
    tx.commit().unwrap();
    let ro = db.begin();
    let _ = ro.node_count().unwrap();
    ro.commit().unwrap();
    let m = db.metrics();
    assert_eq!(m.begins, 2);
    assert_eq!(m.commits, 2);
    assert_eq!(m.read_only_commits, 1);
    assert!(m.writes >= 1);
    assert!(m.reads >= 1);
}
