//! Garbage-collection integration tests: watermark-driven reclamation,
//! reader protection, threaded vs vacuum equivalence, index GC and the
//! automatic GC trigger.

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, GcStrategy, GraphDb, PropertyValue};

fn open(dir: &TempDir) -> GraphDb {
    GraphDb::open(dir.path(), DbConfig::default()).unwrap()
}

#[test]
fn versions_accumulate_while_a_reader_pins_the_watermark() {
    let dir = TempDir::new("gc_pin");
    let db = open(&dir);
    let mut tx = db.begin();
    let node = tx
        .create_node(&[], &[("v", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    let reader = db.begin(); // pins the watermark at this snapshot

    for i in 1..=10i64 {
        let mut tx = db.begin();
        tx.set_node_property(node, "v", PropertyValue::Int(i))
            .unwrap();
        tx.commit().unwrap();
    }
    assert!(db.node_cache_stats().versions >= 10);

    // GC while the reader is active: the version the reader needs (v=0) and
    // everything newer than the watermark must survive.
    let summary = db.run_gc();
    assert_eq!(summary.strategy, GcStrategy::Threaded);
    assert_eq!(
        reader.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(0)),
        "the pinned snapshot still reads its version after GC"
    );
    drop(reader);

    // With no active readers, a second GC collapses the chain to (at most)
    // the newest committed version, which the store already holds.
    let summary = db.run_gc();
    assert!(summary.versions_reclaimed > 0);
    let after = db.node_cache_stats();
    assert!(
        after.versions <= 1,
        "chain collapsed, got {}",
        after.versions
    );

    // The data is still correct.
    let tx = db.begin();
    assert_eq!(
        tx.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(10))
    );
}

#[test]
fn paper_example_versions_40_56_90_watermark_100() {
    // Reproduces the paper's §3 example at the API level: three committed
    // versions; once the oldest active transaction is newer than all of
    // them, only the newest survives in memory.
    let dir = TempDir::new("gc_paper_example");
    let db = open(&dir);
    let mut tx = db.begin();
    let node = tx
        .create_node(&[], &[("v", PropertyValue::Int(40))])
        .unwrap();
    tx.commit().unwrap();
    for v in [56i64, 90] {
        let mut tx = db.begin();
        tx.set_node_property(node, "v", PropertyValue::Int(v))
            .unwrap();
        tx.commit().unwrap();
    }
    // "Oldest active transaction has start timestamp 100": simply a fresh
    // transaction after all three commits.
    let active = db.begin();
    let summary = db.run_gc();
    assert!(
        summary.versions_reclaimed >= 2,
        "the two oldest versions go"
    );
    assert_eq!(
        active.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(90))
    );
}

#[test]
fn threaded_and_vacuum_gc_reclaim_equivalently() {
    let build = |dir: &TempDir| {
        let db = open(dir);
        let mut tx = db.begin();
        let nodes: Vec<_> = (0..20)
            .map(|i| {
                tx.create_node(&["N"], &[("v", PropertyValue::Int(i))])
                    .unwrap()
            })
            .collect();
        tx.commit().unwrap();
        for round in 0..5i64 {
            for &node in &nodes {
                let mut tx = db.begin();
                tx.set_node_property(node, "v", PropertyValue::Int(round * 100))
                    .unwrap();
                tx.commit().unwrap();
            }
        }
        db
    };
    let dir_a = TempDir::new("gc_threaded");
    let dir_b = TempDir::new("gc_vacuum");
    let db_a = build(&dir_a);
    let db_b = build(&dir_b);

    let threaded = db_a.run_gc();
    let vacuum = db_b.run_gc_vacuum();
    assert_eq!(threaded.versions_reclaimed, vacuum.versions_reclaimed);
    assert_eq!(
        db_a.node_cache_stats().versions,
        db_b.node_cache_stats().versions
    );
    // The threaded run never examines more versions than the vacuum run —
    // this is the efficiency claim of the paper (E6).
    assert!(threaded.versions_examined <= vacuum.versions_examined);
}

#[test]
fn threaded_gc_with_no_garbage_examines_nothing() {
    let dir = TempDir::new("gc_idle");
    let db = open(&dir);
    let mut tx = db.begin();
    for i in 0..50i64 {
        tx.create_node(&["N"], &[("v", PropertyValue::Int(i))])
            .unwrap();
    }
    tx.commit().unwrap();
    // First GC may collapse the freshly created chains onto the store.
    db.run_gc();
    // A second run has nothing left to look at.
    let second = db.run_gc();
    assert_eq!(second.versions_examined, 0);
    assert_eq!(second.versions_reclaimed, 0);
    // The vacuum-style run still walks every cached chain — it walks
    // *chains*, not the GC list — so its examined count equals the number
    // of versions resident before the run, garbage or not.
    let resident_before = db.node_cache_stats().versions;
    let vacuum = db.run_gc_vacuum();
    assert_eq!(vacuum.versions_examined, resident_before);
}

#[test]
fn deleted_entities_vanish_from_memory_after_gc() {
    let dir = TempDir::new("gc_tombstones");
    let db = open(&dir);
    let mut tx = db.begin();
    let a = tx.create_node(&["Doomed"], &[]).unwrap();
    let b = tx.create_node(&["Doomed"], &[]).unwrap();
    let rel = tx.create_relationship(a, b, "LINK", &[]).unwrap();
    tx.commit().unwrap();

    let mut tx = db.begin();
    tx.delete_relationship(rel).unwrap();
    tx.delete_node(a).unwrap();
    tx.delete_node(b).unwrap();
    tx.commit().unwrap();

    let summary = db.run_gc();
    assert!(summary.versions_reclaimed > 0);
    assert_eq!(db.node_cache_stats().versions, 0);
    assert_eq!(db.relationship_cache_stats().versions, 0);

    let tx = db.begin();
    assert!(!tx.node_exists(a).unwrap());
    assert!(tx.get_relationship(rel).unwrap().is_none());
    assert_eq!(tx.nodes_with_label("Doomed").unwrap().count(), 0);
}

#[test]
fn index_postings_are_reclaimed_once_unobservable() {
    let dir = TempDir::new("gc_index");
    let db = open(&dir);
    let mut tx = db.begin();
    let node = tx
        .create_node(&["Person"], &[("age", PropertyValue::Int(1))])
        .unwrap();
    tx.commit().unwrap();
    // Ten value changes leave nine dead postings behind.
    for age in 2..=10i64 {
        let mut tx = db.begin();
        tx.set_node_property(node, "age", PropertyValue::Int(age))
            .unwrap();
        tx.commit().unwrap();
    }
    let summary = db.run_gc();
    assert!(summary.index_postings_reclaimed >= 9);
    let tx = db.begin();
    assert_eq!(
        tx.nodes_with_property_vec("age", &PropertyValue::Int(10))
            .unwrap(),
        vec![node]
    );
    assert!(tx
        .nodes_with_property_vec("age", &PropertyValue::Int(5))
        .unwrap()
        .is_empty());
}

#[test]
fn automatic_gc_runs_after_the_configured_number_of_commits() {
    let dir = TempDir::new("gc_auto");
    let db = GraphDb::open(dir.path(), DbConfig::default().with_auto_gc(5)).unwrap();
    let mut tx = db.begin();
    let node = tx
        .create_node(&[], &[("v", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();
    for i in 1..=20i64 {
        let mut tx = db.begin();
        tx.set_node_property(node, "v", PropertyValue::Int(i))
            .unwrap();
        tx.commit().unwrap();
    }
    let metrics = db.metrics();
    assert!(
        metrics.gc_runs >= 3,
        "auto GC ran {} times",
        metrics.gc_runs
    );
    assert!(metrics.versions_reclaimed > 0);
    // Correctness is unaffected.
    let tx = db.begin();
    assert_eq!(
        tx.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(20))
    );
}

#[test]
fn gc_respects_the_oldest_of_several_readers() {
    let dir = TempDir::new("gc_multi_readers");
    let db = open(&dir);
    let mut tx = db.begin();
    let node = tx
        .create_node(&[], &[("v", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    let old_reader = db.begin();
    for i in 1..=3i64 {
        let mut tx = db.begin();
        tx.set_node_property(node, "v", PropertyValue::Int(i))
            .unwrap();
        tx.commit().unwrap();
    }
    let mid_reader = db.begin();
    for i in 4..=6i64 {
        let mut tx = db.begin();
        tx.set_node_property(node, "v", PropertyValue::Int(i))
            .unwrap();
        tx.commit().unwrap();
    }

    db.run_gc();
    // Both readers still see their snapshots.
    assert_eq!(
        old_reader.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(0))
    );
    assert_eq!(
        mid_reader.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(3))
    );
    drop(old_reader);

    db.run_gc();
    // The mid reader still works after the older snapshot's versions went.
    assert_eq!(
        mid_reader.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(3))
    );
}
