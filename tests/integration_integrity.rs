//! Integrity-armour tests: page-trailer checksums across rewrites and
//! compaction, the online verifier's zero-false-positive contract under
//! concurrent writers, and the store crash-point matrix (torn half-page,
//! stale page, bit flip × crash before/after checkpoint).
//!
//! The matrix's contract is *recover or report, never silently wrong*:
//! a faulted page fully covered by WAL replay is rebuilt on reopen; one
//! the log no longer covers must surface as a typed checksum error or a
//! class-labelled verifier finding.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphsi_core::test_support::{TempDir, Watchdog};
use graphsi_core::{
    DbConfig, Direction, GraphDb, NodeId, PageFault, PropertyValue, StoreTarget, SyncPolicy,
};

fn config() -> DbConfig {
    DbConfig::default().with_sync_policy(SyncPolicy::Always)
}

/// A config whose per-store page cache holds `pages` frames: touching one
/// page beyond that evicts (and writes back) the least recently used one,
/// which is how these tests land an injected write fault on disk without
/// running a checkpoint.
fn tiny_cache(pages: usize) -> DbConfig {
    config().with_cache_pages_per_store(pages)
}

/// Creates `n` nodes labelled `Bulk` with `("i", Int(k))`, one commit per
/// node so the WAL carries them individually. Returns the IDs in order.
fn create_bulk(db: &GraphDb, start: i64, n: i64) -> Vec<NodeId> {
    let mut ids = Vec::with_capacity(n as usize);
    for k in start..start + n {
        let mut tx = db.begin();
        ids.push(
            tx.create_node(&["Bulk"], &[("i", PropertyValue::Int(k))])
                .unwrap(),
        );
        tx.commit().unwrap();
    }
    ids
}

/// Asserts every node of `ids` still carries its creation-order value.
fn assert_bulk_intact(db: &GraphDb, ids: &[NodeId], start: i64) {
    let tx = db.txn().read_only().begin();
    for (off, id) in ids.iter().enumerate() {
        assert_eq!(
            tx.node_property(*id, "i").unwrap(),
            Some(PropertyValue::Int(start + off as i64)),
            "node {} lost its property",
            id.raw()
        );
    }
}

// ---------------------------------------------------------------------
// Checksum round-trip
// ---------------------------------------------------------------------

/// Pages are sealed at every flush and verified on every fault-in; a
/// store that has been written, rewritten, garbage collected and
/// checkpointed repeatedly must still read back clean with zero checksum
/// failures.
#[test]
fn checksums_round_trip_across_rewrites_and_gc() {
    let _watchdog = Watchdog::arm(
        "checksums_round_trip_across_rewrites_and_gc",
        Duration::from_secs(120),
    );
    let dir = TempDir::new("integrity_round_trip");
    let ids;
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        ids = create_bulk(&db, 0, 150);
        db.checkpoint().unwrap();
        // Rewrite every node (dirties and reseals the pages), drop a
        // third of them, collect, and checkpoint again.
        for (k, id) in ids.iter().enumerate() {
            let mut tx = db.begin();
            tx.set_node_property(*id, "i", PropertyValue::Int(1000 + k as i64))
                .unwrap();
            tx.commit().unwrap();
        }
        for id in &ids[100..] {
            let mut tx = db.begin();
            tx.delete_node(*id).unwrap();
            tx.commit().unwrap();
        }
        db.run_gc();
        db.checkpoint().unwrap();
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.txn().read_only().begin();
    for (k, id) in ids[..100].iter().enumerate() {
        assert_eq!(
            tx.node_property(*id, "i").unwrap(),
            Some(PropertyValue::Int(1000 + k as i64))
        );
    }
    for id in &ids[100..] {
        assert!(tx.get_node(*id).unwrap().is_none());
    }
    drop(tx);
    let report = db.verify().unwrap();
    assert!(report.is_clean(), "{}", report.to_text());
    assert!(report.pages_checked > 0);
    assert_eq!(db.metrics().page_checksum_failures, 0);
}

// ---------------------------------------------------------------------
// Verifier under churn
// ---------------------------------------------------------------------

/// The zero-false-positive contract: a healthy database being actively
/// written (creates, updates, deletes, relationships, GC) verifies clean
/// every single time — transient mid-commit states must never be
/// reported.
#[test]
fn verifier_finds_nothing_on_a_clean_db_under_concurrent_writers() {
    let _watchdog = Watchdog::arm(
        "verifier_finds_nothing_on_a_clean_db_under_concurrent_writers",
        Duration::from_secs(120),
    );
    let dir = TempDir::new("integrity_churn");
    let db = Arc::new(GraphDb::open(dir.path(), config()).unwrap());
    let done = Arc::new(AtomicBool::new(false));

    // Write-write conflicts are ordinary snapshot-isolation aborts (a
    // successor transaction can race the pipeline's lock release), so
    // every writer step is a retried closure, as a real client would run.
    fn with_retry(
        db: &GraphDb,
        mut f: impl FnMut(&mut graphsi_core::Transaction) -> graphsi_core::Result<()>,
    ) {
        for _ in 0..100 {
            let mut tx = db.begin();
            if f(&mut tx).is_ok() && tx.commit().is_ok() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("transaction could not commit after 100 attempts");
    }

    let writers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut mine = Vec::new();
                for k in 0..120i64 {
                    let mut id = None;
                    let prev = mine.last().copied();
                    with_retry(&db, |tx| {
                        let n = tx.create_node(&["Churn"], &[("v", PropertyValue::Int(k))])?;
                        if let Some(prev) = prev {
                            tx.create_relationship(prev, n, "NEXT", &[])?;
                        }
                        id = Some(n);
                        Ok(())
                    });
                    let id = id.unwrap();
                    mine.push(id);
                    if k % 5 == 0 {
                        with_retry(&db, |tx| {
                            tx.set_node_property(id, "v", PropertyValue::Int(k + 1000))?;
                            tx.add_label(id, "Updated")
                        });
                    }
                    if k % 11 == 10 {
                        let victim = mine.remove(0);
                        with_retry(&db, |tx| {
                            // Relationships must be gone before the node.
                            for rel in tx.relationships_vec(victim, Direction::Both)? {
                                tx.delete_relationship(rel.id)?;
                            }
                            tx.delete_node(victim)
                        });
                    }
                    if k % 30 == 29 {
                        db.run_gc();
                    }
                }
                mine.len()
            })
        })
        .collect();

    // Verify continuously while the writers churn.
    let mut runs = 0u64;
    while !done.load(Ordering::SeqCst) {
        let report = db.verify().unwrap();
        assert!(
            report.is_clean(),
            "verifier misfired under churn:\n{}",
            report.to_text()
        );
        runs += 1;
        if writers.iter().all(|w| w.is_finished()) {
            done.store(true, Ordering::SeqCst);
        }
        // Pace the loop: back-to-back full walks would starve the writer
        // threads (and sibling test binaries) of CPU for no extra
        // coverage.
        std::thread::sleep(Duration::from_millis(10));
    }
    for w in writers {
        w.join().unwrap();
    }
    // One more settled run for good measure, then check the counters.
    let report = db.verify().unwrap();
    assert!(report.is_clean(), "{}", report.to_text());
    assert!(report.entities_checked > 0);
    let m = db.metrics();
    assert_eq!(m.verify_runs, runs + 1);
    assert_eq!(m.verify_divergences, 0);
    assert!(m.commits > 300, "writers must actually have committed");
}

// ---------------------------------------------------------------------
// Crash matrix: faulted page write *before* any checkpoint — the WAL
// still covers everything, so recovery must rebuild silently.
// ---------------------------------------------------------------------

fn faulted_eviction_before_checkpoint_recovers(fault: PageFault, name: &'static str) {
    let dir = TempDir::new(name);
    let ids;
    {
        let db = GraphDb::open(dir.path(), tiny_cache(2)).unwrap();
        // Fill node pages 0 and 1 (127 records each), then arm the fault:
        // the first touch of page 2 evicts page 0, and that write-back
        // suffers the injected fault while the cache believes it
        // succeeded.
        let first = create_bulk(&db, 0, 130);
        db.inject_store_write_fault(StoreTarget::Nodes, fault);
        let rest = create_bulk(&db, 130, 130);
        ids = [first, rest].concat();
        // "Crash": drop without checkpoint. The store now holds a faulted
        // page image (or none at all), the WAL holds the truth.
    }
    let db = GraphDb::open(dir.path(), tiny_cache(2)).unwrap();
    assert_bulk_intact(&db, &ids, 0);
    let report = db.verify().unwrap();
    assert!(
        report.is_clean(),
        "replay must rebuild the faulted page:\n{}",
        report.to_text()
    );
}

#[test]
fn torn_half_page_before_checkpoint_is_rebuilt_by_replay() {
    let _watchdog = Watchdog::arm(
        "torn_half_page_before_checkpoint_is_rebuilt_by_replay",
        Duration::from_secs(120),
    );
    faulted_eviction_before_checkpoint_recovers(PageFault::TornHalf, "integrity_torn_pre");
}

#[test]
fn bit_flip_before_checkpoint_is_rebuilt_by_replay() {
    let _watchdog = Watchdog::arm(
        "bit_flip_before_checkpoint_is_rebuilt_by_replay",
        Duration::from_secs(120),
    );
    faulted_eviction_before_checkpoint_recovers(PageFault::BitFlip, "integrity_flip_pre");
}

#[test]
fn stale_page_before_checkpoint_is_rebuilt_by_replay() {
    let _watchdog = Watchdog::arm(
        "stale_page_before_checkpoint_is_rebuilt_by_replay",
        Duration::from_secs(120),
    );
    faulted_eviction_before_checkpoint_recovers(PageFault::Stale, "integrity_stale_pre");
}

/// The torn and bit-flipped variants of the pre-checkpoint matrix must
/// actually exercise the suspect machinery: the corrupt fault-in during
/// replay is recorded, the replay rewrites the page, and the recovery
/// outcome counts it as rebuilt.
#[test]
fn torn_page_recovery_is_counted() {
    let _watchdog = Watchdog::arm("torn_page_recovery_is_counted", Duration::from_secs(120));
    let dir = TempDir::new("integrity_torn_counted");
    let ids;
    {
        let db = GraphDb::open(dir.path(), tiny_cache(2)).unwrap();
        let first = create_bulk(&db, 0, 130);
        db.inject_store_write_fault(StoreTarget::Nodes, PageFault::TornHalf);
        let rest = create_bulk(&db, 130, 130);
        ids = [first, rest].concat();
    }
    let db = GraphDb::open(dir.path(), tiny_cache(2)).unwrap();
    assert_bulk_intact(&db, &ids, 0);
    let m = db.metrics();
    assert!(
        m.torn_pages_recovered >= 1,
        "the torn page must be counted as rebuilt (metrics: torn_pages_recovered={})",
        m.torn_pages_recovered
    );
    assert!(m.page_checksum_failures >= 1);
}

// ---------------------------------------------------------------------
// Crash matrix: faulted page write *during* the checkpoint flush — the
// checkpoint then releases the covering WAL segments, so silent recovery
// is impossible. The contract degrades to "report, never silently
// wrong": either the reopen fails with the typed checksum error, or the
// verifier reports a class-labelled finding.
// ---------------------------------------------------------------------

fn faulted_checkpoint_is_reported(fault: PageFault, name: &'static str) {
    let dir = TempDir::new(name);
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let ids = create_bulk(&db, 0, 100);
        db.checkpoint().unwrap();
        // Dirty page 0 again so the next checkpoint rewrites it; the
        // label lands in the first half of the page (records 0..63), so
        // a torn first-half write definitely clobbers committed bytes.
        let mut tx = db.begin();
        tx.add_label(ids[0], "Marked").unwrap();
        tx.commit().unwrap();
        db.inject_store_write_fault(StoreTarget::Nodes, fault);
        db.checkpoint().unwrap();
        // "Crash" after the checkpoint retired the WAL coverage.
    }
    match GraphDb::open(dir.path(), config()) {
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("failed its checksum"),
                "reopen failed, but not with the typed checksum error: {msg}"
            );
        }
        Ok(db) => {
            // If the store opened (the faulted image happened to decode),
            // the verifier must still catch the divergence — silence is
            // the one forbidden outcome.
            let report = db.verify().unwrap();
            assert!(
                !report.is_clean(),
                "faulted post-checkpoint page must be reported"
            );
        }
    }
}

#[test]
fn torn_half_page_in_checkpoint_flush_is_reported_on_reopen() {
    let _watchdog = Watchdog::arm(
        "torn_half_page_in_checkpoint_flush_is_reported_on_reopen",
        Duration::from_secs(120),
    );
    faulted_checkpoint_is_reported(PageFault::TornHalf, "integrity_torn_post");
}

#[test]
fn bit_flip_in_checkpoint_flush_is_reported_on_reopen() {
    let _watchdog = Watchdog::arm(
        "bit_flip_in_checkpoint_flush_is_reported_on_reopen",
        Duration::from_secs(120),
    );
    faulted_checkpoint_is_reported(PageFault::BitFlip, "integrity_flip_post");
}

/// A stale page write (the write that never happened) keeps an
/// internally consistent old image, so no checksum can catch it. The
/// detection point is the *online* verifier: once the stale image faults
/// back in while the MVCC cache and the label index still hold the newer
/// committed state, it surfaces as an index↔store divergence. And as long
/// as the covering WAL has not been retired, a crash-and-replay still
/// rebuilds the page — both halves of the contract on one store.
#[test]
fn stale_page_is_caught_online_and_rebuilt_by_replay() {
    let _watchdog = Watchdog::arm(
        "stale_page_is_caught_online_and_rebuilt_by_replay",
        Duration::from_secs(120),
    );
    let dir = TempDir::new("integrity_stale_online");
    let ids;
    {
        // One-frame cache: every touch of another page evicts.
        let db = GraphDb::open(dir.path(), tiny_cache(1)).unwrap();
        ids = create_bulk(&db, 0, 128); // page 0 full + first record of page 1
        db.checkpoint().unwrap(); // page 0 on disk, sealed, WAL retired
        let mut tx = db.begin();
        tx.add_label(ids[0], "Flagged").unwrap();
        tx.commit().unwrap();
        // Evict the dirty page 0 with the write suppressed: disk keeps
        // the checkpoint image without the label.
        db.inject_store_write_fault(StoreTarget::Nodes, PageFault::Stale);
        {
            let tx = db.txn().read_only().begin();
            let _ = tx.get_node(ids[127]).unwrap(); // faults page 1 in
        }
        let report = db.verify().unwrap();
        assert!(
            !report.is_clean(),
            "the stale page must diverge from the index/MVCC state"
        );
        assert!(
            report.index_store_divergences + report.dangling_chain_pointers > 0,
            "unexpected finding classes:\n{}",
            report.to_text()
        );
        // "Crash": the label commit is still in the WAL (no checkpoint
        // since), so replay rewrites the page.
    }
    let db = GraphDb::open(dir.path(), tiny_cache(1)).unwrap();
    let tx = db.txn().read_only().begin();
    let node = tx.get_node(ids[0]).unwrap().expect("node 0 recovered");
    assert!(node.has_label("Flagged"), "replay must restore the label");
    drop(tx);
    let report = db.verify().unwrap();
    assert!(report.is_clean(), "{}", report.to_text());
}

// ---------------------------------------------------------------------
// Out-of-band corruption caught by the page sweep
// ---------------------------------------------------------------------

/// A byte flipped on disk behind the database's back (the classic silent
/// bit rot) is reported by the verifier's page sweep as a bad-page-CRC
/// finding — even with fault-in verification turned off, and without the
/// walk ever decoding the page.
#[test]
fn out_of_band_trailer_rot_is_reported_by_the_page_sweep() {
    let _watchdog = Watchdog::arm(
        "out_of_band_trailer_rot_is_reported_by_the_page_sweep",
        Duration::from_secs(120),
    );
    let dir = TempDir::new("integrity_bit_rot");
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        create_bulk(&db, 0, 300); // node pages 0..=2
        db.checkpoint().unwrap();
    }
    // Flip one byte of page 1's CRC trailer in nodes.db.
    let path = dir.path().join("nodes.db");
    let mut bytes = std::fs::read(&path).unwrap();
    let off = 8192 + 8191; // last byte of page 1 = high byte of its CRC
    bytes[off] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    // Reopen without fault-in verification and a one-frame cache, so the
    // rotten page is not cache-resident when the sweep runs.
    let db = GraphDb::open(dir.path(), tiny_cache(1).with_verify_pages_on_read(false)).unwrap();
    let report = db.verify().unwrap();
    assert!(report.bad_page_crc >= 1, "{}", report.to_text());
    assert!(report.to_text().contains("finding bad-page-crc"));
    // With verification on, the same image refuses to even fault in.
    drop(db);
    let err = {
        match GraphDb::open(dir.path(), tiny_cache(1)) {
            Err(e) => e.to_string(),
            Ok(db) => {
                // The open scan may not touch page 1; a direct read must.
                let tx = db.txn().read_only().begin();
                let mut msg = String::new();
                for k in 120..260 {
                    if let Err(e) = tx.get_node(NodeId::new(k)) {
                        msg = e.to_string();
                        break;
                    }
                }
                msg
            }
        }
    };
    assert!(
        err.contains("failed its checksum"),
        "verified read of the rotten page must fail typed: {err:?}"
    );
}
