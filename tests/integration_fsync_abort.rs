//! Failed-fsync crash-point tests: a commit whose WAL sync fails returns
//! an error to its caller, yet its commit record stays in the log. Without
//! invalidation, a later successful sync plus crash recovery would
//! *resurrect* the transaction the application saw abort. The failing
//! group-commit leader now invalidates the whole failed batch with a
//! range-abort record (appended before any later sync can run), and
//! replay skips invalidated commit records — these tests drive that path
//! with injected sync failures and real reopen-recovery.

use std::time::Duration;

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, GraphDb, PropertyValue, SyncPolicy};

fn config() -> DbConfig {
    DbConfig::default()
        .with_sync_policy(SyncPolicy::OnDemand)
        .with_group_commit_max_batch(16)
        .with_group_commit_max_delay(Duration::from_millis(2))
}

/// The headline crash-point: commit A succeeds, commit B fails its sync
/// (caller sees the abort), commit C succeeds — and C's sync makes B's
/// stale commit record durable along with everything else in the log.
/// After a crash and reopen, B must not be resurrected.
#[test]
fn caller_visible_abort_is_never_resurrected_by_recovery() {
    let dir = TempDir::new("fsync_resurrect");
    let (a, c);
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();

        let mut tx = db.begin();
        a = tx
            .create_node(&["Committed"], &[("who", PropertyValue::from("a"))])
            .unwrap();
        tx.commit().unwrap();

        // B: the group sync fails; the caller observes the abort.
        db.inject_wal_sync_failures(1);
        let mut tx = db.begin();
        tx.create_node(&["Aborted"], &[("who", PropertyValue::from("b"))])
            .unwrap();
        let err = tx.commit().unwrap_err();
        assert!(
            err.to_string().contains("injected sync failure"),
            "unexpected error: {err}"
        );
        assert_eq!(
            db.metrics().wal_abort_records,
            1,
            "the failed commit must leave an abort record behind"
        );

        // C: a later commit whose successful sync flushes the whole log —
        // including B's dead commit record.
        let mut tx = db.begin();
        c = tx
            .create_node(&["Committed"], &[("who", PropertyValue::from("c"))])
            .unwrap();
        tx.commit().unwrap();

        // B stayed invisible in the live database too.
        let check = db.txn().read_only().begin();
        assert_eq!(check.nodes_with_label("Aborted").unwrap().count(), 0);
        // "Crash": drop without checkpoint — recovery must replay the log.
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.txn().read_only().begin();
    assert!(tx.node_exists(a).unwrap());
    assert!(tx.node_exists(c).unwrap());
    assert_eq!(
        tx.nodes_with_label("Aborted").unwrap().count(),
        0,
        "recovery resurrected a commit whose caller saw an abort"
    );
    assert_eq!(tx.nodes_with_label("Committed").unwrap().count(), 2);
}

/// A failed batch is invalidated wholesale (one range-abort record per
/// failed sync), and none of its committers reappears after recovery —
/// while commits acknowledged *before* the failure survive it.
#[test]
fn every_committer_of_a_failed_batch_is_invalidated() {
    const WRITERS: usize = 4;
    let dir = TempDir::new("fsync_batch");
    let acknowledged;
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        tx.create_node(&["Seed"], &[]).unwrap();
        tx.commit().unwrap();

        // Enough injected failures to fail each writer's batch attempt
        // (every failed committer's abort record then syncs fine because
        // the counter has drained by the time the writers are done).
        db.inject_wal_sync_failures(WRITERS as u32);
        let handles: Vec<_> = (0..WRITERS)
            .map(|_| {
                let db = db.clone();
                std::thread::spawn(move || {
                    let mut tx = db.begin();
                    tx.create_node(&["MaybeAborted"], &[]).unwrap();
                    tx.commit().is_ok()
                })
            })
            .collect();
        acknowledged = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|ok| *ok)
            .count();
        // Whatever mix of failures and successes the batching produced,
        // the live view must agree with what the callers were told.
        let check = db.txn().read_only().begin();
        assert_eq!(
            check.nodes_with_label("MaybeAborted").unwrap().count(),
            acknowledged
        );
        let m = db.metrics();
        if acknowledged < WRITERS {
            assert!(
                m.wal_abort_records >= 1,
                "a failed batch must leave at least one (range) abort record"
            );
        }
    }
    // ... and so must the recovered view: no failed committer reappears,
    // no acknowledged one is lost.
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.txn().read_only().begin();
    assert_eq!(tx.nodes_with_label("Seed").unwrap().count(), 1);
    assert_eq!(
        tx.nodes_with_label("MaybeAborted").unwrap().count(),
        acknowledged
    );
}

/// The abort record keeps the timestamp consumed: after recovery the
/// clock resumes past the dead commit's timestamp, so it can never be
/// handed out twice.
#[test]
fn aborted_commit_timestamps_stay_consumed_across_recovery() {
    let dir = TempDir::new("fsync_ts");
    let ts_before;
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        tx.create_node(&["A"], &[]).unwrap();
        tx.commit().unwrap();

        db.inject_wal_sync_failures(1);
        let mut tx = db.begin();
        tx.create_node(&["B"], &[]).unwrap();
        assert!(tx.commit().is_err());
        ts_before = db.current_timestamp();
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    assert!(
        db.current_timestamp() >= ts_before,
        "the clock ran backwards over an aborted (but drawn) timestamp"
    );
    let mut tx = db.begin();
    tx.create_node(&["C"], &[]).unwrap();
    let new_ts = tx.commit().unwrap();
    assert!(new_ts > ts_before);
}

/// Sync failures abort cleanly mid-stream: later unrelated commits (whose
/// records postdate the failed attempt) succeed, publication never wedges
/// behind the withdrawn commit, and the final state matches exactly the
/// set of acknowledged commits — live and after recovery.
#[test]
fn pipeline_keeps_flowing_around_failed_syncs() {
    let dir = TempDir::new("fsync_flow");
    let mut acknowledged = Vec::new();
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        for i in 0..30i64 {
            if i % 7 == 3 {
                db.inject_wal_sync_failures(1);
            }
            let mut tx = db.begin();
            tx.create_node(&["Round"], &[("i", PropertyValue::Int(i))])
                .unwrap();
            if tx.commit().is_ok() {
                acknowledged.push(i);
            }
        }
        assert!(acknowledged.len() < 30, "some syncs must have failed");
        assert!(!acknowledged.is_empty());
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.txn().read_only().begin();
    assert_eq!(
        tx.nodes_with_label("Round").unwrap().count(),
        acknowledged.len()
    );
    for i in acknowledged {
        assert_eq!(
            tx.nodes_with_property_vec("i", &PropertyValue::Int(i))
                .unwrap()
                .len(),
            1,
            "acknowledged commit {i} lost"
        );
    }
}

/// The range-abort invariant holds across segment boundaries: with tiny
/// segments, a failed batch's commit records and the range-abort record
/// that invalidates them can land in *different* segments, and recovery
/// must still skip the dead commits.
#[test]
fn range_abort_spans_segment_boundaries() {
    let dir = TempDir::new("fsync_abort_segments");
    let mut acknowledged = Vec::new();
    {
        let db = GraphDb::open(dir.path(), config().with_wal_segment_bytes(4096)).unwrap();
        let pad = PropertyValue::from("x".repeat(96).as_str());
        for i in 0..120i64 {
            if i % 11 == 5 {
                db.inject_wal_sync_failures(1);
            }
            let mut tx = db.begin();
            tx.create_node(
                &["Round"],
                &[("i", PropertyValue::Int(i)), ("pad", pad.clone())],
            )
            .unwrap();
            if tx.commit().is_ok() {
                acknowledged.push(i);
            }
        }
        assert!(acknowledged.len() < 120, "some syncs must have failed");
        let m = db.metrics();
        assert!(m.wal_abort_records >= 1);
        assert!(
            m.wal_segments_created > 2,
            "the log must really span several segments"
        );
    }
    let db = GraphDb::open(dir.path(), config().with_wal_segment_bytes(4096)).unwrap();
    let tx = db.txn().read_only().begin();
    assert_eq!(
        tx.nodes_with_label("Round").unwrap().count(),
        acknowledged.len(),
        "recovery across segments disagreed with the acknowledged set"
    );
}

/// Crash point: the checkpoint's end-mark sync fails. The checkpoint
/// reports the error and must NOT have advanced the retention watermark —
/// every acknowledged commit still recovers from the full log.
#[test]
fn failed_checkpoint_end_sync_does_not_release_segments() {
    let dir = TempDir::new("fsync_ckpt_end");
    {
        let db = GraphDb::open(dir.path(), config().with_wal_segment_bytes(4096)).unwrap();
        let pad = PropertyValue::from("x".repeat(96).as_str());
        for i in 0..60i64 {
            let mut tx = db.begin();
            tx.create_node(
                &["Bulk"],
                &[("i", PropertyValue::Int(i)), ("pad", pad.clone())],
            )
            .unwrap();
            tx.commit().unwrap();
        }
        db.inject_wal_sync_failures(1);
        assert!(
            db.checkpoint().is_err(),
            "the end-mark sync failure must surface"
        );
        assert_eq!(
            db.metrics().wal_segments_deleted,
            0,
            "a failed checkpoint must not advance the retention watermark"
        );
        // "Crash" without a successful checkpoint.
    }
    let db = GraphDb::open(dir.path(), config().with_wal_segment_bytes(4096)).unwrap();
    let tx = db.txn().read_only().begin();
    assert_eq!(tx.nodes_with_label("Bulk").unwrap().count(), 60);
    // A retried checkpoint succeeds and releases.
    db.checkpoint().unwrap();
    assert!(db.metrics().wal_segments_deleted > 0);
}
