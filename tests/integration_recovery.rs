//! Durability and recovery tests: WAL replay, checkpointing, index
//! rebuild, commit-timestamp persistence across restarts, and crash-point
//! durability of the group-commit pipeline.

use std::time::Duration;

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, Direction, GraphDb, NodeId, PropertyValue, SyncPolicy};

fn config() -> DbConfig {
    DbConfig::default().with_sync_policy(SyncPolicy::Always)
}

fn group_commit_config() -> DbConfig {
    DbConfig::default()
        .with_sync_policy(SyncPolicy::OnDemand)
        .with_group_commit_max_batch(16)
        .with_group_commit_max_delay(Duration::from_millis(2))
}

#[test]
fn committed_data_survives_reopen_without_checkpoint() {
    let dir = TempDir::new("rec_no_checkpoint");
    let (alice, bob, rel);
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        alice = tx
            .create_node(&["Person"], &[("name", PropertyValue::from("Alice"))])
            .unwrap();
        bob = tx
            .create_node(&["Person"], &[("name", PropertyValue::from("Bob"))])
            .unwrap();
        rel = tx
            .create_relationship(alice, bob, "KNOWS", &[("w", PropertyValue::Float(0.5))])
            .unwrap();
        tx.commit().unwrap();
        // No checkpoint, no flush: the store pages may never have been
        // written; recovery must replay the WAL.
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    let node = tx.get_node(alice).unwrap().expect("alice recovered");
    assert_eq!(node.property("name"), Some(&PropertyValue::from("Alice")));
    assert!(node.has_label("Person"));
    let r = tx.get_relationship(rel).unwrap().expect("rel recovered");
    assert_eq!(r.target, bob);
    assert_eq!(r.property("w"), Some(&PropertyValue::Float(0.5)));
    assert_eq!(tx.neighbors_vec(alice, Direction::Both).unwrap(), vec![bob]);
}

#[test]
fn updates_and_deletes_survive_reopen() {
    let dir = TempDir::new("rec_updates");
    let (keep, gone);
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        keep = tx
            .create_node(&["Keep"], &[("v", PropertyValue::Int(1))])
            .unwrap();
        gone = tx.create_node(&["Gone"], &[]).unwrap();
        tx.commit().unwrap();

        let mut tx = db.begin();
        tx.set_node_property(keep, "v", PropertyValue::Int(2))
            .unwrap();
        tx.delete_node(gone).unwrap();
        tx.commit().unwrap();
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    assert_eq!(
        tx.node_property(keep, "v").unwrap(),
        Some(PropertyValue::Int(2))
    );
    assert!(!tx.node_exists(gone).unwrap());
    assert_eq!(tx.nodes_with_label("Gone").unwrap().count(), 0);
}

#[test]
fn indexes_are_rebuilt_after_reopen() {
    let dir = TempDir::new("rec_indexes");
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        for i in 0..10i64 {
            tx.create_node(
                &[if i % 2 == 0 { "Even" } else { "Odd" }],
                &[("i", PropertyValue::Int(i))],
            )
            .unwrap();
        }
        tx.commit().unwrap();
        db.checkpoint().unwrap();
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    assert_eq!(tx.nodes_with_label("Even").unwrap().count(), 5);
    assert_eq!(tx.nodes_with_label("Odd").unwrap().count(), 5);
    assert_eq!(
        tx.nodes_with_property("i", &PropertyValue::Int(7))
            .unwrap()
            .count(),
        1
    );
    assert_eq!(tx.node_count().unwrap(), 10);
}

#[test]
fn checkpoint_truncates_the_wal_and_preserves_data() {
    let dir = TempDir::new("rec_checkpoint");
    let node;
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        node = tx
            .create_node(&["Durable"], &[("x", PropertyValue::Int(7))])
            .unwrap();
        tx.commit().unwrap();
        db.checkpoint().unwrap();
    }
    // The WAL file should now be empty (data lives in the store files).
    let wal_len = std::fs::metadata(dir.path().join("wal.log")).unwrap().len();
    assert_eq!(wal_len, 0, "checkpoint truncates the WAL");

    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    assert_eq!(
        tx.node_property(node, "x").unwrap(),
        Some(PropertyValue::Int(7))
    );
}

#[test]
fn snapshot_timestamps_resume_after_reopen() {
    let dir = TempDir::new("rec_timestamps");
    let node;
    let ts_before;
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        node = tx
            .create_node(&[], &[("v", PropertyValue::Int(1))])
            .unwrap();
        tx.commit().unwrap();
        let mut tx = db.begin();
        tx.set_node_property(node, "v", PropertyValue::Int(2))
            .unwrap();
        tx.commit().unwrap();
        ts_before = db.current_timestamp();
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    // The clock must not run backwards after recovery; otherwise new
    // commits could be ordered before already-persisted ones.
    assert!(db.current_timestamp() >= ts_before);
    let mut tx = db.begin();
    tx.set_node_property(node, "v", PropertyValue::Int(3))
        .unwrap();
    let commit_ts = tx.commit().unwrap();
    assert!(commit_ts > ts_before);
    let check = db.begin();
    assert_eq!(
        check.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(3))
    );
}

#[test]
fn repeated_reopen_cycles_are_stable() {
    let dir = TempDir::new("rec_cycles");
    let mut expected_nodes = 0usize;
    for round in 0..5i64 {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        {
            let tx = db.begin();
            assert_eq!(tx.node_count().unwrap(), expected_nodes, "round {round}");
        }
        let mut tx = db.begin();
        tx.create_node(&["Round"], &[("round", PropertyValue::Int(round))])
            .unwrap();
        tx.commit().unwrap();
        expected_nodes += 1;
        if round % 2 == 0 {
            db.checkpoint().unwrap();
        }
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    assert_eq!(tx.node_count().unwrap(), expected_nodes);
    for round in 0..5i64 {
        assert_eq!(
            tx.nodes_with_property_vec("round", &PropertyValue::Int(round))
                .unwrap()
                .len(),
            1
        );
    }
}

#[test]
fn uncommitted_work_is_not_recovered() {
    let dir = TempDir::new("rec_uncommitted");
    let committed;
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        committed = tx.create_node(&["Committed"], &[]).unwrap();
        tx.commit().unwrap();

        // Leave a transaction open with pending writes and "crash".
        let mut open_tx = db.begin();
        open_tx.create_node(&["Uncommitted"], &[]).unwrap();
        std::mem::forget(open_tx); // simulate a crash: no rollback, no commit
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    assert!(tx.node_exists(committed).unwrap());
    assert_eq!(tx.nodes_with_label("Uncommitted").unwrap().count(), 0);
    assert_eq!(tx.nodes_with_label("Committed").unwrap().count(), 1);
}

/// A WAL written by the group-commit path (batched syncs, records
/// interleaved across writer threads in commit-ts order) replays correctly
/// on reopen: every acknowledged commit survives, with no checkpoint and
/// no clean shutdown.
#[test]
fn group_committed_wal_replays_on_reopen() {
    const THREADS: usize = 4;
    const COMMITS_PER_THREAD: usize = 40;
    let dir = TempDir::new("rec_group_commit");
    let nodes;
    {
        let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
        let mut tx = db.begin();
        nodes = (0..THREADS)
            .map(|_| {
                tx.create_node(&["W"], &[("v", PropertyValue::Int(0))])
                    .unwrap()
            })
            .collect::<Vec<NodeId>>();
        tx.commit().unwrap();
        let writers: Vec<_> = nodes
            .iter()
            .map(|&node| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 1..=COMMITS_PER_THREAD as i64 {
                        let mut tx = db.begin();
                        tx.set_node_property(node, "v", PropertyValue::Int(i))
                            .unwrap();
                        tx.commit().unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let m = db.metrics();
        assert!(
            m.wal_syncs < m.commits - m.read_only_commits,
            "precondition: this log really was written by batched group syncs"
        );
        // "Crash": drop without checkpoint or store flush.
    }
    let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
    let tx = db.txn().read_only().begin();
    for &node in &nodes {
        assert_eq!(
            tx.node_property(node, "v").unwrap(),
            Some(PropertyValue::Int(COMMITS_PER_THREAD as i64)),
            "an acknowledged (group-synced) commit was lost in recovery"
        );
    }
}

/// A torn tail past the last group sync — a record half-written when the
/// crash hit — is truncated cleanly; everything the group-commit path
/// acknowledged before it still recovers.
#[test]
fn torn_tail_past_last_group_sync_is_truncated() {
    let dir = TempDir::new("rec_group_torn");
    let (a, b);
    {
        let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
        let mut tx = db.begin();
        a = tx
            .create_node(&["Keep"], &[("v", PropertyValue::Int(1))])
            .unwrap();
        b = tx.create_node(&["Keep"], &[]).unwrap();
        tx.create_relationship(a, b, "LINK", &[]).unwrap();
        tx.commit().unwrap();
    }
    // Simulate a crash mid-append after the last sync: garbage that looks
    // like the start of an entry lands past the durable prefix.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.path().join("wal.log"))
            .unwrap();
        f.write_all(&[0x77, 0x61, 0x6C, 0x21, 9, 9, 9]).unwrap();
    }
    let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
    let tx = db.txn().read_only().begin();
    assert_eq!(tx.nodes_with_label("Keep").unwrap().count(), 2);
    assert_eq!(tx.neighbors_vec(a, Direction::Both).unwrap(), vec![b]);
    // The torn bytes are gone: committing and reopening again works.
    let mut tx = db.begin();
    tx.set_node_property(a, "v", PropertyValue::Int(2)).unwrap();
    tx.commit().unwrap();
    drop(db);
    let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
    let tx = db.begin();
    assert_eq!(
        tx.node_property(a, "v").unwrap(),
        Some(PropertyValue::Int(2))
    );
}

/// Replaying a group-committed WAL over a store that already contains its
/// effects (flushed before the crash) must be idempotent: nothing is
/// duplicated, chains stay intact.
#[test]
fn group_commit_replay_is_idempotent_over_flushed_store() {
    let dir = TempDir::new("rec_group_idem");
    let wal_path = dir.path().join("wal.log");
    let saved_wal = dir.path().join("wal.log.saved");
    let (hub, spokes);
    {
        let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
        let mut tx = db.begin();
        hub = tx.create_node(&["Hub"], &[]).unwrap();
        tx.commit().unwrap();
        let mut created = Vec::new();
        for _ in 0..5 {
            let mut tx = db.begin();
            let spoke = tx.create_node(&["Spoke"], &[]).unwrap();
            tx.create_relationship(hub, spoke, "SPOKE", &[]).unwrap();
            tx.commit().unwrap();
            created.push(spoke);
        }
        spokes = created;
        // Preserve the log, then checkpoint (which flushes the store and
        // truncates the log), then put the log back: the next open sees a
        // fully flushed store *plus* a WAL claiming the same commits —
        // exactly the crash-after-flush-before-truncate window.
        std::fs::copy(&wal_path, &saved_wal).unwrap();
        db.checkpoint().unwrap();
    }
    std::fs::copy(&saved_wal, &wal_path).unwrap();
    for round in 0..2 {
        let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
        let tx = db.txn().read_only().begin();
        assert_eq!(
            tx.nodes_with_label("Spoke").unwrap().count(),
            spokes.len(),
            "round {round}"
        );
        assert_eq!(tx.degree(hub, Direction::Both).unwrap(), spokes.len());
        let neighbors = tx.neighbors_vec(hub, Direction::Both).unwrap();
        for spoke in &spokes {
            assert!(neighbors.contains(spoke), "round {round}");
        }
    }
}

#[test]
fn relationship_chains_survive_partial_flush_plus_replay() {
    // Flush the store mid-way (simulating page-cache write-back before a
    // crash) and make sure WAL replay on reopen does not duplicate or
    // corrupt relationship chains.
    let dir = TempDir::new("rec_partial_flush");
    let (hub, spokes);
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        hub = tx.create_node(&["Hub"], &[]).unwrap();
        tx.commit().unwrap();

        let mut created = Vec::new();
        for _ in 0..5 {
            let mut tx = db.begin();
            let spoke = tx.create_node(&["Spoke"], &[]).unwrap();
            tx.create_relationship(hub, spoke, "SPOKE", &[]).unwrap();
            tx.commit().unwrap();
            created.push(spoke);
        }
        spokes = created;
        // No checkpoint: WAL still holds everything; store pages may or may
        // not have been written. Drop without clean shutdown.
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    let neighbors = tx.neighbors_vec(hub, Direction::Both).unwrap();
    assert_eq!(neighbors.len(), spokes.len());
    for spoke in &spokes {
        assert!(neighbors.contains(spoke));
    }
    assert_eq!(tx.degree(hub, Direction::Both).unwrap(), 5);
}
