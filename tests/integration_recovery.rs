//! Durability and recovery tests: WAL replay, checkpointing, index
//! rebuild, commit-timestamp persistence across restarts, and crash-point
//! durability of the group-commit pipeline.

use std::time::Duration;

use graphsi_core::test_support::{TempDir, Watchdog};
use graphsi_core::{DbConfig, Direction, GraphDb, NodeId, PropertyValue, SyncPolicy};

fn config() -> DbConfig {
    DbConfig::default().with_sync_policy(SyncPolicy::Always)
}

fn group_commit_config() -> DbConfig {
    DbConfig::default()
        .with_sync_policy(SyncPolicy::OnDemand)
        .with_group_commit_max_batch(16)
        .with_group_commit_max_delay(Duration::from_millis(2))
}

/// Paths of the database's WAL segment files, in sequence order.
fn wal_segment_paths(db_dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut segments: Vec<_> = std::fs::read_dir(db_dir.join("wal"))
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .collect();
    segments.sort();
    segments
}

/// The numeric sequence suffix of a `wal.NNNNNN` segment path.
fn segment_seq(path: &std::path::Path) -> u64 {
    path.extension().unwrap().to_str().unwrap().parse().unwrap()
}

/// Copies every file of `from` into `to` (used to snapshot the WAL
/// directory around a simulated crash).
fn copy_dir_files(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

#[test]
fn committed_data_survives_reopen_without_checkpoint() {
    let dir = TempDir::new("rec_no_checkpoint");
    let (alice, bob, rel);
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        alice = tx
            .create_node(&["Person"], &[("name", PropertyValue::from("Alice"))])
            .unwrap();
        bob = tx
            .create_node(&["Person"], &[("name", PropertyValue::from("Bob"))])
            .unwrap();
        rel = tx
            .create_relationship(alice, bob, "KNOWS", &[("w", PropertyValue::Float(0.5))])
            .unwrap();
        tx.commit().unwrap();
        // No checkpoint, no flush: the store pages may never have been
        // written; recovery must replay the WAL.
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    let node = tx.get_node(alice).unwrap().expect("alice recovered");
    assert_eq!(node.property("name"), Some(&PropertyValue::from("Alice")));
    assert!(node.has_label("Person"));
    let r = tx.get_relationship(rel).unwrap().expect("rel recovered");
    assert_eq!(r.target, bob);
    assert_eq!(r.property("w"), Some(&PropertyValue::Float(0.5)));
    assert_eq!(tx.neighbors_vec(alice, Direction::Both).unwrap(), vec![bob]);
}

#[test]
fn updates_and_deletes_survive_reopen() {
    let dir = TempDir::new("rec_updates");
    let (keep, gone);
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        keep = tx
            .create_node(&["Keep"], &[("v", PropertyValue::Int(1))])
            .unwrap();
        gone = tx.create_node(&["Gone"], &[]).unwrap();
        tx.commit().unwrap();

        let mut tx = db.begin();
        tx.set_node_property(keep, "v", PropertyValue::Int(2))
            .unwrap();
        tx.delete_node(gone).unwrap();
        tx.commit().unwrap();
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    assert_eq!(
        tx.node_property(keep, "v").unwrap(),
        Some(PropertyValue::Int(2))
    );
    assert!(!tx.node_exists(gone).unwrap());
    assert_eq!(tx.nodes_with_label("Gone").unwrap().count(), 0);
}

#[test]
fn indexes_are_rebuilt_after_reopen() {
    let dir = TempDir::new("rec_indexes");
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        for i in 0..10i64 {
            tx.create_node(
                &[if i % 2 == 0 { "Even" } else { "Odd" }],
                &[("i", PropertyValue::Int(i))],
            )
            .unwrap();
        }
        tx.commit().unwrap();
        db.checkpoint().unwrap();
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    assert_eq!(tx.nodes_with_label("Even").unwrap().count(), 5);
    assert_eq!(tx.nodes_with_label("Odd").unwrap().count(), 5);
    assert_eq!(
        tx.nodes_with_property("i", &PropertyValue::Int(7))
            .unwrap()
            .count(),
        1
    );
    assert_eq!(tx.node_count().unwrap(), 10);
}

#[test]
fn checkpoint_retires_covered_wal_segments_and_preserves_data() {
    let dir = TempDir::new("rec_checkpoint");
    let small_segments = config().with_wal_segment_bytes(4096);
    let node;
    {
        let db = GraphDb::open(dir.path(), small_segments.clone()).unwrap();
        let mut tx = db.begin();
        node = tx
            .create_node(&["Durable"], &[("x", PropertyValue::Int(7))])
            .unwrap();
        tx.commit().unwrap();
        // Enough commits to rotate through several segments.
        for i in 0..200i64 {
            let mut tx = db.begin();
            tx.create_node(&["Bulk"], &[("i", PropertyValue::Int(i))])
                .unwrap();
            tx.commit().unwrap();
        }
        let before = db.metrics();
        assert!(before.wal_segments_created > 1, "rotation precondition");
        db.checkpoint().unwrap();
        // The checkpoint retires every segment fully covered by its begin
        // mark; the retained log shrinks to the active suffix.
        let after = db.metrics();
        assert!(after.wal_segments_deleted > 0, "covered segments retired");
        assert!(after.wal_retained_bytes < before.wal_retained_bytes);
    }
    // Only the uncovered suffix remains on disk, and it replays fine.
    assert!(!wal_segment_paths(dir.path()).is_empty());
    let db = GraphDb::open(dir.path(), small_segments).unwrap();
    let tx = db.begin();
    assert_eq!(
        tx.node_property(node, "x").unwrap(),
        Some(PropertyValue::Int(7))
    );
    assert_eq!(tx.nodes_with_label("Bulk").unwrap().count(), 200);
}

#[test]
fn snapshot_timestamps_resume_after_reopen() {
    let dir = TempDir::new("rec_timestamps");
    let node;
    let ts_before;
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        node = tx
            .create_node(&[], &[("v", PropertyValue::Int(1))])
            .unwrap();
        tx.commit().unwrap();
        let mut tx = db.begin();
        tx.set_node_property(node, "v", PropertyValue::Int(2))
            .unwrap();
        tx.commit().unwrap();
        ts_before = db.current_timestamp();
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    // The clock must not run backwards after recovery; otherwise new
    // commits could be ordered before already-persisted ones.
    assert!(db.current_timestamp() >= ts_before);
    let mut tx = db.begin();
    tx.set_node_property(node, "v", PropertyValue::Int(3))
        .unwrap();
    let commit_ts = tx.commit().unwrap();
    assert!(commit_ts > ts_before);
    let check = db.begin();
    assert_eq!(
        check.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(3))
    );
}

#[test]
fn repeated_reopen_cycles_are_stable() {
    let dir = TempDir::new("rec_cycles");
    let mut expected_nodes = 0usize;
    for round in 0..5i64 {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        {
            let tx = db.begin();
            assert_eq!(tx.node_count().unwrap(), expected_nodes, "round {round}");
        }
        let mut tx = db.begin();
        tx.create_node(&["Round"], &[("round", PropertyValue::Int(round))])
            .unwrap();
        tx.commit().unwrap();
        expected_nodes += 1;
        if round % 2 == 0 {
            db.checkpoint().unwrap();
        }
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    assert_eq!(tx.node_count().unwrap(), expected_nodes);
    for round in 0..5i64 {
        assert_eq!(
            tx.nodes_with_property_vec("round", &PropertyValue::Int(round))
                .unwrap()
                .len(),
            1
        );
    }
}

#[test]
fn uncommitted_work_is_not_recovered() {
    let dir = TempDir::new("rec_uncommitted");
    let committed;
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        committed = tx.create_node(&["Committed"], &[]).unwrap();
        tx.commit().unwrap();

        // Leave a transaction open with pending writes and "crash".
        let mut open_tx = db.begin();
        open_tx.create_node(&["Uncommitted"], &[]).unwrap();
        std::mem::forget(open_tx); // simulate a crash: no rollback, no commit
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    assert!(tx.node_exists(committed).unwrap());
    assert_eq!(tx.nodes_with_label("Uncommitted").unwrap().count(), 0);
    assert_eq!(tx.nodes_with_label("Committed").unwrap().count(), 1);
}

/// A WAL written by the group-commit path (batched syncs, records
/// interleaved across writer threads in commit-ts order) replays correctly
/// on reopen: every acknowledged commit survives, with no checkpoint and
/// no clean shutdown.
#[test]
fn group_committed_wal_replays_on_reopen() {
    const THREADS: usize = 4;
    const COMMITS_PER_THREAD: usize = 40;
    let dir = TempDir::new("rec_group_commit");
    let nodes;
    {
        let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
        let mut tx = db.begin();
        nodes = (0..THREADS)
            .map(|_| {
                tx.create_node(&["W"], &[("v", PropertyValue::Int(0))])
                    .unwrap()
            })
            .collect::<Vec<NodeId>>();
        tx.commit().unwrap();
        let writers: Vec<_> = nodes
            .iter()
            .map(|&node| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 1..=COMMITS_PER_THREAD as i64 {
                        let mut tx = db.begin();
                        tx.set_node_property(node, "v", PropertyValue::Int(i))
                            .unwrap();
                        tx.commit().unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        let m = db.metrics();
        assert!(
            m.wal_syncs < m.commits - m.read_only_commits,
            "precondition: this log really was written by batched group syncs"
        );
        // "Crash": drop without checkpoint or store flush.
    }
    let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
    let tx = db.txn().read_only().begin();
    for &node in &nodes {
        assert_eq!(
            tx.node_property(node, "v").unwrap(),
            Some(PropertyValue::Int(COMMITS_PER_THREAD as i64)),
            "an acknowledged (group-synced) commit was lost in recovery"
        );
    }
}

/// A torn tail past the last group sync — a record half-written when the
/// crash hit — is truncated cleanly; everything the group-commit path
/// acknowledged before it still recovers.
#[test]
fn torn_tail_past_last_group_sync_is_truncated() {
    let dir = TempDir::new("rec_group_torn");
    let (a, b);
    {
        let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
        let mut tx = db.begin();
        a = tx
            .create_node(&["Keep"], &[("v", PropertyValue::Int(1))])
            .unwrap();
        b = tx.create_node(&["Keep"], &[]).unwrap();
        tx.create_relationship(a, b, "LINK", &[]).unwrap();
        tx.commit().unwrap();
    }
    // Simulate a crash mid-append after the last sync: garbage that looks
    // like the start of an entry lands past the durable prefix of the
    // last (active) segment.
    {
        use std::io::Write as _;
        let last_segment = wal_segment_paths(dir.path()).pop().unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(last_segment)
            .unwrap();
        f.write_all(&[0x77, 0x61, 0x6C, 0x21, 9, 9, 9]).unwrap();
    }
    let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
    let tx = db.txn().read_only().begin();
    assert_eq!(tx.nodes_with_label("Keep").unwrap().count(), 2);
    assert_eq!(tx.neighbors_vec(a, Direction::Both).unwrap(), vec![b]);
    // The torn bytes are gone: committing and reopening again works.
    let mut tx = db.begin();
    tx.set_node_property(a, "v", PropertyValue::Int(2)).unwrap();
    tx.commit().unwrap();
    drop(db);
    let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
    let tx = db.begin();
    assert_eq!(
        tx.node_property(a, "v").unwrap(),
        Some(PropertyValue::Int(2))
    );
}

/// Replaying a group-committed WAL over a store that already contains its
/// effects (flushed before the crash) must be idempotent: nothing is
/// duplicated, chains stay intact.
#[test]
fn group_commit_replay_is_idempotent_over_flushed_store() {
    let dir = TempDir::new("rec_group_idem");
    let wal_dir = dir.path().join("wal");
    let saved_wal = dir.path().join("wal.saved");
    let (hub, spokes);
    {
        let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
        let mut tx = db.begin();
        hub = tx.create_node(&["Hub"], &[]).unwrap();
        tx.commit().unwrap();
        let mut created = Vec::new();
        for _ in 0..5 {
            let mut tx = db.begin();
            let spoke = tx.create_node(&["Spoke"], &[]).unwrap();
            tx.create_relationship(hub, spoke, "SPOKE", &[]).unwrap();
            tx.commit().unwrap();
            created.push(spoke);
        }
        spokes = created;
        // Preserve the log, then checkpoint (which flushes the store and
        // marks the log's prefix as covered), then put the *unmarked* log
        // back: the next open sees a fully flushed store plus a WAL
        // claiming the same commits with no checkpoint marks — exactly
        // the crash-after-flush-before-end-mark window.
        copy_dir_files(&wal_dir, &saved_wal);
        db.checkpoint().unwrap();
    }
    std::fs::remove_dir_all(&wal_dir).unwrap();
    copy_dir_files(&saved_wal, &wal_dir);
    for round in 0..2 {
        let db = GraphDb::open(dir.path(), group_commit_config()).unwrap();
        let tx = db.txn().read_only().begin();
        assert_eq!(
            tx.nodes_with_label("Spoke").unwrap().count(),
            spokes.len(),
            "round {round}"
        );
        assert_eq!(tx.degree(hub, Direction::Both).unwrap(), spokes.len());
        let neighbors = tx.neighbors_vec(hub, Direction::Both).unwrap();
        for spoke in &spokes {
            assert!(neighbors.contains(spoke), "round {round}");
        }
    }
}

#[test]
fn relationship_chains_survive_partial_flush_plus_replay() {
    // Flush the store mid-way (simulating page-cache write-back before a
    // crash) and make sure WAL replay on reopen does not duplicate or
    // corrupt relationship chains.
    let dir = TempDir::new("rec_partial_flush");
    let (hub, spokes);
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        hub = tx.create_node(&["Hub"], &[]).unwrap();
        tx.commit().unwrap();

        let mut created = Vec::new();
        for _ in 0..5 {
            let mut tx = db.begin();
            let spoke = tx.create_node(&["Spoke"], &[]).unwrap();
            tx.create_relationship(hub, spoke, "SPOKE", &[]).unwrap();
            tx.commit().unwrap();
            created.push(spoke);
        }
        spokes = created;
        // No checkpoint: WAL still holds everything; store pages may or may
        // not have been written. Drop without clean shutdown.
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    let neighbors = tx.neighbors_vec(hub, Direction::Both).unwrap();
    assert_eq!(neighbors.len(), spokes.len());
    for spoke in &spokes {
        assert!(neighbors.contains(spoke));
    }
    assert_eq!(tx.degree(hub, Direction::Both).unwrap(), 5);
}

// ---------------------------------------------------------------------
// Segmented-WAL crash-point matrix
// ---------------------------------------------------------------------

/// Crash point: rotation created the next segment file but crashed before
/// its header reached disk. Reopen must discard the embryonic segment
/// (empty or half-written header) and carry on from the previous one.
#[test]
fn crash_after_segment_create_before_header_sync_is_repaired() {
    let dir = TempDir::new("rec_embryonic_segment");
    let node;
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let mut tx = db.begin();
        node = tx
            .create_node(&["Keep"], &[("v", PropertyValue::Int(1))])
            .unwrap();
        tx.commit().unwrap();
    }
    // First crash shape: the new segment file exists but is empty.
    let last_seq = segment_seq(wal_segment_paths(dir.path()).last().unwrap());
    let embryonic = dir
        .path()
        .join("wal")
        .join(format!("wal.{:06}", last_seq + 1));
    std::fs::write(&embryonic, b"").unwrap();
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        let tx = db.begin();
        assert_eq!(
            tx.node_property(node, "v").unwrap(),
            Some(PropertyValue::Int(1))
        );
    }
    assert!(!embryonic.exists(), "embryonic segment must be deleted");
    // Second crash shape: the header itself is half-written.
    let last_seq = segment_seq(wal_segment_paths(dir.path()).last().unwrap());
    let torn_header = dir
        .path()
        .join("wal")
        .join(format!("wal.{:06}", last_seq + 1));
    std::fs::write(&torn_header, [0xAB; 10]).unwrap();
    let db = GraphDb::open(dir.path(), config()).unwrap();
    assert!(!torn_header.exists(), "torn-header segment must be deleted");
    // The repaired log still appends and survives another reopen.
    let mut tx = db.begin();
    tx.set_node_property(node, "v", PropertyValue::Int(2))
        .unwrap();
    tx.commit().unwrap();
    drop(db);
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.begin();
    assert_eq!(
        tx.node_property(node, "v").unwrap(),
        Some(PropertyValue::Int(2))
    );
}

/// Crash point: the checkpoint wrote its begin mark and crashed before the
/// end mark. The unpaired begin proves nothing about the store, so
/// recovery must replay every commit as if the checkpoint never started.
#[test]
fn crash_between_checkpoint_begin_and_end_replays_everything() {
    use graphsi_wal::{CheckpointBeginRecord, SegmentedWal, SyncPolicy as WalSyncPolicy};
    let dir = TempDir::new("rec_unpaired_begin");
    let begin_ts;
    {
        let db = GraphDb::open(dir.path(), config()).unwrap();
        for i in 0..10i64 {
            let mut tx = db.begin();
            tx.create_node(&["Bulk"], &[("i", PropertyValue::Int(i))])
                .unwrap();
            tx.commit().unwrap();
        }
        begin_ts = db.current_timestamp().raw();
        // "Crash": no checkpoint, store pages possibly unwritten.
    }
    // Splice an unpaired CheckpointBegin at the tail, exactly what a crash
    // between the begin mark and the end mark leaves behind.
    {
        let wal =
            SegmentedWal::open(dir.path().join("wal"), WalSyncPolicy::Always, 1 << 20).unwrap();
        wal.append(&CheckpointBeginRecord { epoch: 7, begin_ts }.encode())
            .unwrap();
    }
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.txn().read_only().begin();
    assert_eq!(
        tx.nodes_with_label("Bulk").unwrap().count(),
        10,
        "an unpaired checkpoint begin mark must not suppress replay"
    );
    // The next real checkpoint pairs up and retires the suffix cleanly.
    db.checkpoint().unwrap();
    drop(tx);
    drop(db);
    let db = GraphDb::open(dir.path(), config()).unwrap();
    let tx = db.txn().read_only().begin();
    assert_eq!(tx.nodes_with_label("Bulk").unwrap().count(), 10);
}

/// Crash point: the crash lands right after a checkpoint's release
/// unlinked the covered segments. The retained log starts at a sequence
/// number above 1 and recovery replays only the suffix.
#[test]
fn crash_after_segment_release_recovers_from_the_suffix() {
    let dir = TempDir::new("rec_post_release");
    let small_segments = config().with_wal_segment_bytes(4096);
    {
        let db = GraphDb::open(dir.path(), small_segments.clone()).unwrap();
        for i in 0..100i64 {
            let mut tx = db.begin();
            tx.create_node(&["Bulk"], &[("i", PropertyValue::Int(i))])
                .unwrap();
            tx.commit().unwrap();
        }
        db.checkpoint().unwrap();
        assert!(
            db.metrics().wal_segments_deleted > 0,
            "release precondition"
        );
        // "Crash" immediately after the release unlinked the segments.
    }
    let first_seq = segment_seq(wal_segment_paths(dir.path()).first().unwrap());
    assert!(first_seq > 1, "the released prefix is really gone");
    let db = GraphDb::open(dir.path(), small_segments).unwrap();
    let tx = db.begin();
    assert_eq!(tx.nodes_with_label("Bulk").unwrap().count(), 100);
}

// ---------------------------------------------------------------------
// Fuzzy checkpoint under load (the tentpole's acceptance test)
// ---------------------------------------------------------------------

/// A checkpoint under sustained multi-writer load completes while commits
/// keep flowing — no quiesce, no stop-the-world: commits are counted
/// *inside* the checkpoint window, covered segments are retired, the
/// retained log shrinks, and no single commit stalls for the checkpoint's
/// whole duration (the latency cliff the old quiesce produced).
#[test]
fn fuzzy_checkpoint_overlaps_sustained_commits() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;
    const WRITERS: usize = 4;
    let _watchdog = Watchdog::arm(
        "fuzzy_checkpoint_overlaps_sustained_commits",
        Duration::from_secs(120),
    );
    let dir = TempDir::new("rec_fuzzy_ckpt");
    let db = GraphDb::open(
        dir.path(),
        group_commit_config().with_wal_segment_bytes(4096),
    )
    .unwrap();
    let mut tx = db.begin();
    let nodes: Vec<NodeId> = (0..WRITERS)
        .map(|_| {
            tx.create_node(&["W"], &[("v", PropertyValue::Int(0))])
                .unwrap()
        })
        .collect();
    tx.commit().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = nodes
        .iter()
        .map(|&node| {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rounds = 0i64;
                let mut max_commit = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    rounds += 1;
                    let mut tx = db.begin();
                    tx.set_node_property(node, "v", PropertyValue::Int(rounds))
                        .unwrap();
                    let started = Instant::now();
                    tx.commit().unwrap();
                    max_commit = max_commit.max(started.elapsed());
                }
                (rounds, max_commit)
            })
        })
        .collect();
    // Let the writers rotate through a few segments, then checkpoint
    // mid-flight.
    let spin_deadline = Instant::now() + Duration::from_secs(30);
    while db.metrics().wal_segments_created < 4 {
        assert!(Instant::now() < spin_deadline, "writers never rotated");
        std::thread::yield_now();
    }
    let before = db.metrics();
    let ckpt_started = Instant::now();
    db.checkpoint().unwrap();
    let ckpt_elapsed = ckpt_started.elapsed();
    let after = db.metrics();
    stop.store(true, Ordering::Relaxed);
    let results: Vec<_> = writers.into_iter().map(|w| w.join().unwrap()).collect();

    assert_eq!(after.checkpoint_epochs, before.checkpoint_epochs + 1);
    assert!(
        after.checkpoint_concurrent_commits > 0,
        "commits must complete inside the checkpoint window (fuzzy, not quiesced)"
    );
    assert!(
        after.wal_segments_deleted > before.wal_segments_deleted,
        "the checkpoint must retire covered segments"
    );
    assert!(
        after.wal_retained_bytes < before.wal_retained_bytes,
        "the retained log must shrink across a checkpoint under load"
    );
    for (rounds, max_commit) in &results {
        assert!(*rounds > 0);
        // The quiesced checkpoint parked some commit for its entire
        // duration; the fuzzy one must not. The floor keeps the bound
        // meaningful when the checkpoint is itself nearly instant.
        let cliff = ckpt_elapsed.max(Duration::from_millis(250));
        assert!(
            *max_commit < cliff,
            "a commit stalled {max_commit:?} behind a {ckpt_elapsed:?} checkpoint"
        );
    }
}
