//! Multi-threaded integration tests: lost-update prevention with retries,
//! disjoint writers, reader/writer independence under SI, and blocking
//! behaviour under read committed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, GraphDb, IsolationLevel, NodeId, PropertyValue, SyncPolicy};

fn open(dir: &TempDir) -> Arc<GraphDb> {
    Arc::new(
        GraphDb::open(
            dir.path(),
            DbConfig::default().with_sync_policy(SyncPolicy::OnDemand),
        )
        .unwrap(),
    )
}

fn read_counter(db: &GraphDb, node: NodeId) -> i64 {
    let tx = db.begin();
    tx.node_property(node, "value")
        .unwrap()
        .unwrap()
        .as_int()
        .unwrap()
}

/// Concurrent increments on one hot node with retry-on-conflict: no update
/// may be lost (SI write-write conflict detection guarantees this).
#[test]
fn concurrent_increments_with_retries_lose_no_updates() {
    let dir = TempDir::new("conc_increments");
    let db = open(&dir);
    let mut tx = db.begin();
    let counter = tx
        .create_node(&["Counter"], &[("value", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    let threads = 4;
    let increments_per_thread = 25;
    let aborts = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let db = Arc::clone(&db);
        let aborts = Arc::clone(&aborts);
        handles.push(std::thread::spawn(move || {
            for _ in 0..increments_per_thread {
                loop {
                    let mut tx = db.begin();
                    let current = match tx.node_property(counter, "value") {
                        Ok(Some(PropertyValue::Int(v))) => v,
                        _ => {
                            drop(tx);
                            continue;
                        }
                    };
                    match tx.set_node_property(counter, "value", PropertyValue::Int(current + 1)) {
                        Ok(()) => {}
                        Err(e) if e.is_conflict() => {
                            aborts.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                    match tx.commit() {
                        Ok(_) => break,
                        Err(e) if e.is_conflict() => {
                            aborts.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        Err(e) => panic!("unexpected commit error: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        read_counter(&db, counter),
        (threads * increments_per_thread) as i64,
        "no increment may be lost (aborts retried: {})",
        aborts.load(Ordering::Relaxed)
    );
}

/// Writers touching disjoint nodes never conflict and all commits land.
#[test]
fn disjoint_writers_do_not_conflict() {
    let dir = TempDir::new("conc_disjoint");
    let db = open(&dir);
    let mut tx = db.begin();
    let nodes: Vec<NodeId> = (0..8)
        .map(|i| {
            tx.create_node(&["Slot"], &[("value", PropertyValue::Int(i))])
                .unwrap()
        })
        .collect();
    tx.commit().unwrap();

    let mut handles = Vec::new();
    for (i, &node) in nodes.iter().enumerate() {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for round in 0..20i64 {
                let mut tx = db.begin();
                tx.set_node_property(node, "value", PropertyValue::Int(i as i64 * 1000 + round))
                    .unwrap();
                tx.commit().unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.metrics().conflict_aborts, 0);
    let tx = db.begin();
    for (i, &node) in nodes.iter().enumerate() {
        assert_eq!(
            tx.node_property(node, "value").unwrap(),
            Some(PropertyValue::Int(i as i64 * 1000 + 19))
        );
    }
}

/// Under snapshot isolation, a long-running reader holding an old snapshot
/// never blocks writers and always observes its original state.
#[test]
fn long_reader_never_blocks_writers_under_si() {
    let dir = TempDir::new("conc_long_reader");
    let db = open(&dir);
    let mut tx = db.begin();
    let node = tx
        .create_node(&[], &[("value", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    let reader = db.begin();
    assert_eq!(
        reader.node_property(node, "value").unwrap(),
        Some(PropertyValue::Int(0))
    );

    // 20 sequential writer transactions from another thread, all while the
    // reader stays open. None of them may block or fail.
    let writer_db = Arc::clone(&db);
    let writer = std::thread::spawn(move || {
        for i in 1..=20i64 {
            let mut tx = writer_db.begin();
            tx.set_node_property(node, "value", PropertyValue::Int(i))
                .unwrap();
            tx.commit().unwrap();
        }
    });
    writer.join().unwrap();

    // The reader's snapshot is untouched.
    assert_eq!(
        reader.node_property(node, "value").unwrap(),
        Some(PropertyValue::Int(0))
    );
    drop(reader);
    assert_eq!(read_counter(&db, node), 20);
    // The version chain grew while the reader pinned the watermark.
    assert!(db.node_cache_stats().versions >= 2);
}

/// Under read committed, a reader blocks while a writer holds the long
/// write lock on the entity it wants to read (writers block readers — the
/// behaviour SI removes).
#[test]
fn rc_readers_block_on_writers() {
    let dir = TempDir::new("conc_rc_block");
    let db = Arc::new(
        GraphDb::open(
            dir.path(),
            DbConfig::read_committed().with_lock_timeout(Duration::from_millis(150)),
        )
        .unwrap(),
    );
    let mut tx = db.begin();
    let node = tx
        .create_node(&[], &[("value", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    // Writer takes the long write lock and keeps the transaction open.
    let mut writer = db.begin();
    writer
        .set_node_property(node, "value", PropertyValue::Int(1))
        .unwrap();

    // An RC reader now times out trying to take its short read lock.
    let reader = db.txn().isolation(IsolationLevel::ReadCommitted).begin();
    let err = reader.node_property(node, "value").unwrap_err();
    assert!(err.is_conflict(), "expected a lock timeout, got {err}");
    drop(reader);

    // An SI reader is not affected at all.
    let si_reader = db
        .txn()
        .isolation(IsolationLevel::SnapshotIsolation)
        .begin();
    assert_eq!(
        si_reader.node_property(node, "value").unwrap(),
        Some(PropertyValue::Int(0))
    );
    drop(si_reader);

    writer.commit().unwrap();
    assert!(db.lock_stats().timeouts >= 1);
}

/// Mixed concurrent graph construction: many threads adding nodes and
/// relationships around a shared hub (retrying on conflicts) produce a
/// consistent graph.
#[test]
fn concurrent_graph_construction_is_consistent() {
    let dir = TempDir::new("conc_build");
    let db = open(&dir);
    let mut tx = db.begin();
    let hub = tx.create_node(&["Hub"], &[]).unwrap();
    tx.commit().unwrap();

    let threads = 4;
    let per_thread = 10;
    let mut handles = Vec::new();
    for t in 0..threads {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut created = 0;
            while created < per_thread {
                let mut tx = db.begin();
                let spoke =
                    match tx.create_node(&["Spoke"], &[("thread", PropertyValue::Int(t as i64))]) {
                        Ok(n) => n,
                        Err(_) => continue,
                    };
                // Creating a relationship locks the hub; concurrent
                // creators may lose the first-updater race and retry.
                match tx.create_relationship(hub, spoke, "SPOKE", &[]) {
                    Ok(_) => {}
                    Err(e) if e.is_conflict() => continue,
                    Err(e) => panic!("unexpected: {e}"),
                }
                match tx.commit() {
                    Ok(_) => created += 1,
                    Err(e) if e.is_conflict() => continue,
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let tx = db.begin();
    let expected = threads * per_thread;
    assert_eq!(
        tx.degree(hub, graphsi_core::Direction::Both).unwrap(),
        expected
    );
    assert_eq!(tx.nodes_with_label("Spoke").unwrap().count(), expected);
}

/// Read-committed lost-update demonstration is prevented because writers
/// block each other via long write locks and the second write then aborts
/// or waits; combined with retries the counter stays exact.
#[test]
fn rc_counter_with_retries_is_exact() {
    let dir = TempDir::new("conc_rc_counter");
    let db = Arc::new(
        GraphDb::open(
            dir.path(),
            DbConfig::read_committed().with_lock_timeout(Duration::from_millis(500)),
        )
        .unwrap(),
    );
    let mut tx = db.begin();
    let counter = tx
        .create_node(&["Counter"], &[("value", PropertyValue::Int(0))])
        .unwrap();
    tx.commit().unwrap();

    let threads = 3;
    let per_thread = 10;
    let mut handles = Vec::new();
    for _ in 0..threads {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                loop {
                    let mut tx = db.begin();
                    // Acquire the write lock first (select-for-update
                    // style) so the read-modify-write is atomic under RC.
                    match tx.set_node_property(counter, "touch", PropertyValue::Bool(true)) {
                        Ok(()) => {}
                        Err(e) if e.is_conflict() => continue,
                        Err(e) => panic!("unexpected: {e}"),
                    }
                    let v = tx
                        .node_property(counter, "value")
                        .unwrap()
                        .unwrap()
                        .as_int()
                        .unwrap();
                    tx.set_node_property(counter, "value", PropertyValue::Int(v + 1))
                        .unwrap();
                    match tx.commit() {
                        Ok(_) => break,
                        Err(e) if e.is_conflict() => continue,
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(read_counter(&db, counter), (threads * per_thread) as i64);
}
