//! Social-network scenario: build a power-law "who knows whom" graph, run
//! friend-of-friend recommendations inside one snapshot while the graph
//! keeps changing, and report how the isolation level affects consistency.
//!
//! ```text
//! cargo run -p graphsi-core --example social_network --release
//! ```

use graphsi_core::test_support::TempDir;
use graphsi_core::{traversal, DbConfig, Direction, GraphDb, PropertyValue, Result};

fn main() -> Result<()> {
    let dir = TempDir::new("social_network");
    let db = GraphDb::open(dir.path(), DbConfig::default())?;

    // Build a small preferential-attachment network by hand (the workload
    // crate offers a bigger generator; this example keeps everything in one
    // file).
    let mut tx = db.begin();
    let mut people = Vec::new();
    for i in 0..200i64 {
        let node = tx.create_node(
            &["Person"],
            &[("handle", PropertyValue::String(format!("user{i}")))],
        )?;
        people.push(node);
    }
    tx.commit()?;

    // Everyone follows a few earlier users (earlier users end up with more
    // followers, giving hubs).
    let mut tx = db.begin();
    for (i, &person) in people.iter().enumerate().skip(1) {
        for k in 1..=3usize.min(i) {
            let target = people[(i / (k + 1)) % i];
            if target != person {
                tx.create_relationship(person, target, "FOLLOWS", &[])?;
            }
        }
    }
    tx.commit()?;

    let analyst = db.begin();
    let hub = *people
        .iter()
        .max_by_key(|&&p| analyst.degree(p, Direction::Both).unwrap())
        .unwrap();
    println!(
        "most-followed user: {:?} with degree {}",
        analyst.get_node(hub)?.unwrap().property("handle").unwrap(),
        analyst.degree(hub, Direction::Both)?
    );

    // Friend-of-friend recommendations computed twice inside the same
    // snapshot while the graph churns concurrently.
    let recommendations_before = traversal::friends_of_friends(&analyst, hub)?;

    let mut churn = db.begin();
    let newcomer = churn.create_node(
        &["Person"],
        &[("handle", PropertyValue::from("late_joiner"))],
    )?;
    churn.create_relationship(newcomer, hub, "FOLLOWS", &[])?;
    churn.commit()?;

    let recommendations_after = traversal::friends_of_friends(&analyst, hub)?;
    println!(
        "recommendations stable inside the snapshot: {} (|fof| = {})",
        recommendations_before == recommendations_after,
        recommendations_before.len()
    );
    drop(analyst);

    let fresh = db.begin();
    println!(
        "a fresh snapshot picks up the newcomer: degree(hub) = {}",
        fresh.degree(hub, Direction::Both)?
    );

    // Label scan, the phantom-prone query shape — now a lazy iterator.
    let person_count = fresh.nodes_with_label("Person")?.count();
    println!("{person_count} Person nodes in the latest snapshot");
    Ok(())
}
