//! Banking scenario: concurrent transfers between account nodes with
//! retry-on-conflict, showing that snapshot isolation preserves the total
//! balance (no lost updates) while also demonstrating the write-skew
//! anomaly the paper says SI admits.
//!
//! ```text
//! cargo run -p graphsi-core --example bank_transfer --release
//! ```

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, GraphDb, NodeId, PropertyValue, Result};

const ACCOUNTS: usize = 20;
const INITIAL_BALANCE: i64 = 1_000;
const TRANSFERS_PER_THREAD: usize = 100;
const THREADS: usize = 4;

fn balance(db: &GraphDb, account: NodeId) -> i64 {
    let tx = db.begin();
    tx.node_property(account, "balance")
        .unwrap()
        .unwrap()
        .as_int()
        .unwrap()
}

fn main() -> Result<()> {
    let dir = TempDir::new("bank_transfer");
    let db = GraphDb::open(dir.path(), DbConfig::default())?;

    // Create the accounts.
    let mut tx = db.begin();
    let accounts: Vec<NodeId> = (0..ACCOUNTS)
        .map(|i| {
            tx.create_node(
                &["Account"],
                &[
                    ("number", PropertyValue::Int(i as i64)),
                    ("balance", PropertyValue::Int(INITIAL_BALANCE)),
                ],
            )
            .unwrap()
        })
        .collect();
    tx.commit()?;

    // Concurrent random transfers with retry on write-write conflicts.
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let db = db.clone();
        let accounts = accounts.clone();
        handles.push(std::thread::spawn(move || {
            // `write_with_retry` re-runs the closure on write-write
            // conflicts with capped backoff; the retry count is visible in
            // the database metrics as conflict aborts.
            for i in 0..TRANSFERS_PER_THREAD {
                let from = accounts[(t * 7 + i * 3) % ACCOUNTS];
                let to = accounts[(t * 11 + i * 5 + 1) % ACCOUNTS];
                if from == to {
                    continue;
                }
                let amount = 10;
                db.write_with_retry(|tx| {
                    let read = |tx: &graphsi_core::Transaction, a| {
                        tx.node_property(a, "balance")
                            .unwrap()
                            .unwrap()
                            .as_int()
                            .unwrap()
                    };
                    let from_balance = read(tx, from);
                    let to_balance = read(tx, to);
                    tx.set_node_property(
                        from,
                        "balance",
                        PropertyValue::Int(from_balance - amount),
                    )?;
                    tx.set_node_property(to, "balance", PropertyValue::Int(to_balance + amount))
                })
                .expect("transfer failed");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total_retries = db.metrics().conflict_aborts;

    let total: i64 = accounts.iter().map(|&a| balance(&db, a)).sum();
    println!(
        "total balance after {} concurrent transfers: {total} (expected {})",
        THREADS * TRANSFERS_PER_THREAD,
        ACCOUNTS as i64 * INITIAL_BALANCE
    );
    println!("write-write conflicts retried: {total_retries}");
    println!("database metrics: {:?}", db.metrics());
    assert_eq!(total, ACCOUNTS as i64 * INITIAL_BALANCE);

    // --- Write skew demo ----------------------------------------------------
    // Both transactions check "combined balance of the two audit accounts
    // stays >= 0" and then withdraw from *different* accounts: SI lets both
    // commit, violating the constraint (the anomaly the paper accepts).
    let mut tx = db.begin();
    let audit_a = tx.create_node(&["Audit"], &[("balance", PropertyValue::Int(60))])?;
    let audit_b = tx.create_node(&["Audit"], &[("balance", PropertyValue::Int(60))])?;
    tx.commit()?;

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    let combined = |tx: &graphsi_core::Transaction| -> i64 {
        tx.node_property(audit_a, "balance")
            .unwrap()
            .unwrap()
            .as_int()
            .unwrap()
            + tx.node_property(audit_b, "balance")
                .unwrap()
                .unwrap()
                .as_int()
                .unwrap()
    };
    if combined(&t1) >= 100 {
        t1.set_node_property(audit_a, "balance", PropertyValue::Int(-40))?;
    }
    if combined(&t2) >= 100 {
        t2.set_node_property(audit_b, "balance", PropertyValue::Int(-40))?;
    }
    t1.commit()?;
    t2.commit()?;
    let after = balance(&db, audit_a) + balance(&db, audit_b);
    println!("write skew: combined audit balance ended at {after} (constraint was >= 0)");
    Ok(())
}
