//! The paper's motivating example, live: a two-step graph algorithm runs
//! while the graph is being modified. Under read committed the second step
//! can observe a different graph than the first; under snapshot isolation
//! both steps see the same snapshot.
//!
//! ```text
//! cargo run -p graphsi-core --example traversal_consistency
//! ```

use graphsi_core::test_support::TempDir;
use graphsi_core::{
    traversal, DbConfig, Direction, GraphDb, IsolationLevel, NodeId, PropertyValue, Result,
};

/// Builds a hub with `spokes` spokes, each spoke having one leaf.
fn build(db: &GraphDb, spokes: usize) -> Result<(NodeId, Vec<NodeId>)> {
    let mut tx = db.begin();
    let hub = tx.create_node(&["Hub"], &[("name", PropertyValue::from("hub"))])?;
    let mut mids = Vec::new();
    for i in 0..spokes {
        let mid = tx.create_node(&["Mid"], &[("i", PropertyValue::Int(i as i64))])?;
        let leaf = tx.create_node(&["Leaf"], &[])?;
        tx.create_relationship(hub, mid, "LINK", &[])?;
        tx.create_relationship(mid, leaf, "LINK", &[])?;
        mids.push(mid);
    }
    tx.commit()?;
    Ok((hub, mids))
}

fn run(isolation: IsolationLevel) -> Result<()> {
    let dir = TempDir::new("traversal_consistency");
    let db = GraphDb::open(dir.path(), DbConfig::default())?;
    let (hub, mids) = build(&db, 6)?;

    let reader = db.txn().isolation(isolation).begin();
    // Step one of the algorithm: enumerate the two-hop neighbourhood.
    let step_one = traversal::bfs(&reader, hub, 2)?;

    // Concurrent modification between the two steps: one middle node is
    // disconnected and removed.
    let mut vandal = db.begin();
    let victim = mids[2];
    for rel in vandal.relationships_vec(victim, Direction::Both)? {
        vandal.delete_relationship(rel.id)?;
    }
    vandal.delete_node(victim)?;
    vandal.commit()?;

    // Step two: walk the paths found in step one.
    let step_two = traversal::bfs(&reader, hub, 2)?;
    let mut broken_paths = 0usize;
    for &node in &step_one {
        if !reader.node_exists(node)? {
            broken_paths += 1;
        }
    }
    println!("--- {isolation} ---");
    println!("  step one visited {} nodes", step_one.len());
    println!("  step two visited {} nodes", step_two.len());
    println!(
        "  traversal repeatable: {}",
        if step_one == step_two {
            "yes"
        } else {
            "NO (unrepeatable read)"
        }
    );
    println!("  nodes from step one that vanished before step two: {broken_paths}");
    drop(reader);

    let fresh = db.begin();
    println!(
        "  a fresh snapshot sees {} nodes in the two-hop neighbourhood\n",
        traversal::bfs(&fresh, hub, 2)?.len()
    );
    Ok(())
}

fn main() -> Result<()> {
    run(IsolationLevel::ReadCommitted)?;
    run(IsolationLevel::SnapshotIsolation)?;
    println!("Snapshot isolation keeps multi-step graph algorithms consistent;");
    println!("read committed lets the graph change under their feet (paper §1).");
    Ok(())
}
