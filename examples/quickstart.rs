//! Quickstart: open a database, write a tiny graph, read it back under
//! snapshot isolation.
//!
//! ```text
//! cargo run -p graphsi-core --example quickstart
//! ```

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, Direction, GraphDb, PropertyValue, Result};

fn main() -> Result<()> {
    // A throw-away directory by default; pass a path as the first
    // argument to keep the store (CI seeds the `graphsi-admin verify`
    // gate this way).
    let arg_dir = std::env::args().nth(1);
    let dir = TempDir::new("quickstart");
    let store_path = arg_dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| dir.path().to_path_buf());
    let db = GraphDb::open(&store_path, DbConfig::default())?;

    // --- Write transaction -------------------------------------------------
    let mut tx = db.begin();
    let alice = tx.create_node(
        &["Person"],
        &[
            ("name", PropertyValue::from("Alice")),
            ("age", PropertyValue::Int(34)),
        ],
    )?;
    let bob = tx.create_node(
        &["Person"],
        &[
            ("name", PropertyValue::from("Bob")),
            ("age", PropertyValue::Int(29)),
        ],
    )?;
    let acme = tx.create_node(&["Company"], &[("name", PropertyValue::from("ACME"))])?;
    tx.create_relationship(alice, bob, "KNOWS", &[("since", PropertyValue::Int(2016))])?;
    tx.create_relationship(alice, acme, "WORKS_AT", &[])?;
    tx.create_relationship(bob, acme, "WORKS_AT", &[])?;
    let commit_ts = tx.commit()?;
    println!("committed the seed graph at timestamp {commit_ts}");

    // --- Read-only transaction (a stable snapshot, zero lock-manager calls)
    let tx = db.txn().read_only().begin();
    let people = tx.nodes_with_label_vec("Person")?;
    println!("{} people in the snapshot", people.len());
    for id in people {
        let node = tx.get_node(id)?.expect("node visible");
        println!(
            "  {} (age {})",
            node.property("name").unwrap(),
            node.property("age").unwrap()
        );
    }
    // Lazy iterator: colleagues stream out of the snapshot one at a time.
    let colleagues = tx.neighbors(acme, Direction::Incoming)?.count();
    println!("{colleagues} people work at ACME");
    drop(tx);

    // --- Snapshot stability demo -------------------------------------------
    let reader = db.begin();
    let before = reader.node_property(alice, "age")?;
    let mut writer = db.begin();
    writer.set_node_property(alice, "age", PropertyValue::Int(35))?;
    writer.commit()?;
    let after = reader.node_property(alice, "age")?;
    println!(
        "reader snapshot: age before concurrent update = {:?}, after = {:?} (unchanged)",
        before.unwrap(),
        after.unwrap()
    );
    drop(reader);

    let fresh = db.begin();
    println!(
        "a fresh transaction sees the new age: {:?}",
        fresh.node_property(alice, "age")?.unwrap()
    );

    println!("metrics: {:?}", db.metrics());
    Ok(())
}
