//! A guided tour of the layers in Figure 1 of the paper, as reproduced by
//! this workspace: record stores + WAL at the bottom, the transaction
//! substrate and the MVCC object cache in the middle, versioned indexes and
//! the transaction API on top.
//!
//! ```text
//! cargo run -p graphsi-core --example architecture_tour
//! ```

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, Direction, GraphDb, PropertyValue, Result, SyncPolicy};

fn main() -> Result<()> {
    let dir = TempDir::new("architecture_tour");
    let config = DbConfig::default().with_sync_policy(SyncPolicy::Always);
    let db = GraphDb::open(dir.path(), config)?;
    println!("=== graphsi architecture tour (paper Figure 1) ===\n");

    // Layer 1: record stores + WAL -----------------------------------------
    println!("[storage] store directory: {}", dir.path().display());
    let mut tx = db.begin();
    let a = tx.create_node(&["Person"], &[("name", PropertyValue::from("Ada"))])?;
    let b = tx.create_node(&["Person"], &[("name", PropertyValue::from("Bert"))])?;
    tx.create_relationship(a, b, "KNOWS", &[])?;
    tx.commit()?;
    let store_stats = db.store_stats();
    println!(
        "[storage] node records: {}, relationship records: {}, record writes so far: {}",
        store_stats.node_high_id,
        store_stats.relationship_high_id,
        store_stats.total_record_writes()
    );
    for file in ["nodes.db", "relationships.db", "properties.db"] {
        let len = std::fs::metadata(dir.path().join(file))
            .map(|m| m.len())
            .unwrap_or(0);
        println!("[storage]   {file}: {len} bytes");
    }
    let metrics = db.metrics();
    println!(
        "[storage]   wal/: {} segment(s), {} retained bytes",
        metrics.wal_segments_created + 1 - metrics.wal_segments_deleted,
        metrics.wal_retained_bytes
    );

    // Layer 2: the versioned object cache ----------------------------------
    let old_snapshot = db.begin();
    let mut tx = db.begin();
    tx.set_node_property(a, "name", PropertyValue::from("Ada Lovelace"))?;
    tx.commit()?;
    let cache = db.node_cache_stats();
    println!(
        "\n[object cache] chains: {}, versions: {}, base loads from store: {}",
        cache.chains, cache.versions, cache.base_loads
    );
    println!(
        "[object cache] the old snapshot still reads {:?}",
        old_snapshot.node_property(a, "name")?.unwrap()
    );
    drop(old_snapshot);

    // Layer 3: transaction substrate (locks, timestamps, conflicts) --------
    println!(
        "\n[txn] current commit timestamp: {}, active transactions: {}",
        db.current_timestamp(),
        db.active_transactions()
    );
    let mut t1 = db.begin();
    let mut t2 = db.begin();
    t1.set_node_property(a, "touched", PropertyValue::Bool(true))?;
    let conflict = t2.set_node_property(a, "touched", PropertyValue::Bool(false));
    println!(
        "[txn] first-updater-wins: second writer got a conflict: {}",
        conflict.is_err()
    );
    drop(t2);
    t1.commit()?;
    println!("[txn] lock-manager stats: {:?}", db.lock_stats());

    // Layer 4: versioned indexes --------------------------------------------
    let tx = db.begin();
    println!(
        "\n[index] nodes with label Person: {:?}",
        tx.nodes_with_label_vec("Person")?
    );
    println!(
        "[index] nodes with name = \"Bert\": {:?}",
        tx.nodes_with_property_vec("name", &PropertyValue::from("Bert"))?
    );
    drop(tx);

    // Layer 5: garbage collection -------------------------------------------
    let gc = db.run_gc();
    println!(
        "\n[gc] threaded run examined {} versions, reclaimed {}, dropped {} chains, reclaimed {} index postings",
        gc.versions_examined, gc.versions_reclaimed, gc.chains_dropped, gc.index_postings_reclaimed
    );

    // Layer 6: durability ----------------------------------------------------
    db.checkpoint()?;
    let m = db.metrics();
    println!(
        "\n[wal] fuzzy checkpoint done: epoch {}, {} page(s) flushed, {} segment(s) released",
        m.checkpoint_epochs, m.checkpoint_pages_flushed, m.wal_segments_deleted
    );
    drop(db);
    let reopened = GraphDb::open(dir.path(), DbConfig::default())?;
    let tx = reopened.begin();
    println!(
        "[recovery] after reopen, Ada is still {:?} and knows {} people",
        tx.node_property(a, "name")?.unwrap(),
        tx.degree(a, Direction::Both)?
    );
    println!("\n=== tour complete ===");
    Ok(())
}
