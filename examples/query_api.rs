//! The streaming query API, end to end: label/property matches, filters,
//! pushed-down range predicates, multi-hop expansion, `distinct`, `limit`,
//! row projection, and the bounded-memory guarantee of the chunked
//! cursors.
//!
//! ```text
//! cargo run --example query_api
//! ```

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, Direction, GraphDb, PropertyValue, Result};

fn main() -> Result<()> {
    let dir = TempDir::new("query_api");
    // A small chunk size to make the bounded-buffering guarantee visible
    // in the metrics below (the default is 256).
    let db = GraphDb::open(dir.path(), DbConfig::default().with_scan_chunk_size(8))?;

    // --- Seed: people in cities, employed by companies -------------------
    let mut tx = db.begin();
    let cities: Vec<_> = ["Madrid", "Lisbon"]
        .iter()
        .map(|name| tx.create_node(&["City"], &[("name", PropertyValue::from(*name))]))
        .collect::<Result<_>>()?;
    let acme = tx.create_node(&["Company"], &[("name", PropertyValue::from("ACME"))])?;
    let mut people = Vec::new();
    for i in 0..100i64 {
        let person = tx.create_node(
            &["Person"],
            &[("age", PropertyValue::Int(20 + (i * 7) % 40))],
        )?;
        tx.create_relationship(person, cities[(i % 2) as usize], "LIVES_IN", &[])?;
        if i % 3 == 0 {
            tx.create_relationship(person, acme, "WORKS_AT", &[])?;
        }
        people.push(person);
    }
    for pair in people.windows(2) {
        tx.create_relationship(pair[0], pair[1], "KNOWS", &[])?;
    }
    tx.commit()?;

    // --- The fluent pipeline, streaming from a read-only snapshot --------
    let tx = db.txn().read_only().begin();

    // Where do ACME's thirty-somethings live?
    let homes = tx
        .query()
        .nodes_with_label("Person")
        .filter_property("age", |v| v.as_int().is_some_and(|a| (30..40).contains(&a)))
        .filter(|tx, id| {
            // Arbitrary snapshot reads compose with the pipeline.
            Ok(tx
                .query()
                .start_nodes([id])
                .expand(Direction::Outgoing, Some("WORKS_AT"))
                .count()?
                > 0)
        })
        .expand(Direction::Outgoing, Some("LIVES_IN"))
        .distinct()
        .nodes()?;
    println!("ACME's thirty-somethings live in {} cities:", homes.len());
    for city in &homes {
        println!("  {}", city.property("name").unwrap());
    }

    // Two-hop KNOWS expansion with a limit: the upstream cursors stop
    // refilling the moment the limit is hit.
    let reach = tx
        .query()
        .start_nodes([people[0]])
        .expand(Direction::Both, Some("KNOWS"))
        .expand(Direction::Both, Some("KNOWS"))
        .distinct()
        .limit(5)
        .ids()?;
    println!("first 5 nodes within two KNOWS hops: {reach:?}");

    // Range predicates push down into the versioned index: `25 <= age < 35`
    // runs as a range-postings scan, never decoding candidate properties.
    let pushdowns_before = db.metrics().predicate_pushdowns;
    let decodes_before = db.metrics().property_decodes;
    let mid_twenties = tx
        .query()
        .filter_property_range("age", PropertyValue::Int(25)..PropertyValue::Int(35))
        .count()?;
    let metrics = db.metrics();
    println!(
        "{mid_twenties} people aged [25, 35) via the index ({} pushdown, {} decodes)",
        metrics.predicate_pushdowns - pushdowns_before,
        metrics.property_decodes - decodes_before,
    );
    assert!(metrics.predicate_pushdowns > pushdowns_before);
    assert_eq!(metrics.property_decodes, decodes_before);

    // Row terminals: the traversed relationship plus projected properties,
    // decoded once per row at the last stage.
    let rows = tx
        .query()
        .nodes_with_property_ge("age", PropertyValue::Int(55))
        .expand(Direction::Outgoing, Some("LIVES_IN"))
        .project(["name"])
        .rows()?;
    for row in rows.iter().take(3) {
        println!(
            "node {:?} reached via rel {:?}, lives in {}",
            row.node,
            row.rel,
            row.property("name").unwrap()
        );
    }

    // The bounded-memory evidence: hundreds of candidates were scanned,
    // but no cursor refill ever buffered more than one chunk of IDs.
    let metrics = db.metrics();
    println!(
        "chunk refills: {}, peak candidate ids buffered: {} (chunk size 8)",
        metrics.chunk_refills, metrics.candidate_buffer_peak
    );
    assert!(metrics.candidate_buffer_peak <= 8);
    Ok(())
}
