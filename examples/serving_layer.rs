//! Serving-layer tour: start an in-process TCP server over a temporary
//! database, talk to it with the blocking client, and drive it hard
//! enough to watch admission control shed load with typed `OVERLOADED`
//! responses instead of queueing unboundedly.
//!
//! ```text
//! cargo run --example serving_layer --release
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, GraphDb, IsolationLevel, PropertyValue};
use graphsi_server::{Client, ClientError, Server, ServerConfig};

fn main() {
    let dir = TempDir::new("serving_layer");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();

    // A deliberately small server so this example can saturate it from a
    // handful of threads: 1+1 workers, 2 queue slots per pool.
    let config = ServerConfig {
        read_workers: 1,
        write_workers: 1,
        queue_depth: 2,
        idle_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let mut server = Server::bind(db, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();
    println!("serving on {addr}");

    // --- Plain session traffic ---------------------------------------
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();

    let alice = client
        .create_node(
            &["Person"],
            &[
                ("name", PropertyValue::String("alice".into())),
                ("age", PropertyValue::Int(34)),
            ],
        )
        .unwrap();
    let bob = client
        .create_node(
            &["Person"],
            &[
                ("name", PropertyValue::String("bob".into())),
                ("age", PropertyValue::Int(29)),
            ],
        )
        .unwrap();
    client
        .create_relationship(alice, bob, "KNOWS", &[])
        .unwrap();

    // An explicit transaction spanning several requests; other sessions
    // see nothing until COMMIT.
    client
        .begin(false, IsolationLevel::SnapshotIsolation)
        .unwrap();
    client
        .set_node_property(alice, "age", PropertyValue::Int(35))
        .unwrap();
    let ts = client.commit().unwrap();
    println!("birthday committed at ts {ts}");

    // Range query over the wire, served by the versioned index.
    let rows = client
        .range_query(
            "age",
            Some(PropertyValue::Int(30)),
            None,
            0,
            &["name", "age"],
        )
        .unwrap();
    println!("people aged >= 30:");
    for row in &rows {
        println!("  node {} -> {:?}", row.node, row.properties);
    }

    // --- Saturation: typed load shedding ------------------------------
    // Hammer the tiny write pool from four threads; shed requests come
    // back as OVERLOADED (never silently queued, never hung), and the
    // clients back off and retry.
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let (mut ok, mut shed) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    match c.set_node_property(alice, "age", PropertyValue::Int(35)) {
                        Ok(()) => ok += 1,
                        Err(ClientError::Overloaded(_)) => {
                            shed += 1;
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    let (mut ok, mut shed) = (0u64, 0u64);
    for w in writers {
        let (o, s) = w.join().unwrap();
        ok += o;
        shed += s;
    }
    println!("under pressure: {ok} writes committed, {shed} shed with OVERLOADED");

    // Probes keep answering regardless of load, and METRICS exposes both
    // the database and the server counters in one plaintext dump.
    println!("--- health ---\n{}", client.health().unwrap());
    let metrics = client.metrics_text().unwrap();
    for line in metrics.lines().filter(|l| {
        l.starts_with("server_sessions")
            || l.starts_with("server_requests")
            || l.starts_with("server_rejected")
            || l.starts_with("commits")
    }) {
        println!("{line}");
    }

    server.shutdown();
    println!("server stopped cleanly");
}
