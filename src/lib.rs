//! # graphsi
//!
//! Facade crate for the graphsi workspace: an embedded, Neo4j-style graph
//! database with snapshot isolation, reproducing *"Snapshot Isolation for
//! Neo4j"* (Patiño-Martínez et al., EDBT 2016).
//!
//! Everything re-exported here comes from [`graphsi_core`]; depend on this
//! crate (or on `graphsi-core` directly) to use the database.

pub use graphsi_core::*;

/// Compiles and runs the README's code blocks (the quickstart and the
/// Query API tour) as doctests, so the front-page documentation cannot
/// rot.
#[cfg(doctest)]
mod readme_doctests {
    #![doc = include_str!("../README.md")]
}
