//! The repository lint gate.
//!
//! ```text
//! cargo run -p graphsi-lint                    # lint the tree, exit 1 on violations
//! cargo run -p graphsi-lint -- --write-allowlist   # regenerate lint-allowlist.txt
//! cargo run -p graphsi-lint -- --root <dir>    # lint a different tree
//! ```
//!
//! Findings are checked against `lint-allowlist.txt` at the tree root:
//! pre-existing sites are grandfathered with per-rule-per-file maximum
//! counts, so burning a site down shrinks the budget and a new site
//! fails the gate.

use std::path::PathBuf;
use std::process::ExitCode;

use graphsi_check::lint::{evaluate, scan_tree, Allowlist};

const ALLOWLIST_FILE: &str = "lint-allowlist.txt";

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut write_allowlist = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-allowlist" => write_allowlist = true,
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    // When invoked via `cargo run` the working directory is already the
    // workspace root; fall back to the manifest's parent otherwise.
    if !root.join("Cargo.toml").exists() {
        return Err(format!(
            "{} does not look like the workspace root (no Cargo.toml)",
            root.display()
        ));
    }

    let findings = scan_tree(&root).map_err(|e| format!("scanning tree: {e}"))?;

    if write_allowlist {
        let rendered = Allowlist::render(&findings);
        std::fs::write(root.join(ALLOWLIST_FILE), &rendered)
            .map_err(|e| format!("writing {ALLOWLIST_FILE}: {e}"))?;
        println!(
            "wrote {} entries to {ALLOWLIST_FILE}",
            rendered.lines().filter(|l| !l.starts_with('#')).count()
        );
        return Ok(true);
    }

    let allowlist = match std::fs::read_to_string(root.join(ALLOWLIST_FILE)) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(format!("reading {ALLOWLIST_FILE}: {e}")),
    };

    let report = evaluate(&findings, &allowlist);
    for note in &report.shrinkable {
        println!("note: {note}");
    }
    for violation in &report.violations {
        eprintln!("error: {violation}");
    }
    if report.passed() {
        println!(
            "graphsi-lint: clean ({} finding(s), all grandfathered)",
            findings.len()
        );
    } else {
        eprintln!(
            "graphsi-lint: {} file/rule budget(s) exceeded",
            report.violations.len()
        );
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("graphsi-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
