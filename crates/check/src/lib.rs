//! Correctness tooling for the graphsi workspace.
//!
//! Three instruments live here (see the README's "Correctness tooling"
//! section for the operator view):
//!
//! 1. **Source lints** ([`lint`]) — lightweight Rust-aware rules the
//!    compiler cannot enforce: no `unwrap`/`expect` in library code, no
//!    lock guard held across an fsync, complete metrics counter lists,
//!    canonical ascending shard-lock acquisition. The `graphsi-lint`
//!    binary (in `crates/lint`) drives them as a CI gate with an
//!    allowlist grandfathering pre-existing sites.
//! 2. **Decode-robustness fuzzing** ([`fuzz`]) — deterministic
//!    structured mutations (truncation, bit flips, length-field lies)
//!    over the WAL entry framing and the server wire protocol, asserting
//!    typed errors and no panics (`tests/decode_robustness.rs`).
//! 3. **Lock-order witness tests** (`tests/lock_witness.rs`, built with
//!    `--features lock-order`) — seeded rank inversions proving the
//!    vendored `parking_lot` witness fires with both acquisition sites,
//!    and regression tests for the legal orders the server relies on
//!    (idle-session sweeper vs. a session holding a write transaction).

#![warn(missing_docs)]

pub mod fuzz;
pub mod lint;
