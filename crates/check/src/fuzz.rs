//! Structured-mutation fuzzing for the decode paths.
//!
//! Not coverage-guided — the environment is offline and deterministic —
//! but the mutations are shaped around how framed binary formats
//! actually break: truncation (torn tails, short reads), bit flips
//! (media corruption) and length-field lies (a desynchronised or
//! malicious peer claiming a payload size that disagrees with reality).
//! The harnesses in `tests/decode_robustness.rs` feed these mutants to
//! `wal::record` and the server protocol decoders and assert every
//! outcome is a typed error or a clean parse — never a panic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic byte-level mutator over well-formed seed inputs.
pub struct Mutator {
    rng: StdRng,
}

/// Interesting values for a lying 32-bit length field, relative to the
/// true remaining length `n`.
fn length_lies(n: usize) -> [u32; 7] {
    [
        0,
        1,
        n.saturating_sub(1) as u32,
        n as u32,
        (n + 1) as u32,
        u32::MAX,
        u32::MAX / 2,
    ]
}

impl Mutator {
    /// Creates a mutator from a seed; the same seed replays the same
    /// mutation sequence.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Produces one mutant of `seed_input`: 1–3 of truncation, bit
    /// flips, byte splices and length-field lies, composed.
    pub fn mutate(&mut self, seed_input: &[u8]) -> Vec<u8> {
        let mut bytes = seed_input.to_vec();
        let ops = self.rng.gen_range(1..=3u32);
        for _ in 0..ops {
            match self.rng.gen_range(0..4u32) {
                0 => self.truncate(&mut bytes),
                1 => self.flip_bits(&mut bytes),
                2 => self.lie_in_length_field(&mut bytes),
                _ => self.splice(&mut bytes),
            }
        }
        bytes
    }

    /// Cuts the input at a random point (torn tail / short read).
    fn truncate(&mut self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        let cut = self.rng.gen_range(0..bytes.len());
        bytes.truncate(cut);
    }

    /// Flips 1–8 random bits anywhere in the input.
    fn flip_bits(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        for _ in 0..self.rng.gen_range(1..=8u32) {
            let at = self.rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << self.rng.gen_range(0..8u32);
        }
    }

    /// Overwrites 4 bytes at a random aligned-ish offset with an
    /// adversarial little-endian length value.
    fn lie_in_length_field(&mut self, bytes: &mut [u8]) {
        if bytes.len() < 4 {
            return;
        }
        let at = self.rng.gen_range(0..=bytes.len() - 4);
        let lies = length_lies(bytes.len() - at);
        let lie = lies[self.rng.gen_range(0..lies.len())];
        bytes[at..at + 4].copy_from_slice(&lie.to_le_bytes());
    }

    /// Inserts or deletes a small run of bytes (framing slip).
    fn splice(&mut self, bytes: &mut Vec<u8>) {
        let at = if bytes.is_empty() {
            0
        } else {
            self.rng.gen_range(0..=bytes.len())
        };
        if self.rng.gen_bool(0.5) {
            let run = self.rng.gen_range(1..=4u32);
            for _ in 0..run {
                let b: u8 = (self.rng.gen_range(0..=255u32)) as u8;
                bytes.insert(at.min(bytes.len()), b);
            }
        } else if at < bytes.len() {
            let run = (self.rng.gen_range(1..=4u32) as usize).min(bytes.len() - at);
            bytes.drain(at..at + run);
        }
    }
}

/// Number of mutants per target the robustness harness runs: overridden
/// by the `GRAPHSI_FUZZ_ITERS` environment variable (CI smoke uses the
/// default; long local runs can crank it up).
pub fn fuzz_iterations() -> u64 {
    std::env::var("GRAPHSI_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000)
}
