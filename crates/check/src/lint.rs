//! Lightweight Rust-aware source lints for the graphsi tree.
//!
//! These are not a compiler plugin: they scan masked source text (string
//! literals, char literals and comments blanked out, `#[cfg(test)]`
//! items removed) with just enough structure-awareness — brace depth,
//! `let` bindings, statement boundaries — to enforce repository rules
//! that `clippy` cannot express:
//!
//! | rule | meaning |
//! |------|---------|
//! | `no-unwrap` | no `.unwrap()` / `.expect(` in non-test library code |
//! | `no-guard-across-fsync` | no lock guard live across `sync_data` / `sync_all` / `sync_appended` |
//! | `counter-list` | every `AtomicU64` metrics counter appears in its `for_each_*counter!` list |
//! | `shard-lock-order` | shard-lock loops assert their footprint is sorted ascending |
//!
//! Findings carry `file:line` positions. Pre-existing sites are
//! grandfathered in an [`Allowlist`] with per-rule-per-file maximum
//! counts, so the count can shrink but never grow.

use std::fmt;
use std::path::{Path, PathBuf};

/// Which rule produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `.unwrap()` or `.expect(` outside test code.
    NoUnwrap,
    /// A lock guard is live across an fsync-class call.
    NoGuardAcrossFsync,
    /// A metrics counter field is missing from the counter list macro.
    CounterList,
    /// A shard-lock acquisition loop without a sorted-footprint assert.
    ShardLockOrder,
}

impl Rule {
    /// Stable rule name, used in diagnostics and the allowlist format.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoGuardAcrossFsync => "no-guard-across-fsync",
            Rule::CounterList => "counter-list",
            Rule::ShardLockOrder => "shard-lock-order",
        }
    }

    /// Parses a rule from its stable name.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-unwrap" => Some(Rule::NoUnwrap),
            "no-guard-across-fsync" => Some(Rule::NoGuardAcrossFsync),
            "counter-list" => Some(Rule::CounterList),
            "shard-lock-order" => Some(Rule::ShardLockOrder),
            _ => None,
        }
    }

    /// All rules, for reporting.
    pub const ALL: [Rule; 4] = [
        Rule::NoUnwrap,
        Rule::NoGuardAcrossFsync,
        Rule::CounterList,
        Rule::ShardLockOrder,
    ];
}

/// One rule violation at a source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// File the finding is in (relative to the scanned root).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Short description of what was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

// ---------------------------------------------------------------------
// Source masking
// ---------------------------------------------------------------------

/// Replaces comments, string literals and char literals with spaces,
/// preserving length and line structure, so the rule scanners never
/// match inside text. Handles nested block comments, raw strings with
/// any number of `#`s, byte strings and escapes; lifetimes (`'a`) are
/// left intact.
pub fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Copies `n` source bytes as spaces (newlines kept).
    fn blank(out: &mut Vec<u8>, bytes: &[u8], from: usize, to: usize) {
        for &b in &bytes[from..to] {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let end = bytes[i..]
                .iter()
                .position(|&c| c == b'\n')
                .map_or(bytes.len(), |p| i + p);
            blank(&mut out, bytes, i, end);
            i = end;
            continue;
        }
        // Block comment (nests).
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, bytes, start, i);
            continue;
        }
        // Raw string (and raw byte string): r#"..."#.
        if b == b'r' || (b == b'b' && bytes.get(i + 1) == Some(&b'r')) {
            let mut j = i + if b == b'b' { 2 } else { 1 };
            let mut hashes = 0;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                // Find the closing quote followed by `hashes` #s.
                let mut k = j + 1;
                'raw: while k < bytes.len() {
                    if bytes[k] == b'"' {
                        let mut h = 0;
                        while h < hashes && bytes.get(k + 1 + h) == Some(&b'#') {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break 'raw;
                        }
                    }
                    k += 1;
                }
                blank(&mut out, bytes, i, k);
                i = k;
                continue;
            }
        }
        // String literal (and byte string).
        if b == b'"' || (b == b'b' && bytes.get(i + 1) == Some(&b'"')) {
            let start = i;
            i += if b == b'b' { 2 } else { 1 };
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            blank(&mut out, bytes, start, i.min(bytes.len()));
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a literal; 'ident
        // (no closing quote right after) is a lifetime.
        if b == b'\'' {
            let lit_end = if bytes.get(i + 1) == Some(&b'\\') {
                // Escape: find the closing quote.
                bytes[i + 2..]
                    .iter()
                    .position(|&c| c == b'\'')
                    .map(|p| i + 2 + p + 1)
            } else if bytes.get(i + 2) == Some(&b'\'') && bytes.get(i + 1) != Some(&b'\'') {
                Some(i + 3)
            } else {
                None
            };
            if let Some(end) = lit_end {
                blank(&mut out, bytes, i, end.min(bytes.len()));
                i = end.min(bytes.len());
                continue;
            }
        }
        out.push(b);
        i += 1;
    }
    // The masking only ever replaces whole characters with spaces, so
    // the result is valid UTF-8 (multi-byte chars inside literals are
    // each replaced byte-for-byte with spaces).
    String::from_utf8_lossy(&out).into_owned()
}

/// Blanks every item annotated `#[cfg(test)]` (test modules and
/// functions) from already-masked source: after the attribute, the next
/// brace-delimited block (plus everything before it on the item) is
/// replaced by spaces.
pub fn mask_test_items(masked: &str) -> String {
    let bytes = masked.as_bytes();
    let mut out = masked.to_owned();
    let mut search = 0;
    while let Some(pos) = out[search..].find("#[cfg(test)]") {
        let attr_start = search + pos;
        // Find the opening brace of the annotated item.
        let Some(open_rel) = out[attr_start..].find('{') else {
            break;
        };
        let open = attr_start + open_rel;
        let mut depth = 0usize;
        let mut end = out.len();
        for (k, &b) in bytes[open..].iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        let blanked: String = out[attr_start..end]
            .chars()
            .map(|c| if c == '\n' { '\n' } else { ' ' })
            .collect();
        out.replace_range(attr_start..end, &blanked);
        search = end.min(out.len());
    }
    out
}

fn line_of(src: &str, offset: usize) -> usize {
    src[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

// ---------------------------------------------------------------------
// Rule: no-unwrap
// ---------------------------------------------------------------------

fn scan_no_unwrap(file: &Path, code: &str, out: &mut Vec<Finding>) {
    for needle in [".unwrap()", ".expect("] {
        let mut search = 0;
        while let Some(pos) = code[search..].find(needle) {
            let at = search + pos;
            out.push(Finding {
                rule: Rule::NoUnwrap,
                file: file.to_path_buf(),
                line: line_of(code, at),
                message: format!(
                    "`{}` in non-test library code",
                    needle.trim_end_matches('(')
                ),
            });
            search = at + needle.len();
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-guard-across-fsync
// ---------------------------------------------------------------------

const SYNC_CALLS: [&str; 3] = [".sync_data()", ".sync_all()", "sync_appended("];
const GUARD_CALLS: [&str; 4] = [".lock()", ".try_lock()", ".read()", ".write()"];

fn scan_guard_across_fsync(file: &Path, code: &str, out: &mut Vec<Finding>) {
    // Walks statements tracking brace depth and live `let` guard
    // bindings; any fsync-class call while a guard is live (or in the
    // same statement as a fresh temporary guard) is a finding.
    struct Guard {
        name: String,
        depth: usize,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let bytes = code.as_bytes();
    let mut stmt_start = 0usize;
    let mut i = 0usize;
    while i <= bytes.len() {
        let boundary = i == bytes.len() || matches!(bytes[i], b';' | b'{' | b'}');
        if !boundary {
            i += 1;
            continue;
        }
        let stmt = &code[stmt_start..i];
        let has_guard_call = GUARD_CALLS.iter().any(|g| stmt.contains(g));
        let sync_at = SYNC_CALLS.iter().find_map(|s| stmt.find(s));

        if let Some(rel) = sync_at {
            let at = stmt_start + rel;
            if let Some(live) = guards.last() {
                out.push(Finding {
                    rule: Rule::NoGuardAcrossFsync,
                    file: file.to_path_buf(),
                    line: line_of(code, at),
                    message: format!("fsync-class call while lock guard `{}` is live", live.name),
                });
            } else if has_guard_call {
                out.push(Finding {
                    rule: Rule::NoGuardAcrossFsync,
                    file: file.to_path_buf(),
                    line: line_of(code, at),
                    message: "fsync-class call on an expression holding a fresh lock guard"
                        .to_owned(),
                });
            }
        }

        // `let name = ...lock()...` starts a live guard at this depth.
        if has_guard_call && sync_at.is_none() {
            let trimmed = stmt.trim_start();
            if let Some(rest) = trimmed.strip_prefix("let ") {
                let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && name != "_" {
                    guards.push(Guard { name, depth });
                }
            }
        }
        // `drop(name)` ends a guard early.
        if let Some(pos) = stmt.find("drop(") {
            let arg: String = stmt[pos + 5..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            guards.retain(|g| g.name != arg);
        }

        if i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                }
                _ => {}
            }
        }
        i += 1;
        stmt_start = i;
    }
}

// ---------------------------------------------------------------------
// Rule: counter-list
// ---------------------------------------------------------------------

fn scan_counter_list(file: &Path, code: &str, out: &mut Vec<Finding>) {
    // Only files that define a counter-list macro are checked.
    let Some(macro_pos) = code
        .find("macro_rules! for_each_counter")
        .or_else(|| code.find("macro_rules! for_each_server_counter"))
    else {
        return;
    };
    // The list is the idents inside the inner `$m! { ... }` block.
    let Some(open_rel) = code[macro_pos..].find("$m!") else {
        return;
    };
    let list_start = macro_pos + open_rel;
    let Some(brace_rel) = code[list_start..].find('{') else {
        return;
    };
    let brace = list_start + brace_rel;
    let Some(close_rel) = code[brace..].find('}') else {
        return;
    };
    let listed: Vec<&str> = code[brace + 1..brace + close_rel]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();

    // Every `name: AtomicU64,` struct field must be in the list (array
    // fields like `[AtomicU64; N]` have a different type text and are
    // exempt — the histogram is encoded separately).
    let mut search = 0;
    while let Some(pos) = code[search..].find(": AtomicU64") {
        let at = search + pos;
        let field: String = code[..at]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if !field.is_empty() && !listed.contains(&field.as_str()) {
            out.push(Finding {
                rule: Rule::CounterList,
                file: file.to_path_buf(),
                line: line_of(code, at),
                message: format!("counter `{field}` missing from the for_each counter list"),
            });
        }
        search = at + ": AtomicU64".len();
    }
}

// ---------------------------------------------------------------------
// Rule: shard-lock-order
// ---------------------------------------------------------------------

const SORTED_ASSERT: &str = "windows(2).all(|w| w[0] < w[1])";

fn scan_shard_lock_order(file: &Path, code: &str, out: &mut Vec<Finding>) {
    // A file acquiring shard locks (`store_shards[...]...lock()`) must
    // carry the canonical ascending-footprint assertion somewhere.
    let mut search = 0;
    let mut sites = Vec::new();
    while let Some(pos) = code[search..].find("store_shards[") {
        let at = search + pos;
        let mut window_end = (at + 200).min(code.len());
        while !code.is_char_boundary(window_end) {
            window_end -= 1;
        }
        if GUARD_CALLS.iter().any(|g| code[at..window_end].contains(g)) {
            sites.push(at);
        }
        search = at + "store_shards[".len();
    }
    if !sites.is_empty() && !code.contains(SORTED_ASSERT) {
        for at in sites {
            out.push(Finding {
                rule: Rule::ShardLockOrder,
                file: file.to_path_buf(),
                line: line_of(code, at),
                message: format!(
                    "shard-lock acquisition without the ascending-footprint assert `{SORTED_ASSERT}`"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Driving
// ---------------------------------------------------------------------

/// Runs every rule over one file's source, returning its findings.
/// `file` is the (relative) path used in diagnostics.
pub fn scan_source(file: &Path, src: &str) -> Vec<Finding> {
    let masked = mask_test_items(&mask_source(src));
    let mut out = Vec::new();
    scan_no_unwrap(file, &masked, &mut out);
    scan_guard_across_fsync(file, &masked, &mut out);
    scan_counter_list(file, &masked, &mut out);
    scan_shard_lock_order(file, &masked, &mut out);
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// Walks `root` and lints every library source file: `crates/*/src`
/// recursively plus the root package's `src`. Vendored crates, `tests/`,
/// `benches/` and `examples/` directories are not library code and are
/// skipped.
pub fn scan_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let src = path.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for dir in roots {
        scan_dir(root, &dir, &mut findings)?;
    }
    Ok(findings)
}

fn scan_dir(root: &Path, dir: &Path, findings: &mut Vec<Finding>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            scan_dir(root, &path, findings)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = std::fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            findings.extend(scan_source(&rel, &src));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------

/// Grandfathered findings: per-rule-per-file maximum counts. The lint
/// fails when a file exceeds its budget — so new violations cannot ride
/// in on old files, and deleting old sites can only shrink the budget.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: Vec<(String, PathBuf, usize)>,
}

impl Allowlist {
    /// Parses the allowlist format: one `rule path max-count` line per
    /// entry, `#` comments and blank lines skipped.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path), Some(count), None) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "allowlist line {}: want `rule path count`",
                    idx + 1
                ));
            };
            if Rule::from_name(rule).is_none() {
                return Err(format!("allowlist line {}: unknown rule {rule:?}", idx + 1));
            }
            let count: usize = count
                .parse()
                .map_err(|_| format!("allowlist line {}: bad count {count:?}", idx + 1))?;
            entries.push((rule.to_owned(), PathBuf::from(path), count));
        }
        Ok(Allowlist { entries })
    }

    /// Renders findings as an allowlist that exactly grandfathers them.
    pub fn render(findings: &[Finding]) -> String {
        let mut counts: std::collections::BTreeMap<(String, PathBuf), usize> =
            std::collections::BTreeMap::new();
        for f in findings {
            *counts
                .entry((f.rule.name().to_owned(), f.file.clone()))
                .or_default() += 1;
        }
        let mut out = String::from(
            "# Grandfathered lint findings: `rule path max-count` per line.\n\
             # Counts may shrink but must never grow; regenerate with\n\
             # `cargo run -p graphsi-lint -- --write-allowlist` after burning sites down.\n",
        );
        for ((rule, path), count) in counts {
            out.push_str(&format!("{} {} {}\n", rule, path.display(), count));
        }
        out
    }

    fn allowed(&self, rule: Rule, file: &Path) -> usize {
        self.entries
            .iter()
            .find(|(r, p, _)| r == rule.name() && p == file)
            .map_or(0, |(_, _, c)| *c)
    }
}

/// The outcome of checking findings against an allowlist.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Hard failures: files over their grandfathered budget, with the
    /// findings that overflow it.
    pub violations: Vec<String>,
    /// Files now under budget — the allowlist entry can be shrunk.
    pub shrinkable: Vec<String>,
}

impl Report {
    /// True when the lint gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks `findings` against `allowlist`, producing per-file verdicts.
pub fn evaluate(findings: &[Finding], allowlist: &Allowlist) -> Report {
    let mut by_site: std::collections::BTreeMap<(Rule, PathBuf), Vec<&Finding>> =
        std::collections::BTreeMap::new();
    for f in findings {
        by_site.entry((f.rule, f.file.clone())).or_default().push(f);
    }
    let mut report = Report::default();
    for ((rule, file), site_findings) in &by_site {
        let allowed = allowlist.allowed(*rule, file);
        let found = site_findings.len();
        if found > allowed {
            let mut lines: Vec<String> = site_findings.iter().map(|f| f.to_string()).collect();
            lines.insert(
                0,
                format!(
                    "{}: [{}] {found} finding(s), {allowed} grandfathered:",
                    file.display(),
                    rule.name()
                ),
            );
            report.violations.push(lines.join("\n  "));
        } else if found < allowed {
            report.shrinkable.push(format!(
                "{}: [{}] allowlist grants {allowed} but only {found} remain — shrink it",
                file.display(),
                rule.name()
            ));
        }
    }
    // Allowlist entries for sites that no longer fire at all.
    for (rule, path, count) in &allowlist.entries {
        let Some(rule) = Rule::from_name(rule) else {
            continue;
        };
        if *count > 0 && !by_site.contains_key(&(rule, path.clone())) {
            report.shrinkable.push(format!(
                "{}: [{}] allowlist grants {count} but none remain — delete the entry",
                path.display(),
                rule.name()
            ));
        }
    }
    report
}
