//! Seeded-violation tests for the lint rules: each rule must fire on a
//! synthetic source file carrying exactly the violation it polices, and
//! must stay quiet on the cleaned-up version of the same code. This is
//! the proof that the CI gate actually gates — a lint that never fires
//! is indistinguishable from no lint at all.

use std::path::Path;

use graphsi_check::lint::{evaluate, mask_source, mask_test_items, scan_source, Allowlist, Rule};

fn findings_for(src: &str) -> Vec<graphsi_check::lint::Finding> {
    scan_source(Path::new("synthetic.rs"), src)
}

fn rules_fired(src: &str) -> Vec<Rule> {
    let mut rules: Vec<Rule> = findings_for(src).into_iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

// -----------------------------------------------------------------
// no-unwrap
// -----------------------------------------------------------------

#[test]
fn no_unwrap_fires_on_unwrap_and_expect() {
    let src = r#"
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    a + b
}
"#;
    let findings = findings_for(src);
    let unwraps: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::NoUnwrap)
        .collect();
    assert_eq!(unwraps.len(), 2, "{findings:?}");
    assert_eq!(unwraps[0].line, 3);
    assert_eq!(unwraps[1].line, 4);
}

#[test]
fn no_unwrap_quiet_on_typed_errors() {
    let src = r#"
fn f(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_owned())
}
"#;
    assert!(rules_fired(src).is_empty());
}

#[test]
fn no_unwrap_ignores_test_code_strings_and_comments() {
    let src = r#"
// A comment mentioning .unwrap() is not a finding.
fn f() -> &'static str {
    "calling .unwrap() in a string is fine"
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
"#;
    assert!(rules_fired(src).is_empty(), "{:?}", findings_for(src));
}

// -----------------------------------------------------------------
// no-guard-across-fsync
// -----------------------------------------------------------------

#[test]
fn guard_across_fsync_fires_on_held_guard() {
    let src = r#"
fn flush(file: &std::fs::File, m: &Mutex<u32>) {
    let inner = m.lock();
    file.sync_data();
    drop(inner);
}
"#;
    let findings = findings_for(src);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::NoGuardAcrossFsync)
        .collect();
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("inner"), "{}", hits[0].message);
}

#[test]
fn guard_across_fsync_fires_on_fresh_guard_same_statement() {
    let src = r#"
fn flush(m: &Mutex<std::fs::File>) {
    m.lock().sync_data();
}
"#;
    assert_eq!(rules_fired(src), vec![Rule::NoGuardAcrossFsync]);
}

#[test]
fn guard_across_fsync_quiet_when_guard_dropped_first() {
    let src = r#"
fn flush(file: &std::fs::File, m: &Mutex<u32>) {
    let inner = m.lock();
    let snapshot = *inner;
    drop(inner);
    file.sync_data();
    let _ = snapshot;
}
"#;
    assert!(rules_fired(src).is_empty(), "{:?}", findings_for(src));
}

#[test]
fn guard_across_fsync_quiet_when_guard_scope_closed() {
    let src = r#"
fn flush(file: &std::fs::File, m: &Mutex<u32>) {
    {
        let inner = m.lock();
        let _ = *inner;
    }
    file.sync_data();
}
"#;
    assert!(rules_fired(src).is_empty(), "{:?}", findings_for(src));
}

// -----------------------------------------------------------------
// counter-list
// -----------------------------------------------------------------

#[test]
fn counter_list_fires_on_missing_counter() {
    let src = r#"
pub struct Metrics {
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
}

macro_rules! for_each_counter {
    ($m:ident) => {
        $m! { commits }
    };
}
"#;
    let findings = findings_for(src);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::CounterList)
        .collect();
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("aborts"), "{}", hits[0].message);
}

#[test]
fn counter_list_quiet_when_complete() {
    let src = r#"
pub struct Metrics {
    pub commits: AtomicU64,
    pub aborts: AtomicU64,
}

macro_rules! for_each_counter {
    ($m:ident) => {
        $m! { commits, aborts }
    };
}
"#;
    assert!(rules_fired(src).is_empty(), "{:?}", findings_for(src));
}

#[test]
fn counter_list_exempts_histogram_arrays() {
    let src = r#"
pub struct Metrics {
    pub commits: AtomicU64,
    pub latency_us: [AtomicU64; 28],
}

macro_rules! for_each_server_counter {
    ($m:ident) => {
        $m! { commits }
    };
}
"#;
    assert!(rules_fired(src).is_empty(), "{:?}", findings_for(src));
}

// -----------------------------------------------------------------
// shard-lock-order
// -----------------------------------------------------------------

#[test]
fn shard_lock_order_fires_without_sorted_assert() {
    let src = r#"
fn apply(&self, shards: &[usize]) {
    for &s in shards {
        let guard = self.store_shards[s].lock();
        let _ = guard;
    }
}
"#;
    assert_eq!(rules_fired(src), vec![Rule::ShardLockOrder]);
}

#[test]
fn shard_lock_order_quiet_with_sorted_assert() {
    let src = r#"
fn apply(&self, shards: &[usize]) {
    debug_assert!(shards.windows(2).all(|w| w[0] < w[1]));
    for &s in shards {
        let guard = self.store_shards[s].lock();
        let _ = guard;
    }
}
"#;
    assert!(rules_fired(src).is_empty(), "{:?}", findings_for(src));
}

// -----------------------------------------------------------------
// Masking primitives
// -----------------------------------------------------------------

#[test]
fn masking_preserves_length_and_lines() {
    let src = "let s = \"a\\\"b\"; // trailing\nlet c = 'x';\n/* block\nspans */ let l: &'static str = r#\"raw \"quoted\"\"#;\n";
    let masked = mask_source(src);
    assert_eq!(masked.len(), src.len());
    assert_eq!(
        masked.matches('\n').count(),
        src.matches('\n').count(),
        "newlines must survive masking for line numbers to hold"
    );
    assert!(!masked.contains("trailing"));
    assert!(!masked.contains("quoted"));
    assert!(masked.contains("'static"), "lifetimes must survive");
}

#[test]
fn test_item_masking_blanks_cfg_test_modules() {
    let src =
        "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
    let masked = mask_test_items(&mask_source(src));
    assert!(!masked.contains("unwrap"));
    assert!(masked.contains("fn lib()"));
    assert!(masked.contains("fn lib2()"));
}

// -----------------------------------------------------------------
// Allowlist semantics
// -----------------------------------------------------------------

#[test]
fn allowlist_budget_is_a_ceiling_not_a_license() {
    let src = r#"
fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
fn g(x: Option<u32>) -> u32 {
    x.unwrap()
}
"#;
    let findings = findings_for(src);
    assert_eq!(findings.len(), 2);

    // Exactly at budget: passes.
    let at_budget = Allowlist::parse("no-unwrap synthetic.rs 2\n").unwrap();
    assert!(evaluate(&findings, &at_budget).passed());

    // Under budget: passes but is flagged shrinkable.
    let over_granted = Allowlist::parse("no-unwrap synthetic.rs 3\n").unwrap();
    let report = evaluate(&findings, &over_granted);
    assert!(report.passed());
    assert_eq!(report.shrinkable.len(), 1);

    // Over budget: the gate fails and the diagnostic carries file:line.
    let tight = Allowlist::parse("no-unwrap synthetic.rs 1\n").unwrap();
    let report = evaluate(&findings, &tight);
    assert!(!report.passed());
    assert!(report.violations[0].contains("synthetic.rs:3"));
}

#[test]
fn allowlist_render_round_trips() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let findings = findings_for(src);
    let rendered = Allowlist::render(&findings);
    let parsed = Allowlist::parse(&rendered).unwrap();
    assert!(evaluate(&findings, &parsed).passed());
}

#[test]
fn allowlist_rejects_malformed_lines() {
    assert!(Allowlist::parse("no-unwrap missing-count.rs\n").is_err());
    assert!(Allowlist::parse("not-a-rule foo.rs 1\n").is_err());
    assert!(Allowlist::parse("no-unwrap foo.rs many\n").is_err());
    assert!(Allowlist::parse("# just a comment\n\n").is_ok());
}

#[test]
fn stale_allowlist_entries_are_reported_shrinkable() {
    let allow = Allowlist::parse("no-unwrap gone.rs 4\n").unwrap();
    let report = evaluate(&[], &allow);
    assert!(report.passed());
    assert_eq!(report.shrinkable.len(), 1);
    assert!(report.shrinkable[0].contains("gone.rs"));
}
