//! Lock-order witness tests (`--features lock-order`).
//!
//! Two halves:
//!
//! 1. **Seeded inversions** prove the witness actually fires: blocking
//!    on a lower (or equal) rank while holding a higher one must panic
//!    *naming both acquisition sites* — the property the whole
//!    instrument exists for.
//! 2. **Deadlock regressions** prove the orders the server relies on
//!    stay quiet: the idle-session sweeper probes session locks with
//!    `try_lock` while sessions hold write transactions into the core;
//!    that order is only safe because the probe cannot block, and the
//!    witness records (but does not forbid) it. The global acquisition
//!    graph must still be acyclic afterwards.
//!
//! Each synthetic test uses unique (rank, name) pairs: the acquisition
//! graph is process-global, so reusing identities across tests could
//! manufacture cycles no real execution produces.

#![cfg(feature = "lock-order")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use graphsi_core::test_support::Watchdog;
use graphsi_core::{DbConfig, GraphDb, IsolationLevel, PropertyValue};
use graphsi_server::{Client, ErrorCode, Server, ServerConfig};
use graphsi_storage::test_util::TempDir;
use parking_lot::{order, Mutex};

/// Runs `f` and returns the panic message the witness raised.
fn witness_panic(f: impl FnOnce()) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("the witness must panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .expect("panic payload must be a message")
}

#[test]
fn blocking_inversion_panics_naming_both_sites() {
    let _watchdog = Watchdog::arm(
        "blocking_inversion_panics_naming_both_sites",
        Duration::from_secs(120),
    );
    let high = Mutex::with_rank((), 9_100, "witness.test.high");
    let low = Mutex::with_rank((), 9_000, "witness.test.low");

    let message = witness_panic(|| {
        let _h = high.lock();
        let _l = low.lock(); // inversion: 9_000 while holding 9_100
    });

    assert!(
        message.contains("lock-order violation"),
        "unexpected message: {message}"
    );
    assert!(message.contains("witness.test.high"), "{message}");
    assert!(message.contains("witness.test.low"), "{message}");
    // Both acquisition sites, as file:line positions in this file.
    assert_eq!(
        message.matches("lock_witness.rs:").count(),
        2,
        "both sites must be named: {message}"
    );
}

#[test]
fn equal_rank_blocking_also_panics() {
    let _watchdog = Watchdog::arm("equal_rank_blocking_also_panics", Duration::from_secs(120));
    let a = Mutex::with_rank((), 9_200, "witness.test.eq-a");
    let b = Mutex::with_rank((), 9_200, "witness.test.eq-b");

    let message = witness_panic(|| {
        let _a = a.lock();
        let _b = b.lock(); // equal rank: still a potential cycle
    });
    assert!(message.contains("witness.test.eq-a"), "{message}");
    assert!(message.contains("witness.test.eq-b"), "{message}");
}

#[test]
fn ascending_order_is_quiet_and_tracked() {
    let _watchdog = Watchdog::arm(
        "ascending_order_is_quiet_and_tracked",
        Duration::from_secs(120),
    );
    let low = Mutex::with_rank((), 9_300, "witness.test.asc-low");
    let high = Mutex::with_rank((), 9_310, "witness.test.asc-high");

    let _l = low.lock();
    let _h = high.lock();
    let held = order::held_by_current_thread();
    let names: Vec<&str> = held.iter().map(|(_, n, _)| *n).collect();
    assert_eq!(names, vec!["witness.test.asc-low", "witness.test.asc-high"]);
    drop(_h);
    drop(_l);
    assert!(order::held_by_current_thread().is_empty());
}

#[test]
fn unranked_locks_are_invisible() {
    let _watchdog = Watchdog::arm("unranked_locks_are_invisible", Duration::from_secs(120));
    let ranked = Mutex::with_rank((), 9_400, "witness.test.over-unranked");
    let plain = Mutex::new(());

    // Holding a ranked lock, a plain `Mutex::new` lock acquires at any
    // point without participating: no panic, no held-set entry.
    let _r = ranked.lock();
    let _p = plain.lock();
    let held = order::held_by_current_thread();
    assert_eq!(held.len(), 1, "{held:?}");
}

/// The sweeper pattern in miniature. The idle-session sweeper iterates
/// the session table (rank 100) and probes each session lock (rank 150)
/// with `try_lock` — descending against a session thread that holds its
/// session lock and calls into the core. The probe must stay quiet
/// (it cannot block, hence cannot deadlock), while the *blocking* form
/// of the same descent is exactly what the witness must catch.
#[test]
fn sweeper_try_lock_descent_is_quiet_blocking_descent_fires() {
    let _watchdog = Watchdog::arm(
        "sweeper_try_lock_descent_is_quiet_blocking_descent_fires",
        Duration::from_secs(120),
    );
    let table = Mutex::with_rank((), 9_500, "witness.sweep.table");
    let session = Mutex::with_rank((), 9_510, "witness.sweep.session");

    // Legal sweeper order: hold the table, *probe* the session.
    {
        let _t = table.lock();
        let probe = session.try_lock();
        assert!(probe.is_some(), "uncontended probe must succeed");
    }

    // The edge was recorded even though try_lock never panics.
    let edges = order::edges();
    assert!(
        edges
            .iter()
            .any(|((from, to), _)| from.1 == "witness.sweep.table"
                && to.1 == "witness.sweep.session"),
        "try_lock acquisition must be recorded: {edges:?}"
    );

    // The same descent *blocking* — a sweeper bug — fires the witness.
    let message = witness_panic(|| {
        let _s = session.lock();
        let _t = table.lock();
    });
    assert!(message.contains("witness.sweep.session"), "{message}");
    assert!(message.contains("witness.sweep.table"), "{message}");
}

/// Full-stack deadlock regression: a session holds a write transaction
/// (session lock rank 150 held across core lock ranks 200+) while the
/// sweeper repeatedly probes the session table and the session lock.
/// With the witness armed, any blocking descent anywhere in the server
/// would panic the owning thread and fail the client's next request —
/// so a clean run is evidence the legal order holds end to end.
#[test]
fn idle_sweeper_vs_write_transaction_stays_deadlock_free() {
    let _watchdog = Watchdog::arm(
        "idle_sweeper_vs_write_transaction_stays_deadlock_free",
        Duration::from_secs(120),
    );
    let dir = TempDir::new("witness_sweeper");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(120),
        sweep_interval: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let mut server = Server::bind(db, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().to_string();

    let mut c = Client::connect(&addr).unwrap();
    c.begin(false, IsolationLevel::SnapshotIsolation).unwrap();
    let id = c
        .create_node(&["Sweep"], &[("k", PropertyValue::Int(1))])
        .unwrap();

    // Keep the transaction warm across several sweep intervals: the
    // sweeper probes this session's lock while the session executes
    // writes that reach deep into the core lock order.
    for i in 0..5 {
        c.set_node_property(id, "k", PropertyValue::Int(i)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
    }
    c.commit().unwrap();

    // Now go idle past the timeout so the sweeper takes the try_lock
    // path through a session with an open transaction and aborts it.
    c.begin(false, IsolationLevel::SnapshotIsolation).unwrap();
    c.set_node_property(id, "k", PropertyValue::Int(99))
        .unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let err = c.commit().expect_err("idle transaction must be aborted");
    match err {
        graphsi_server::ClientError::Server { code, .. } => {
            assert_eq!(code, ErrorCode::IdleTimeout)
        }
        other => panic!("unexpected error: {other:?}"),
    }

    // The sweeper's try_lock probes joined the acquisition graph; with
    // the server's blocking edges alongside them it must still be a DAG.
    order::assert_acyclic();
    server.shutdown();
}
