//! Structured-mutation robustness harness over the two wire formats:
//! the WAL entry framing (`graphsi_wal::record`) and the server
//! protocol (`graphsi_server::protocol`).
//!
//! Every mutant of a well-formed input must produce a typed error or a
//! clean parse — never a panic, never an unbounded allocation. The
//! decoders return `Result`, so "typed error" is enforced by the type
//! system; what these tests add is driving the mutation space (torn
//! tails, bit flips, length-field lies, framing slips) through every
//! decode entry point at volume. `GRAPHSI_FUZZ_ITERS` scales the volume
//! (default 4000 per target; CI smoke keeps the default).

use std::io::Cursor;

use graphsi_check::fuzz::{fuzz_iterations, Mutator};
use graphsi_core::{IsolationLevel, PropertyValue};
use graphsi_server::protocol::FrameReader;
use graphsi_server::{Request, Response, WireNode, WireRow};
use graphsi_storage::pages::{page_crc32, Page, PageVerdict, PAGE_SIZE, PAGE_TRAILER_SIZE};
use graphsi_wal::record::encode_frame;
use graphsi_wal::{
    payload_kind, AbortRangeRecord, AbortRecord, CheckpointBeginRecord, CheckpointEndRecord,
    LogEntry, SegmentHeaderRecord,
};

// -----------------------------------------------------------------
// Seeds: well-formed encodings to mutate
// -----------------------------------------------------------------

fn request_seeds() -> Vec<Vec<u8>> {
    let props = vec![
        ("name".to_owned(), PropertyValue::String("ada".to_owned())),
        ("age".to_owned(), PropertyValue::Int(36)),
        ("score".to_owned(), PropertyValue::Float(0.5)),
        ("active".to_owned(), PropertyValue::Bool(true)),
    ];
    [
        Request::Ping,
        Request::Health,
        Request::Metrics,
        Request::Verify,
        Request::Begin {
            read_only: true,
            isolation: IsolationLevel::SnapshotIsolation,
        },
        Request::Commit,
        Request::Rollback,
        Request::CreateNode {
            labels: vec!["Person".to_owned(), "Employee".to_owned()],
            properties: props.clone(),
        },
        Request::GetNode { id: 42 },
        Request::SetNodeProperty {
            id: 7,
            key: "name".to_owned(),
            value: PropertyValue::String("grace".to_owned()),
        },
        Request::RemoveNodeProperty {
            id: 7,
            key: "name".to_owned(),
        },
        Request::DeleteNode { id: 9 },
        Request::CreateRelationship {
            source: 1,
            target: 2,
            rel_type: "KNOWS".to_owned(),
            properties: props.clone(),
        },
        Request::DeleteRelationship { id: 3 },
        Request::NodeProperty {
            id: 5,
            key: "age".to_owned(),
        },
        Request::LabelQuery {
            label: "Person".to_owned(),
            limit: 100,
            projection: vec!["name".to_owned(), "age".to_owned()],
        },
        Request::RangeQuery {
            key: "age".to_owned(),
            lo: Some(PropertyValue::Int(18)),
            hi: None,
            limit: 0,
            projection: vec!["name".to_owned()],
            order: 0,
        },
        Request::RangeQuery {
            key: "score".to_owned(),
            lo: None,
            hi: Some(PropertyValue::Int(500)),
            limit: 10,
            projection: vec![],
            order: 2,
        },
        Request::Sleep { ms: 10 },
    ]
    .iter()
    .map(Request::encode)
    .collect()
}

fn response_seeds() -> Vec<Vec<u8>> {
    let node = WireNode {
        id: 11,
        labels: vec!["Person".to_owned()],
        properties: vec![("name".to_owned(), PropertyValue::String("ada".to_owned()))],
    };
    let row = WireRow {
        node: 11,
        rel: Some(4),
        properties: vec![("age".to_owned(), PropertyValue::Int(36))],
    };
    [
        Response::Ok,
        Response::Pong,
        Response::Committed { commit_ts: 99 },
        Response::NodeId { id: 11 },
        Response::RelationshipId { id: 4 },
        Response::Node {
            node: Some(node.clone()),
        },
        Response::Node { node: None },
        Response::Value {
            value: Some(PropertyValue::Float(1.25)),
        },
        Response::Rows {
            rows: vec![row.clone(), row],
        },
        Response::Text {
            text: "server_requests_total 3\n".to_owned(),
        },
        Response::Error {
            code: graphsi_server::ErrorCode::Conflict,
            message: "write-write conflict".to_owned(),
        },
        Response::Overloaded {
            message: "worker pool queue full".to_owned(),
        },
    ]
    .iter()
    .map(Response::encode)
    .collect()
}

fn wal_seeds() -> Vec<Vec<u8>> {
    vec![
        encode_frame(1, b"hello wal"),
        encode_frame(2, &[]),
        encode_frame(u64::MAX, &vec![0xAB; 512]),
        // A stream of several entries back to back.
        {
            let mut s = Vec::new();
            for lsn in 1..=5u64 {
                s.extend_from_slice(&encode_frame(lsn, &lsn.to_le_bytes()));
            }
            s
        },
    ]
}

fn wal_payload_seeds() -> Vec<Vec<u8>> {
    vec![
        AbortRecord { commit_ts: 77 }.encode(),
        AbortRangeRecord {
            from_lsn: 10,
            to_lsn: 20,
        }
        .encode(),
        SegmentHeaderRecord {
            segment_seq: 3,
            base_lsn: 4097,
            epoch: 2,
        }
        .encode(),
        CheckpointBeginRecord {
            epoch: 5,
            begin_ts: 1_000,
        }
        .encode(),
        CheckpointEndRecord {
            epoch: 5,
            stable_ts: 1_000,
        }
        .encode(),
        b"\x01commit payload bytes".to_vec(),
    ]
}

// -----------------------------------------------------------------
// Unmutated seeds must round-trip (harness sanity)
// -----------------------------------------------------------------

#[test]
fn seeds_are_well_formed() {
    for bytes in request_seeds() {
        Request::decode(&bytes).expect("request seed must decode");
    }
    for bytes in response_seeds() {
        Response::decode(&bytes).expect("response seed must decode");
    }
    for bytes in wal_seeds() {
        let (entry, consumed) = LogEntry::decode(&bytes, 0)
            .expect("wal seed must decode")
            .expect("wal seed must be complete");
        assert!(consumed <= bytes.len());
        assert!(!entry.payload.is_empty() || consumed == bytes.len() || bytes.len() > consumed);
    }
    for bytes in wal_payload_seeds() {
        payload_kind(&bytes, 0).expect("payload seed must have a kind");
    }
}

// -----------------------------------------------------------------
// Mutated seeds must never panic
// -----------------------------------------------------------------

/// Drains a mutated WAL buffer the way recovery does: decode entries
/// from the front until a torn tail (`Ok(None)`), a typed corruption
/// error, or the buffer is exhausted.
fn drain_wal(buf: &[u8]) {
    let mut pos = 0usize;
    while pos < buf.len() {
        match LogEntry::decode(&buf[pos..], pos as u64) {
            Ok(Some((_, consumed))) => {
                assert!(consumed > 0, "decode must make progress");
                pos += consumed;
            }
            Ok(None) => break,
            Err(_) => break,
        }
    }
}

#[test]
fn wal_entry_decode_survives_mutation() {
    let seeds = wal_seeds();
    let mut mutator = Mutator::new(0x57414C45);
    for i in 0..fuzz_iterations() {
        let seed = &seeds[(i as usize) % seeds.len()];
        let mutant = mutator.mutate(seed);
        drain_wal(&mutant);
    }
}

#[test]
fn wal_typed_payload_decode_survives_mutation() {
    let seeds = wal_payload_seeds();
    let mut mutator = Mutator::new(0x41424F52);
    for i in 0..fuzz_iterations() {
        let seed = &seeds[(i as usize) % seeds.len()];
        let mutant = mutator.mutate(seed);
        let _ = payload_kind(&mutant, 7);
        let _ = AbortRecord::decode(&mutant, 7);
        let _ = AbortRangeRecord::decode(&mutant, 7);
        let _ = SegmentHeaderRecord::decode(&mutant, 7);
        let _ = CheckpointBeginRecord::decode(&mutant, 7);
        let _ = CheckpointEndRecord::decode(&mutant, 7);
    }
}

/// Feeds a mutated byte stream through the frame reader the way a
/// connection thread does, then decodes every extracted payload as both
/// a request and a response. Errors are fine; panics are not.
fn drain_frames(stream: &[u8]) {
    let mut reader = FrameReader::new();
    let mut cursor = Cursor::new(stream);
    for _ in 0..64 {
        match reader.poll_frame(&mut cursor) {
            Ok(Some(payload)) => {
                let _ = Request::decode(&payload);
                let _ = Response::decode(&payload);
            }
            // A `Cursor` never times out, so `None` cannot happen; EOF
            // and framing violations both surface as typed errors.
            Ok(None) | Err(_) => break,
        }
    }
}

#[test]
fn frame_reader_and_payload_decode_survive_mutation() {
    use graphsi_server::protocol::write_frame;
    let mut seeds = Vec::new();
    for payload in request_seeds().into_iter().chain(response_seeds()) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("framing a vec cannot fail");
        seeds.push(framed);
    }
    // A multi-frame stream, so truncation can land between frames.
    let mut stream = Vec::new();
    for s in seeds.iter().take(4) {
        stream.extend_from_slice(s);
    }
    seeds.push(stream);

    let mut mutator = Mutator::new(0x47535031);
    for i in 0..fuzz_iterations() {
        let seed = &seeds[(i as usize) % seeds.len()];
        let mutant = mutator.mutate(seed);
        drain_frames(&mutant);
    }
}

#[test]
fn bare_payload_decode_survives_mutation() {
    let seeds: Vec<Vec<u8>> = request_seeds()
        .into_iter()
        .chain(response_seeds())
        .collect();
    let mut mutator = Mutator::new(0xDEC0DE);
    for i in 0..fuzz_iterations() {
        let seed = &seeds[(i as usize) % seeds.len()];
        let mutant = mutator.mutate(seed);
        let _ = Request::decode(&mutant);
        let _ = Response::decode(&mutant);
    }
}

// -----------------------------------------------------------------
// Store-page trailers
// -----------------------------------------------------------------

/// Sealed store pages whose trailers the mutants will chew on: a fresh
/// page, a sealed empty page, and sealed pages with record-ish content.
fn sealed_page_seeds() -> Vec<Vec<u8>> {
    let mut seeds = vec![Page::zeroed().bytes().to_vec()];
    for (stamp, fill) in [(0u64, 0x00u8), (1, 0xAB), (u64::MAX, 0x5A)] {
        let mut page = Page::zeroed();
        for (i, b) in page.bytes_mut()[..PAGE_SIZE - PAGE_TRAILER_SIZE]
            .iter_mut()
            .enumerate()
        {
            *b = fill.wrapping_add(i as u8);
        }
        page.seal(stamp);
        seeds.push(page.bytes().to_vec());
    }
    seeds
}

#[test]
fn page_trailer_seeds_verify_clean() {
    let seeds = sealed_page_seeds();
    assert_eq!(Page::from_bytes(&seeds[0]).verify(), PageVerdict::AllZero);
    for bytes in &seeds[1..] {
        assert!(matches!(
            Page::from_bytes(bytes).verify(),
            PageVerdict::Valid { .. }
        ));
    }
}

/// Trailer decode and verification must classify every mutant of a
/// sealed page — short images, bit flips, trailer lies — as one of the
/// three verdicts without panicking, and a verdict of `Valid`/`AllZero`
/// must be *idempotent*: re-verifying the same bytes yields the same
/// verdict (no interior mutation, no hash-state dependence).
#[test]
fn page_trailer_decode_survives_mutation() {
    let seeds = sealed_page_seeds();
    let mut mutator = Mutator::new(0x50414745);
    for i in 0..fuzz_iterations() {
        let seed = &seeds[(i as usize) % seeds.len()];
        let mutant = mutator.mutate(seed);
        let page = Page::from_bytes(&mutant);
        let first = page.verify();
        assert_eq!(page.verify(), first, "verdicts must be deterministic");
        if let PageVerdict::Corrupt { expected, .. } = first {
            // The reported CRC must be the one actually computed over
            // the page image (everything before the CRC field), so
            // operators can trust the error text.
            assert_eq!(expected, page_crc32(&page.bytes()[..PAGE_SIZE - 4]));
        }
    }
}
