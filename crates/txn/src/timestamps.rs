//! The timestamp oracle: a monotone logical clock handing out start and
//! commit timestamps.
//!
//! Snapshot isolation "splits the atomicity of a transaction in two points"
//! (the paper, §1): all reads logically happen at the start timestamp, all
//! writes at the commit timestamp. Both are drawn from this single logical
//! clock, so a commit timestamp doubles as the transaction's serialisation
//! position.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::ids::Timestamp;

/// A monotone logical clock.
///
/// * `start timestamp` — the current clock value at transaction begin; the
///   transaction observes every version with `commit_ts <= start_ts`.
/// * `commit timestamp` — a freshly incremented value at commit, strictly
///   greater than every previously issued timestamp.
#[derive(Debug)]
pub struct TimestampOracle {
    clock: AtomicU64,
}

impl TimestampOracle {
    /// Creates an oracle starting at the bootstrap timestamp (0).
    pub fn new() -> Self {
        TimestampOracle {
            clock: AtomicU64::new(Timestamp::BOOTSTRAP.raw()),
        }
    }

    /// Creates an oracle resuming from `last_committed` (used by recovery:
    /// the next commit timestamp will be strictly greater).
    pub fn resume_from(last_committed: Timestamp) -> Self {
        TimestampOracle {
            clock: AtomicU64::new(last_committed.raw()),
        }
    }

    /// The timestamp a transaction beginning right now should use as its
    /// start timestamp: the most recent commit timestamp issued so far.
    pub fn start_timestamp(&self) -> Timestamp {
        Timestamp(self.clock.load(Ordering::SeqCst))
    }

    /// Issues a fresh commit timestamp, strictly greater than every
    /// previously issued timestamp.
    pub fn commit_timestamp(&self) -> Timestamp {
        Timestamp(self.clock.fetch_add(1, Ordering::SeqCst) + 1)
    }

    /// The most recent commit timestamp issued (equals the next start
    /// timestamp).
    pub fn current(&self) -> Timestamp {
        self.start_timestamp()
    }

    /// Advances the clock to at least `ts` (used by recovery when replaying
    /// a WAL whose records carry commit timestamps).
    pub fn advance_to(&self, ts: Timestamp) {
        self.clock.fetch_max(ts.raw(), Ordering::SeqCst);
    }
}

impl Default for TimestampOracle {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn start_does_not_advance_clock() {
        let oracle = TimestampOracle::new();
        assert_eq!(oracle.start_timestamp(), Timestamp(0));
        assert_eq!(oracle.start_timestamp(), Timestamp(0));
        assert_eq!(oracle.current(), Timestamp(0));
    }

    #[test]
    fn commit_timestamps_are_strictly_increasing() {
        let oracle = TimestampOracle::new();
        let a = oracle.commit_timestamp();
        let b = oracle.commit_timestamp();
        let c = oracle.commit_timestamp();
        assert!(a < b && b < c);
        assert_eq!(a, Timestamp(1));
    }

    #[test]
    fn start_after_commit_sees_that_commit() {
        let oracle = TimestampOracle::new();
        let commit = oracle.commit_timestamp();
        let start = oracle.start_timestamp();
        assert!(commit.visible_to(start));
    }

    #[test]
    fn start_before_commit_does_not_see_it() {
        let oracle = TimestampOracle::new();
        let start = oracle.start_timestamp();
        let commit = oracle.commit_timestamp();
        assert!(!commit.visible_to(start));
    }

    #[test]
    fn resume_and_advance() {
        let oracle = TimestampOracle::resume_from(Timestamp(100));
        assert_eq!(oracle.start_timestamp(), Timestamp(100));
        assert_eq!(oracle.commit_timestamp(), Timestamp(101));
        oracle.advance_to(Timestamp(500));
        assert_eq!(oracle.commit_timestamp(), Timestamp(501));
        // advance_to never goes backwards.
        oracle.advance_to(Timestamp(10));
        assert_eq!(oracle.start_timestamp(), Timestamp(501));
    }

    #[test]
    fn concurrent_commit_timestamps_are_unique() {
        let oracle = Arc::new(TimestampOracle::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let oracle = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                (0..1000)
                    .map(|_| oracle.commit_timestamp())
                    .collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for ts in h.join().unwrap() {
                assert!(seen.insert(ts), "duplicate commit timestamp {ts:?}");
            }
        }
        assert_eq!(seen.len(), 8000);
        assert_eq!(oracle.current(), Timestamp(8000));
    }
}
