//! Error type for the transaction substrate.

use std::fmt;

use crate::ids::TxnId;
use crate::locks::LockKey;

/// Errors raised by the transaction substrate (locking, conflict detection,
/// lifecycle management).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// A write-write conflict with a concurrent transaction was detected
    /// and this transaction must abort (the paper's first-updater-wins /
    /// first-committer-wins write rule).
    WriteWriteConflict {
        /// The lock key (entity) on which the conflict happened.
        key: LockKey,
        /// The conflicting transaction, if known.
        other: Option<TxnId>,
    },
    /// A lock could not be acquired before the configured timeout expired.
    LockTimeout {
        /// The lock key that timed out.
        key: LockKey,
        /// The transaction currently holding the lock, if known.
        holder: Option<TxnId>,
    },
    /// Blocking on a lock would create a wait-for cycle.
    Deadlock {
        /// The lock key on which the deadlock was detected.
        key: LockKey,
        /// The transactions forming the cycle (starting with the waiter).
        cycle: Vec<TxnId>,
    },
    /// An operation was attempted on a transaction that is not active
    /// (already committed, rolled back, or never registered).
    NotActive {
        /// The offending transaction.
        txn: TxnId,
    },
    /// A transaction tried to release or downgrade a lock it does not hold.
    LockNotHeld {
        /// The lock key.
        key: LockKey,
        /// The transaction attempting the release.
        txn: TxnId,
    },
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::WriteWriteConflict { key, other } => match other {
                Some(other) => {
                    write!(f, "write-write conflict on {key} with concurrent {other}")
                }
                None => write!(f, "write-write conflict on {key}"),
            },
            TxnError::LockTimeout { key, holder } => match holder {
                Some(holder) => write!(f, "timed out waiting for lock on {key} held by {holder}"),
                None => write!(f, "timed out waiting for lock on {key}"),
            },
            TxnError::Deadlock { key, cycle } => {
                write!(f, "deadlock detected while waiting for {key}: cycle ")?;
                for (i, t) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            TxnError::NotActive { txn } => write!(f, "{txn} is not active"),
            TxnError::LockNotHeld { key, txn } => {
                write!(f, "{txn} does not hold a lock on {key}")
            }
        }
    }
}

impl std::error::Error for TxnError {}

/// Result alias used throughout the transaction crate.
pub type Result<T> = std::result::Result<T, TxnError>;

impl TxnError {
    /// Returns `true` if the error means the transaction should be aborted
    /// and can be retried by the application (conflicts, deadlocks,
    /// timeouts).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            TxnError::WriteWriteConflict { .. }
                | TxnError::LockTimeout { .. }
                | TxnError::Deadlock { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_conflict() {
        let err = TxnError::WriteWriteConflict {
            key: LockKey::node(4),
            other: Some(TxnId(9)),
        };
        let s = err.to_string();
        assert!(s.contains("write-write conflict"));
        assert!(s.contains("txn-9"));
    }

    #[test]
    fn display_deadlock_cycle() {
        let err = TxnError::Deadlock {
            key: LockKey::node(1),
            cycle: vec![TxnId(1), TxnId(2), TxnId(1)],
        };
        assert!(err.to_string().contains("txn-1 -> txn-2 -> txn-1"));
    }

    #[test]
    fn retryability() {
        assert!(TxnError::WriteWriteConflict {
            key: LockKey::node(0),
            other: None
        }
        .is_retryable());
        assert!(TxnError::Deadlock {
            key: LockKey::node(0),
            cycle: vec![]
        }
        .is_retryable());
        assert!(TxnError::LockTimeout {
            key: LockKey::node(0),
            holder: None
        }
        .is_retryable());
        assert!(!TxnError::NotActive { txn: TxnId(1) }.is_retryable());
        assert!(!TxnError::LockNotHeld {
            key: LockKey::node(0),
            txn: TxnId(1)
        }
        .is_retryable());
    }
}
