//! Wait-for-graph based deadlock detection.
//!
//! Read-committed mode keeps Neo4j's blocking lock acquisition (short read
//! locks, long write locks), so two transactions can block on each other.
//! Before a transaction starts waiting, the lock manager records a
//! *wait-for* edge from the waiter to every current holder and checks
//! whether that would close a cycle; if so the acquisition fails
//! immediately with a [`crate::error::TxnError::Deadlock`] instead of
//! hanging until the timeout.

use std::collections::{HashMap, HashSet};

use crate::ids::TxnId;

/// A directed wait-for graph: an edge `a -> b` means transaction `a` is
/// waiting for a lock held by transaction `b`.
#[derive(Debug, Default)]
pub struct WaitForGraph {
    edges: HashMap<TxnId, HashSet<TxnId>>,
}

impl WaitForGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `waiter` now waits for every transaction in `holders`
    /// (replacing any previous wait edges of `waiter` — a transaction waits
    /// for at most one lock at a time).
    pub fn set_waiting(&mut self, waiter: TxnId, holders: impl IntoIterator<Item = TxnId>) {
        let holders: HashSet<TxnId> = holders.into_iter().filter(|&h| h != waiter).collect();
        if holders.is_empty() {
            self.edges.remove(&waiter);
        } else {
            self.edges.insert(waiter, holders);
        }
    }

    /// Removes `waiter`'s outgoing edges (it stopped waiting).
    pub fn clear_waiting(&mut self, waiter: TxnId) {
        self.edges.remove(&waiter);
    }

    /// Removes a transaction entirely (it finished): both its outgoing
    /// edges and any edges pointing at it.
    pub fn remove_transaction(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        for holders in self.edges.values_mut() {
            holders.remove(&txn);
        }
        self.edges.retain(|_, holders| !holders.is_empty());
    }

    /// Looks for a cycle reachable from `start`. Returns the cycle as a
    /// path starting and ending with the same transaction, or `None`.
    pub fn find_cycle_from(&self, start: TxnId) -> Option<Vec<TxnId>> {
        let mut path = Vec::new();
        let mut on_path = HashSet::new();
        let mut visited = HashSet::new();
        self.dfs(start, &mut path, &mut on_path, &mut visited)
    }

    fn dfs(
        &self,
        current: TxnId,
        path: &mut Vec<TxnId>,
        on_path: &mut HashSet<TxnId>,
        visited: &mut HashSet<TxnId>,
    ) -> Option<Vec<TxnId>> {
        if on_path.contains(&current) {
            // Found a cycle: slice the path from the first occurrence.
            let pos = path.iter().position(|&t| t == current).unwrap_or(0);
            let mut cycle = path[pos..].to_vec();
            cycle.push(current);
            return Some(cycle);
        }
        if !visited.insert(current) {
            return None;
        }
        path.push(current);
        on_path.insert(current);
        if let Some(holders) = self.edges.get(&current) {
            for &next in holders {
                if let Some(cycle) = self.dfs(next, path, on_path, visited) {
                    return Some(cycle);
                }
            }
        }
        path.pop();
        on_path.remove(&current);
        None
    }

    /// Number of transactions currently waiting.
    pub fn waiting_count(&self) -> usize {
        self.edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cycle_in_simple_chain() {
        let mut g = WaitForGraph::new();
        g.set_waiting(TxnId(1), [TxnId(2)]);
        g.set_waiting(TxnId(2), [TxnId(3)]);
        assert!(g.find_cycle_from(TxnId(1)).is_none());
        assert_eq!(g.waiting_count(), 2);
    }

    #[test]
    fn two_party_cycle_is_detected() {
        let mut g = WaitForGraph::new();
        g.set_waiting(TxnId(1), [TxnId(2)]);
        g.set_waiting(TxnId(2), [TxnId(1)]);
        let cycle = g.find_cycle_from(TxnId(1)).expect("cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.contains(&TxnId(1)) && cycle.contains(&TxnId(2)));
    }

    #[test]
    fn three_party_cycle_is_detected() {
        let mut g = WaitForGraph::new();
        g.set_waiting(TxnId(1), [TxnId(2)]);
        g.set_waiting(TxnId(2), [TxnId(3)]);
        g.set_waiting(TxnId(3), [TxnId(1)]);
        assert!(g.find_cycle_from(TxnId(1)).is_some());
        assert!(g.find_cycle_from(TxnId(2)).is_some());
        assert!(g.find_cycle_from(TxnId(3)).is_some());
    }

    #[test]
    fn cycle_not_reachable_from_unrelated_txn() {
        let mut g = WaitForGraph::new();
        g.set_waiting(TxnId(1), [TxnId(2)]);
        g.set_waiting(TxnId(2), [TxnId(1)]);
        g.set_waiting(TxnId(9), [TxnId(10)]);
        assert!(g.find_cycle_from(TxnId(9)).is_none());
    }

    #[test]
    fn clearing_wait_breaks_cycle() {
        let mut g = WaitForGraph::new();
        g.set_waiting(TxnId(1), [TxnId(2)]);
        g.set_waiting(TxnId(2), [TxnId(1)]);
        g.clear_waiting(TxnId(2));
        assert!(g.find_cycle_from(TxnId(1)).is_none());
    }

    #[test]
    fn removing_transaction_prunes_edges() {
        let mut g = WaitForGraph::new();
        g.set_waiting(TxnId(1), [TxnId(2), TxnId(3)]);
        g.set_waiting(TxnId(2), [TxnId(3)]);
        g.remove_transaction(TxnId(3));
        assert_eq!(g.waiting_count(), 1);
        assert!(g.find_cycle_from(TxnId(1)).is_none());
    }

    #[test]
    fn self_edges_are_ignored() {
        let mut g = WaitForGraph::new();
        g.set_waiting(TxnId(1), [TxnId(1)]);
        assert_eq!(g.waiting_count(), 0);
        assert!(g.find_cycle_from(TxnId(1)).is_none());
    }

    #[test]
    fn waiting_for_multiple_holders() {
        let mut g = WaitForGraph::new();
        g.set_waiting(TxnId(1), [TxnId(2), TxnId(3)]);
        g.set_waiting(TxnId(3), [TxnId(1)]);
        let cycle = g.find_cycle_from(TxnId(1)).expect("cycle through 3");
        assert!(cycle.contains(&TxnId(3)));
    }
}
