//! The active-transaction table.
//!
//! Garbage collection needs to know the start timestamp of the **oldest
//! active transaction**: versions older than the newest version that this
//! transaction could still read "will never be read by any active
//! transaction" (the paper, §3) and can be reclaimed. The table also powers
//! first-updater-wins conflict detection, which only applies to
//! *concurrent* (still active or overlapping) transactions.

use std::collections::BTreeMap;
use std::collections::HashMap;

use parking_lot::RwLock;

use crate::error::{Result, TxnError};
use crate::ids::{Timestamp, TxnId};

#[derive(Default)]
struct ActiveInner {
    /// start timestamp per active transaction.
    by_txn: HashMap<TxnId, Timestamp>,
    /// Number of active transactions per start timestamp (multiple
    /// transactions may share a start timestamp).
    by_start: BTreeMap<Timestamp, usize>,
}

/// Tracks which transactions are currently active and their start
/// timestamps.
pub struct ActiveTransactionTable {
    inner: RwLock<ActiveInner>,
}

impl Default for ActiveTransactionTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ActiveTransactionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ActiveTransactionTable {
            // Lock-order rank: see the README's lock-rank map.
            inner: RwLock::with_rank(ActiveInner::default(), 230, "txn.active"),
        }
    }

    /// Registers a transaction as active with the given start timestamp.
    pub fn register(&self, txn: TxnId, start_ts: Timestamp) {
        let mut inner = self.inner.write();
        if inner.by_txn.insert(txn, start_ts).is_none() {
            *inner.by_start.entry(start_ts).or_insert(0) += 1;
        }
    }

    /// Removes a transaction from the table (on commit or rollback).
    pub fn deregister(&self, txn: TxnId) -> Result<()> {
        let mut inner = self.inner.write();
        let start_ts = inner
            .by_txn
            .remove(&txn)
            .ok_or(TxnError::NotActive { txn })?;
        if let Some(count) = inner.by_start.get_mut(&start_ts) {
            *count -= 1;
            if *count == 0 {
                inner.by_start.remove(&start_ts);
            }
        }
        Ok(())
    }

    /// Returns `true` if the transaction is currently registered.
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.inner.read().by_txn.contains_key(&txn)
    }

    /// The start timestamp of `txn`, if it is active.
    pub fn start_timestamp(&self, txn: TxnId) -> Option<Timestamp> {
        self.inner.read().by_txn.get(&txn).copied()
    }

    /// The start timestamp of the oldest active transaction, if any.
    pub fn oldest_active_start(&self) -> Option<Timestamp> {
        self.inner.read().by_start.keys().next().copied()
    }

    /// The garbage-collection watermark: versions with a commit timestamp
    /// strictly below this can only be read if they are the newest
    /// committed version of their entity. With no active transaction the
    /// watermark is `current_ts` (everything up to the latest commit is
    /// safe to consider).
    pub fn gc_watermark(&self, current_ts: Timestamp) -> Timestamp {
        self.oldest_active_start().unwrap_or(current_ts)
    }

    /// Number of active transactions.
    pub fn len(&self) -> usize {
        self.inner.read().by_txn.len()
    }

    /// Returns `true` if no transaction is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all active transaction IDs (unordered).
    pub fn active_ids(&self) -> Vec<TxnId> {
        self.inner.read().by_txn.keys().copied().collect()
    }
}

impl std::fmt::Debug for ActiveTransactionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTransactionTable")
            .field("active", &self.len())
            .field("oldest_start", &self.oldest_active_start())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_deregister() {
        let table = ActiveTransactionTable::new();
        assert!(table.is_empty());
        table.register(TxnId(1), Timestamp(10));
        table.register(TxnId(2), Timestamp(5));
        assert_eq!(table.len(), 2);
        assert!(table.is_active(TxnId(1)));
        assert_eq!(table.start_timestamp(TxnId(2)), Some(Timestamp(5)));
        table.deregister(TxnId(2)).unwrap();
        assert!(!table.is_active(TxnId(2)));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn deregister_unknown_txn_errors() {
        let table = ActiveTransactionTable::new();
        assert_eq!(
            table.deregister(TxnId(9)),
            Err(TxnError::NotActive { txn: TxnId(9) })
        );
    }

    #[test]
    fn oldest_active_tracks_minimum() {
        let table = ActiveTransactionTable::new();
        assert_eq!(table.oldest_active_start(), None);
        table.register(TxnId(1), Timestamp(10));
        table.register(TxnId(2), Timestamp(5));
        table.register(TxnId(3), Timestamp(20));
        assert_eq!(table.oldest_active_start(), Some(Timestamp(5)));
        table.deregister(TxnId(2)).unwrap();
        assert_eq!(table.oldest_active_start(), Some(Timestamp(10)));
        table.deregister(TxnId(1)).unwrap();
        table.deregister(TxnId(3)).unwrap();
        assert_eq!(table.oldest_active_start(), None);
    }

    #[test]
    fn shared_start_timestamps_are_counted() {
        let table = ActiveTransactionTable::new();
        table.register(TxnId(1), Timestamp(7));
        table.register(TxnId(2), Timestamp(7));
        table.deregister(TxnId(1)).unwrap();
        // The other transaction still pins timestamp 7.
        assert_eq!(table.oldest_active_start(), Some(Timestamp(7)));
        table.deregister(TxnId(2)).unwrap();
        assert_eq!(table.oldest_active_start(), None);
    }

    #[test]
    fn double_register_is_idempotent() {
        let table = ActiveTransactionTable::new();
        table.register(TxnId(1), Timestamp(3));
        table.register(TxnId(1), Timestamp(3));
        assert_eq!(table.len(), 1);
        table.deregister(TxnId(1)).unwrap();
        assert!(table.is_empty());
        assert_eq!(table.oldest_active_start(), None);
    }

    #[test]
    fn gc_watermark_with_and_without_active_txns() {
        let table = ActiveTransactionTable::new();
        assert_eq!(table.gc_watermark(Timestamp(42)), Timestamp(42));
        table.register(TxnId(1), Timestamp(10));
        assert_eq!(table.gc_watermark(Timestamp(42)), Timestamp(10));
    }

    #[test]
    fn active_ids_lists_everything() {
        let table = ActiveTransactionTable::new();
        table.register(TxnId(1), Timestamp(1));
        table.register(TxnId(2), Timestamp(2));
        let mut ids = table.active_ids();
        ids.sort();
        assert_eq!(ids, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn paper_example_watermark() {
        // "if the oldest transaction has start timestamp 100 and a data item
        // has versions with commit timestamps 40, 56 and 90, the first two
        // will never be read by any active transaction."
        let table = ActiveTransactionTable::new();
        table.register(TxnId(1), Timestamp(100));
        let watermark = table.gc_watermark(Timestamp(120));
        let versions = [Timestamp(40), Timestamp(56), Timestamp(90)];
        // The newest version visible at the watermark must be kept (90);
        // everything older is reclaimable.
        let newest_visible = versions
            .iter()
            .filter(|v| v.visible_to(watermark))
            .max()
            .copied()
            .unwrap();
        assert_eq!(newest_visible, Timestamp(90));
        let reclaimable: Vec<_> = versions.iter().filter(|&&v| v < newest_visible).collect();
        assert_eq!(reclaimable.len(), 2);
    }
}
