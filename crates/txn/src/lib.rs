//! # graphsi-txn
//!
//! The transaction substrate of the graphsi workspace: logical timestamps,
//! the active-transaction table, the lock manager (short read locks / long
//! write locks, with deadlock detection) and the write-write conflict
//! strategies described in *"Snapshot Isolation for Neo4j"* (EDBT 2016).
//!
//! This crate is isolation-level agnostic: the read-committed baseline uses
//! blocking shared/exclusive locks, while snapshot isolation uses only the
//! non-blocking exclusive ("long write") locks for first-updater-wins
//! conflict detection plus the timestamp oracle for visibility. The policy
//! lives in `graphsi-core`; the mechanisms live here.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod active;
pub mod conflict;
pub mod deadlock;
pub mod error;
pub mod ids;
pub mod locks;
pub mod timestamps;

pub use active::ActiveTransactionTable;
pub use conflict::{check_at_commit, check_at_update, ConflictStrategy, UpdateCheck};
pub use error::{Result, TxnError};
pub use ids::{Timestamp, TxnId};
pub use locks::{LockKey, LockKind, LockManager, LockMode, LockStatsSnapshot};
pub use timestamps::TimestampOracle;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn begin_commit_cycle_through_public_api() {
        let oracle = TimestampOracle::new();
        let active = ActiveTransactionTable::new();
        let locks = LockManager::with_default_timeout();

        let txn = TxnId(1);
        let start = oracle.start_timestamp();
        active.register(txn, start);

        locks.try_exclusive(LockKey::node(7), txn).unwrap();
        let commit = oracle.commit_timestamp();
        assert!(commit > start);

        locks.release_all(txn);
        active.deregister(txn).unwrap();
        assert!(active.is_empty());
    }
}
