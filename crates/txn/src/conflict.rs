//! Write-write conflict handling strategies.
//!
//! The paper (§3): *"There are two ways to deal with write-write conflicts,
//! first-updater-wins that rollbacks the transaction that is not the first
//! to update the data item and first-committer-wins that rollbacks the
//! conflicting transaction that does not commit first."* The implementation
//! described in §4 uses **first-updater-wins**, by repurposing the long
//! write locks. Both strategies are implemented here so experiment E4 can
//! compare them.

use crate::error::{Result, TxnError};
use crate::ids::{Timestamp, TxnId};
use crate::locks::{LockKey, LockManager};

/// How write-write conflicts between concurrent transactions are resolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ConflictStrategy {
    /// The transaction that touches the data item *second* aborts at update
    /// time. Detected through the long write locks: if another active
    /// transaction already holds the lock, the requester aborts.
    /// This is what the paper implements.
    #[default]
    FirstUpdaterWins,
    /// Conflicts are tolerated until commit; at commit time a transaction
    /// aborts if a concurrent transaction already committed a newer version
    /// of something in its write set.
    FirstCommitterWins,
}

impl ConflictStrategy {
    /// Human readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ConflictStrategy::FirstUpdaterWins => "first-updater-wins",
            ConflictStrategy::FirstCommitterWins => "first-committer-wins",
        }
    }
}

impl std::fmt::Display for ConflictStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of checking a single write for conflicts at *update* time.
#[derive(Debug, PartialEq, Eq)]
pub enum UpdateCheck {
    /// The write may proceed.
    Proceed,
    /// The transaction must abort (it lost a first-updater race or the item
    /// was already overwritten by a newer committed version).
    Abort(TxnError),
}

/// Applies the *update-time* part of a conflict strategy for one write.
///
/// * Under first-updater-wins the write lock is taken non-blocking: failing
///   to get it means a concurrent writer got there first → abort now.
/// * Under first-committer-wins the lock is also taken (to serialise
///   installation) but a conflict simply means waiting is allowed; the real
///   check happens at commit time via [`check_at_commit`]. To keep the
///   experiment comparable we still take the lock non-blocking but do *not*
///   abort if the holder committed before us — instead the commit-time
///   check decides.
///
/// In both cases a write is rejected if a committed version newer than the
/// writer's start timestamp already exists (`newest_committed` >
/// `start_ts`) — the snapshot the writer saw is stale and under SI it can
/// never win.
pub fn check_at_update(
    strategy: ConflictStrategy,
    locks: &LockManager,
    key: LockKey,
    txn: TxnId,
    start_ts: Timestamp,
    newest_committed: Option<Timestamp>,
) -> UpdateCheck {
    if let Some(committed) = newest_committed {
        if !committed.visible_to(start_ts) {
            // A concurrent transaction already committed a newer version.
            return UpdateCheck::Abort(TxnError::WriteWriteConflict { key, other: None });
        }
    }
    match strategy {
        ConflictStrategy::FirstUpdaterWins => match locks.try_exclusive(key, txn) {
            Ok(()) => UpdateCheck::Proceed,
            Err(e) => UpdateCheck::Abort(e),
        },
        ConflictStrategy::FirstCommitterWins => {
            // Take the lock if free (helps installation ordering), but a
            // conflict is not fatal at update time.
            let _ = locks.try_exclusive(key, txn);
            UpdateCheck::Proceed
        }
    }
}

/// Applies the *commit-time* part of a conflict strategy for one write-set
/// entry: under first-committer-wins a transaction aborts if a version
/// newer than its start timestamp was committed while it was running.
/// Under first-updater-wins this can never happen (the lock was held since
/// update time), so the check is a no-op that always succeeds.
pub fn check_at_commit(
    strategy: ConflictStrategy,
    key: LockKey,
    start_ts: Timestamp,
    newest_committed: Option<Timestamp>,
) -> Result<()> {
    match strategy {
        ConflictStrategy::FirstUpdaterWins => Ok(()),
        ConflictStrategy::FirstCommitterWins => match newest_committed {
            Some(committed) if !committed.visible_to(start_ts) => {
                Err(TxnError::WriteWriteConflict { key, other: None })
            }
            _ => Ok(()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);

    fn locks() -> LockManager {
        LockManager::new(Duration::from_millis(50))
    }

    #[test]
    fn first_updater_wins_aborts_second_updater() {
        let locks = locks();
        let key = LockKey::node(1);
        let s = ConflictStrategy::FirstUpdaterWins;
        assert_eq!(
            check_at_update(s, &locks, key, T1, Timestamp(10), None),
            UpdateCheck::Proceed
        );
        match check_at_update(s, &locks, key, T2, Timestamp(10), None) {
            UpdateCheck::Abort(TxnError::WriteWriteConflict { other, .. }) => {
                assert_eq!(other, Some(T1));
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn stale_snapshot_aborts_regardless_of_strategy() {
        let locks = locks();
        let key = LockKey::node(2);
        for s in [
            ConflictStrategy::FirstUpdaterWins,
            ConflictStrategy::FirstCommitterWins,
        ] {
            let outcome = check_at_update(s, &locks, key, T1, Timestamp(5), Some(Timestamp(9)));
            assert!(matches!(outcome, UpdateCheck::Abort(_)), "strategy {s}");
        }
    }

    #[test]
    fn committed_version_within_snapshot_is_fine() {
        let locks = locks();
        let key = LockKey::node(3);
        let outcome = check_at_update(
            ConflictStrategy::FirstUpdaterWins,
            &locks,
            key,
            T1,
            Timestamp(10),
            Some(Timestamp(10)),
        );
        assert_eq!(outcome, UpdateCheck::Proceed);
    }

    #[test]
    fn first_committer_wins_defers_to_commit_time() {
        let locks = locks();
        let key = LockKey::node(4);
        let s = ConflictStrategy::FirstCommitterWins;
        assert_eq!(
            check_at_update(s, &locks, key, T1, Timestamp(10), None),
            UpdateCheck::Proceed
        );
        // The second updater is NOT aborted at update time...
        assert_eq!(
            check_at_update(s, &locks, key, T2, Timestamp(10), None),
            UpdateCheck::Proceed
        );
        // ...but at commit time whoever sees a newer committed version loses.
        assert!(check_at_commit(s, key, Timestamp(10), Some(Timestamp(11))).is_err());
        assert!(check_at_commit(s, key, Timestamp(10), Some(Timestamp(9))).is_ok());
        assert!(check_at_commit(s, key, Timestamp(10), None).is_ok());
    }

    #[test]
    fn first_updater_wins_commit_check_is_noop() {
        assert!(check_at_commit(
            ConflictStrategy::FirstUpdaterWins,
            LockKey::node(5),
            Timestamp(1),
            Some(Timestamp(100))
        )
        .is_ok());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(
            ConflictStrategy::FirstUpdaterWins.name(),
            "first-updater-wins"
        );
        assert_eq!(
            ConflictStrategy::FirstCommitterWins.to_string(),
            "first-committer-wins"
        );
        assert_eq!(
            ConflictStrategy::default(),
            ConflictStrategy::FirstUpdaterWins
        );
    }
}
