//! The lock manager.
//!
//! Neo4j's read-committed implementation uses "a traditional locking
//! mechanism with short read locks and long write locks" (the paper, §4).
//! The snapshot-isolation implementation *removes the short read locks*
//! (reads go to the versioned object cache instead) and *keeps the long
//! write locks*, repurposing them to detect write-write conflicts with a
//! first-updater-wins strategy.
//!
//! The manager therefore supports both acquisition styles:
//!
//! * **blocking** acquisition with deadlock detection and timeouts — used by
//!   the read-committed baseline for both short read locks and long write
//!   locks;
//! * **non-blocking** (`try_exclusive`) acquisition — used by snapshot
//!   isolation: if another active transaction already holds the write lock,
//!   the caller loses the first-updater race and aborts immediately.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::deadlock::WaitForGraph;
use crate::error::{Result, TxnError};
use crate::ids::TxnId;

/// The kind of entity a lock protects.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum LockKind {
    /// A node.
    Node,
    /// A relationship.
    Relationship,
    /// An index/schema entry (label or property token).
    Schema,
}

/// Identifies one lockable entity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LockKey {
    /// The entity kind.
    pub kind: LockKind,
    /// The entity ID within its kind.
    pub id: u64,
}

impl LockKey {
    /// Lock key for a node.
    pub const fn node(id: u64) -> Self {
        LockKey {
            kind: LockKind::Node,
            id,
        }
    }

    /// Lock key for a relationship.
    pub const fn relationship(id: u64) -> Self {
        LockKey {
            kind: LockKind::Relationship,
            id,
        }
    }

    /// Lock key for a schema/index entry.
    pub const fn schema(id: u64) -> Self {
        LockKey {
            kind: LockKind::Schema,
            id,
        }
    }
}

impl fmt::Display for LockKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LockKind::Node => write!(f, "node({})", self.id),
            LockKind::Relationship => write!(f, "rel({})", self.id),
            LockKind::Schema => write!(f, "schema({})", self.id),
        }
    }
}

/// The two lock modes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared (read) lock — multiple holders allowed.
    Shared,
    /// Exclusive (write) lock — single holder.
    Exclusive,
}

#[derive(Default, Debug)]
struct LockState {
    shared: HashSet<TxnId>,
    exclusive: Option<TxnId>,
}

impl LockState {
    fn is_free(&self) -> bool {
        self.shared.is_empty() && self.exclusive.is_none()
    }

    fn can_grant_shared(&self, txn: TxnId) -> bool {
        match self.exclusive {
            None => true,
            Some(holder) => holder == txn,
        }
    }

    fn can_grant_exclusive(&self, txn: TxnId) -> bool {
        let exclusive_ok = match self.exclusive {
            None => true,
            Some(holder) => holder == txn,
        };
        exclusive_ok && self.shared.iter().all(|&t| t == txn)
    }

    fn blockers(&self, txn: TxnId) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self.shared.iter().copied().filter(|&t| t != txn).collect();
        if let Some(holder) = self.exclusive {
            if holder != txn && !out.contains(&holder) {
                out.push(holder);
            }
        }
        out
    }
}

/// Counters describing lock-manager behaviour, used by experiment E8
/// (reader/writer blocking under RC vs SI).
#[derive(Debug, Default)]
pub struct LockStats {
    shared_acquired: AtomicU64,
    exclusive_acquired: AtomicU64,
    immediate_conflicts: AtomicU64,
    waits: AtomicU64,
    deadlocks: AtomicU64,
    timeouts: AtomicU64,
}

/// A point-in-time snapshot of [`LockStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStatsSnapshot {
    /// Shared locks granted.
    pub shared_acquired: u64,
    /// Exclusive locks granted.
    pub exclusive_acquired: u64,
    /// Non-blocking acquisitions that failed (first-updater-wins losses).
    pub immediate_conflicts: u64,
    /// Times a transaction had to block waiting for a lock.
    pub waits: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
    /// Lock waits that timed out.
    pub timeouts: u64,
}

/// The lock manager.
pub struct LockManager {
    table: Mutex<HashMap<LockKey, LockState>>,
    held: Mutex<HashMap<TxnId, HashSet<LockKey>>>,
    waits: Mutex<WaitForGraph>,
    cond: Condvar,
    default_timeout: Duration,
    stats: LockStats,
}

impl LockManager {
    /// Creates a lock manager with the given blocking-acquisition timeout.
    pub fn new(default_timeout: Duration) -> Self {
        LockManager {
            // Lock-order ranks: see the README's lock-rank map. `acquire`
            // consults the wait-for graph while holding the table, so the
            // graph ranks directly above it.
            table: Mutex::with_rank(HashMap::new(), 210, "txn.lock_table"),
            held: Mutex::with_rank(HashMap::new(), 220, "txn.held_locks"),
            waits: Mutex::with_rank(WaitForGraph::new(), 215, "txn.wait_graph"),
            cond: Condvar::new(),
            default_timeout,
            stats: LockStats::default(),
        }
    }

    /// Creates a lock manager with a one-second timeout.
    pub fn with_default_timeout() -> Self {
        Self::new(Duration::from_secs(1))
    }

    /// Non-blocking exclusive acquisition: the snapshot-isolation write
    /// lock. Fails immediately with
    /// [`TxnError::WriteWriteConflict`] if another transaction holds any
    /// lock on `key` — the caller lost the first-updater race.
    pub fn try_exclusive(&self, key: LockKey, txn: TxnId) -> Result<()> {
        let mut table = self.table.lock();
        let state = table.entry(key).or_default();
        if state.can_grant_exclusive(txn) {
            state.exclusive = Some(txn);
            drop(table);
            self.remember(key, txn);
            self.stats
                .exclusive_acquired
                .fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            let other = state.blockers(txn).first().copied();
            self.stats
                .immediate_conflicts
                .fetch_add(1, Ordering::Relaxed);
            Err(TxnError::WriteWriteConflict { key, other })
        }
    }

    /// Blocking acquisition with deadlock detection (used by the
    /// read-committed baseline).
    pub fn acquire(&self, key: LockKey, mode: LockMode, txn: TxnId) -> Result<()> {
        self.acquire_with_timeout(key, mode, txn, self.default_timeout)
    }

    /// Blocking acquisition with an explicit timeout.
    pub fn acquire_with_timeout(
        &self,
        key: LockKey,
        mode: LockMode,
        txn: TxnId,
        timeout: Duration,
    ) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let mut table = self.table.lock();
        let mut waited = false;
        loop {
            let state = table.entry(key).or_default();
            let grantable = match mode {
                LockMode::Shared => state.can_grant_shared(txn),
                LockMode::Exclusive => state.can_grant_exclusive(txn),
            };
            if grantable {
                match mode {
                    LockMode::Shared => {
                        state.shared.insert(txn);
                        self.stats.shared_acquired.fetch_add(1, Ordering::Relaxed);
                    }
                    LockMode::Exclusive => {
                        state.exclusive = Some(txn);
                        self.stats
                            .exclusive_acquired
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                drop(table);
                if waited {
                    self.waits.lock().clear_waiting(txn);
                }
                self.remember(key, txn);
                return Ok(());
            }

            // Record the wait-for edges and check for a deadlock before
            // blocking.
            let blockers = state.blockers(txn);
            {
                let mut graph = self.waits.lock();
                graph.set_waiting(txn, blockers.iter().copied());
                if let Some(cycle) = graph.find_cycle_from(txn) {
                    graph.clear_waiting(txn);
                    self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                    return Err(TxnError::Deadlock { key, cycle });
                }
            }
            if !waited {
                self.stats.waits.fetch_add(1, Ordering::Relaxed);
                waited = true;
            }

            let now = Instant::now();
            if now >= deadline {
                self.waits.lock().clear_waiting(txn);
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(TxnError::LockTimeout {
                    key,
                    holder: blockers.first().copied(),
                });
            }
            let wait_result = self.cond.wait_until(&mut table, deadline);
            if wait_result.timed_out() {
                // Loop once more: the lock may have become free exactly at
                // the deadline; the next iteration will either grant or
                // report the timeout.
            }
        }
    }

    /// Releases whatever lock `txn` holds on `key`.
    pub fn release(&self, key: LockKey, txn: TxnId) -> Result<()> {
        let mut table = self.table.lock();
        let Some(state) = table.get_mut(&key) else {
            return Err(TxnError::LockNotHeld { key, txn });
        };
        let held_shared = state.shared.remove(&txn);
        let held_exclusive = state.exclusive == Some(txn);
        if held_exclusive {
            state.exclusive = None;
        }
        if !held_shared && !held_exclusive {
            return Err(TxnError::LockNotHeld { key, txn });
        }
        if state.is_free() {
            table.remove(&key);
        }
        drop(table);
        let mut held = self.held.lock();
        if let Some(keys) = held.get_mut(&txn) {
            keys.remove(&key);
            if keys.is_empty() {
                held.remove(&txn);
            }
        }
        drop(held);
        self.cond.notify_all();
        Ok(())
    }

    /// Releases every lock held by `txn` (commit or rollback) and removes
    /// it from the wait-for graph. Returns the released keys.
    pub fn release_all(&self, txn: TxnId) -> Vec<LockKey> {
        let keys: Vec<LockKey> = {
            let mut held = self.held.lock();
            held.remove(&txn)
                .map(|s| s.into_iter().collect())
                .unwrap_or_default()
        };
        {
            let mut table = self.table.lock();
            for key in &keys {
                if let Some(state) = table.get_mut(key) {
                    state.shared.remove(&txn);
                    if state.exclusive == Some(txn) {
                        state.exclusive = None;
                    }
                    if state.is_free() {
                        table.remove(key);
                    }
                }
            }
        }
        self.waits.lock().remove_transaction(txn);
        self.cond.notify_all();
        keys
    }

    /// Returns the current holders of `key`: (shared holders, exclusive
    /// holder).
    pub fn holders(&self, key: LockKey) -> (Vec<TxnId>, Option<TxnId>) {
        let table = self.table.lock();
        match table.get(&key) {
            Some(state) => {
                let mut shared: Vec<TxnId> = state.shared.iter().copied().collect();
                shared.sort();
                (shared, state.exclusive)
            }
            None => (Vec::new(), None),
        }
    }

    /// Returns `true` if `txn` holds an exclusive lock on `key`.
    pub fn holds_exclusive(&self, key: LockKey, txn: TxnId) -> bool {
        self.table
            .lock()
            .get(&key)
            .is_some_and(|s| s.exclusive == Some(txn))
    }

    /// Keys currently locked by `txn`.
    pub fn locks_of(&self, txn: TxnId) -> Vec<LockKey> {
        let mut keys: Vec<LockKey> = self
            .held
            .lock()
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        keys.sort();
        keys
    }

    /// Number of distinct keys currently locked.
    pub fn locked_key_count(&self) -> usize {
        self.table.lock().len()
    }

    /// Snapshot of the lock-manager counters.
    pub fn stats(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            shared_acquired: self.stats.shared_acquired.load(Ordering::Relaxed),
            exclusive_acquired: self.stats.exclusive_acquired.load(Ordering::Relaxed),
            immediate_conflicts: self.stats.immediate_conflicts.load(Ordering::Relaxed),
            waits: self.stats.waits.load(Ordering::Relaxed),
            deadlocks: self.stats.deadlocks.load(Ordering::Relaxed),
            timeouts: self.stats.timeouts.load(Ordering::Relaxed),
        }
    }

    fn remember(&self, key: LockKey, txn: TxnId) {
        self.held.lock().entry(txn).or_default().insert(key);
    }
}

impl Default for LockManager {
    fn default() -> Self {
        Self::with_default_timeout()
    }
}

impl fmt::Debug for LockManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockManager")
            .field("locked_keys", &self.locked_key_count())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);
    const T3: TxnId = TxnId(3);

    #[test]
    fn try_exclusive_grants_and_conflicts() {
        let locks = LockManager::with_default_timeout();
        let key = LockKey::node(1);
        locks.try_exclusive(key, T1).unwrap();
        // Re-entrant for the same transaction.
        locks.try_exclusive(key, T1).unwrap();
        // Another transaction loses the first-updater race immediately.
        let err = locks.try_exclusive(key, T2).unwrap_err();
        assert_eq!(
            err,
            TxnError::WriteWriteConflict {
                key,
                other: Some(T1)
            }
        );
        assert!(locks.holds_exclusive(key, T1));
        assert!(!locks.holds_exclusive(key, T2));
    }

    #[test]
    fn shared_locks_coexist_but_block_exclusive() {
        let locks = LockManager::new(Duration::from_millis(20));
        let key = LockKey::node(5);
        locks.acquire(key, LockMode::Shared, T1).unwrap();
        locks.acquire(key, LockMode::Shared, T2).unwrap();
        let (shared, exclusive) = locks.holders(key);
        assert_eq!(shared, vec![T1, T2]);
        assert_eq!(exclusive, None);
        // Exclusive by a third party times out.
        let err = locks.acquire(key, LockMode::Exclusive, T3).unwrap_err();
        assert!(matches!(err, TxnError::LockTimeout { .. }));
        assert_eq!(locks.stats().timeouts, 1);
    }

    #[test]
    fn shared_to_exclusive_upgrade_when_sole_holder() {
        let locks = LockManager::with_default_timeout();
        let key = LockKey::node(9);
        locks.acquire(key, LockMode::Shared, T1).unwrap();
        locks.acquire(key, LockMode::Exclusive, T1).unwrap();
        assert!(locks.holds_exclusive(key, T1));
    }

    #[test]
    fn exclusive_blocks_shared_until_release() {
        let locks = Arc::new(LockManager::new(Duration::from_secs(2)));
        let key = LockKey::relationship(1);
        locks.try_exclusive(key, T1).unwrap();
        let locks2 = Arc::clone(&locks);
        let handle = std::thread::spawn(move || locks2.acquire(key, LockMode::Shared, T2));
        std::thread::sleep(Duration::from_millis(50));
        locks.release(key, T1).unwrap();
        handle.join().unwrap().unwrap();
        let (shared, exclusive) = locks.holders(key);
        assert_eq!(shared, vec![T2]);
        assert_eq!(exclusive, None);
    }

    #[test]
    fn release_requires_holding() {
        let locks = LockManager::with_default_timeout();
        let key = LockKey::node(3);
        assert!(matches!(
            locks.release(key, T1),
            Err(TxnError::LockNotHeld { .. })
        ));
        locks.try_exclusive(key, T1).unwrap();
        assert!(matches!(
            locks.release(key, T2),
            Err(TxnError::LockNotHeld { .. })
        ));
        locks.release(key, T1).unwrap();
    }

    #[test]
    fn release_all_frees_everything() {
        let locks = LockManager::with_default_timeout();
        locks.try_exclusive(LockKey::node(1), T1).unwrap();
        locks.try_exclusive(LockKey::node(2), T1).unwrap();
        locks
            .acquire(LockKey::node(3), LockMode::Shared, T1)
            .unwrap();
        assert_eq!(locks.locks_of(T1).len(), 3);
        let released = locks.release_all(T1);
        assert_eq!(released.len(), 3);
        assert_eq!(locks.locked_key_count(), 0);
        assert!(locks.locks_of(T1).is_empty());
        // Now another transaction can take them immediately.
        locks.try_exclusive(LockKey::node(1), T2).unwrap();
    }

    #[test]
    fn deadlock_is_detected() {
        let locks = Arc::new(LockManager::new(Duration::from_secs(5)));
        let a = LockKey::node(1);
        let b = LockKey::node(2);
        locks.try_exclusive(a, T1).unwrap();
        locks.try_exclusive(b, T2).unwrap();

        let locks2 = Arc::clone(&locks);
        // T2 blocks waiting for `a` (held by T1).
        let handle = std::thread::spawn(move || locks2.acquire(a, LockMode::Exclusive, T2));
        std::thread::sleep(Duration::from_millis(100));
        // T1 now requests `b` (held by T2) — cycle.
        let err = locks.acquire(b, LockMode::Exclusive, T1).unwrap_err();
        assert!(matches!(err, TxnError::Deadlock { .. }));
        assert!(locks.stats().deadlocks >= 1);
        // Resolve by aborting T1: release its locks so T2 proceeds.
        locks.release_all(T1);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn stats_count_grants_and_conflicts() {
        let locks = LockManager::with_default_timeout();
        let key = LockKey::node(1);
        locks.acquire(key, LockMode::Shared, T1).unwrap();
        locks.try_exclusive(LockKey::node(2), T1).unwrap();
        let _ = locks.try_exclusive(LockKey::node(2), T2);
        let stats = locks.stats();
        assert_eq!(stats.shared_acquired, 1);
        assert_eq!(stats.exclusive_acquired, 1);
        assert_eq!(stats.immediate_conflicts, 1);
    }

    #[test]
    fn concurrent_writers_on_distinct_keys_do_not_interfere() {
        let locks = Arc::new(LockManager::with_default_timeout());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let locks = Arc::clone(&locks);
            handles.push(std::thread::spawn(move || {
                let txn = TxnId(i);
                for k in 0..100u64 {
                    let key = LockKey::node(i * 1000 + k);
                    locks.try_exclusive(key, txn).unwrap();
                }
                locks.release_all(txn).len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 100);
        }
        assert_eq!(locks.locked_key_count(), 0);
    }

    #[test]
    fn lock_key_display() {
        assert_eq!(LockKey::node(1).to_string(), "node(1)");
        assert_eq!(LockKey::relationship(2).to_string(), "rel(2)");
        assert_eq!(LockKey::schema(3).to_string(), "schema(3)");
    }
}
