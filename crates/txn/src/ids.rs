//! Transaction identifiers and logical timestamps.

use std::fmt;

/// A transaction identifier, unique for the lifetime of a database
/// instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Returns the raw numeric ID.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TxnId({})", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn-{}", self.0)
    }
}

/// A logical timestamp drawn from the [`crate::timestamps::TimestampOracle`].
///
/// Commit timestamps define the serialisation order of transactions; a
/// transaction's start timestamp determines which committed versions are
/// visible to it (the paper's *read rule*: the newest version with
/// `commit_ts <= start_ts`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The timestamp assigned to data that existed before any transaction
    /// ran (bootstrap data, recovery-loaded records).
    pub const BOOTSTRAP: Timestamp = Timestamp(0);

    /// The largest possible timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Returns the raw numeric value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the next timestamp (used by tests and recovery to derive a
    /// resume point).
    #[inline]
    pub const fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }

    /// Is a version with this commit timestamp visible to a reader that
    /// started at `start_ts`? This is the paper's read rule.
    #[inline]
    pub const fn visible_to(self, start_ts: Timestamp) -> bool {
        self.0 <= start_ts.0
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts({})", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(raw: u64) -> Self {
        Timestamp(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_follows_read_rule() {
        assert!(Timestamp(5).visible_to(Timestamp(5)));
        assert!(Timestamp(4).visible_to(Timestamp(5)));
        assert!(!Timestamp(6).visible_to(Timestamp(5)));
        assert!(Timestamp::BOOTSTRAP.visible_to(Timestamp(0)));
    }

    #[test]
    fn ordering_and_next() {
        assert!(Timestamp(1) < Timestamp(2));
        assert_eq!(Timestamp(1).next(), Timestamp(2));
        assert!(Timestamp::MAX > Timestamp(u64::MAX - 1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(TxnId(3).to_string(), "txn-3");
        assert_eq!(format!("{:?}", TxnId(3)), "TxnId(3)");
        assert_eq!(Timestamp(9).to_string(), "9");
        assert_eq!(format!("{:?}", Timestamp(9)), "ts(9)");
    }

    #[test]
    fn conversions() {
        assert_eq!(Timestamp::from(7u64).raw(), 7);
        assert_eq!(TxnId(12).raw(), 12);
    }
}
