//! Record-ID allocation with free-list reuse.
//!
//! Like Neo4j's `IdGenerator`, every store keeps a high-water mark and a
//! free-list of previously released IDs; new allocations prefer reusing a
//! freed slot so store files do not grow unboundedly under churn. The
//! allocator state is persisted in a sidecar `.id` file on flush.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{Result, StorageError};

/// Allocates record IDs for one store.
pub struct IdAllocator {
    path: PathBuf,
    next: AtomicU64,
    free: Mutex<Vec<u64>>,
}

impl IdAllocator {
    /// Opens the allocator persisted at `path` (a `.id` sidecar file),
    /// starting fresh if the file does not exist.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let (next, free) = match fs::read(&path) {
            Ok(bytes) => Self::decode(&bytes, &path)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (0, Vec::new()),
            Err(e) => return Err(StorageError::io("reading id file", e)),
        };
        Ok(IdAllocator {
            path,
            next: AtomicU64::new(next),
            // Lock-order rank: see the README's lock-rank map.
            free: Mutex::with_rank(free, 2730, "storage.id_free_list"),
        })
    }

    /// Creates an in-memory allocator that is never persisted. Used by
    /// tests and by stores opened in ephemeral mode.
    pub fn ephemeral() -> Self {
        IdAllocator {
            path: PathBuf::new(),
            next: AtomicU64::new(0),
            free: Mutex::with_rank(Vec::new(), 2730, "storage.id_free_list"),
        }
    }

    /// Allocates an ID, preferring the free-list.
    pub fn allocate(&self) -> u64 {
        if let Some(id) = self.free.lock().pop() {
            return id;
        }
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns an ID to the free-list for later reuse.
    pub fn release(&self, id: u64) {
        self.free.lock().push(id);
    }

    /// The current high-water mark: one past the largest ID ever handed
    /// out.
    pub fn high_id(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Number of IDs currently sitting in the free-list.
    pub fn free_count(&self) -> usize {
        self.free.lock().len()
    }

    /// Ensures the high-water mark is at least `next`, used during
    /// recovery when the WAL references IDs newer than the persisted
    /// allocator state.
    pub fn bump_high_id(&self, next: u64) {
        self.next.fetch_max(next, Ordering::Relaxed);
    }

    /// Persists the allocator state to its sidecar file. A no-op for
    /// ephemeral allocators.
    pub fn persist(&self) -> Result<()> {
        if self.path.as_os_str().is_empty() {
            return Ok(());
        }
        let free = self.free.lock();
        let mut bytes = Vec::with_capacity(16 + free.len() * 8);
        bytes.extend_from_slice(&self.next.load(Ordering::Relaxed).to_le_bytes());
        bytes.extend_from_slice(&(free.len() as u64).to_le_bytes());
        for id in free.iter() {
            bytes.extend_from_slice(&id.to_le_bytes());
        }
        fs::write(&self.path, bytes).map_err(|e| StorageError::io("writing id file", e))
    }

    fn decode(bytes: &[u8], path: &Path) -> Result<(u64, Vec<u64>)> {
        let corrupt = || StorageError::InvalidStoreDirectory {
            path: path.to_path_buf(),
            reason: "corrupt id file".to_owned(),
        };
        if bytes.len() < 16 {
            return Err(corrupt());
        }
        let next = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        let count = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        if bytes.len() < 16 + count * 8 {
            return Err(corrupt());
        }
        let mut free = Vec::with_capacity(count);
        for i in 0..count {
            let off = 16 + i * 8;
            free.push(u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()));
        }
        Ok((next, free))
    }
}

impl std::fmt::Debug for IdAllocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdAllocator")
            .field("high_id", &self.high_id())
            .field("free", &self.free_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;
    use std::collections::HashSet;

    #[test]
    fn allocates_sequentially_from_zero() {
        let alloc = IdAllocator::ephemeral();
        assert_eq!(alloc.allocate(), 0);
        assert_eq!(alloc.allocate(), 1);
        assert_eq!(alloc.allocate(), 2);
        assert_eq!(alloc.high_id(), 3);
    }

    #[test]
    fn released_ids_are_reused() {
        let alloc = IdAllocator::ephemeral();
        let a = alloc.allocate();
        let _b = alloc.allocate();
        alloc.release(a);
        assert_eq!(alloc.free_count(), 1);
        assert_eq!(alloc.allocate(), a);
        assert_eq!(alloc.free_count(), 0);
    }

    #[test]
    fn persist_and_reopen() {
        let dir = TempDir::new("id_alloc");
        let path = dir.path().join("nodes.id");
        {
            let alloc = IdAllocator::open(&path).unwrap();
            for _ in 0..10 {
                alloc.allocate();
            }
            alloc.release(3);
            alloc.release(7);
            alloc.persist().unwrap();
        }
        let alloc = IdAllocator::open(&path).unwrap();
        assert_eq!(alloc.high_id(), 10);
        assert_eq!(alloc.free_count(), 2);
        let reused: HashSet<u64> = (0..2).map(|_| alloc.allocate()).collect();
        assert_eq!(reused, HashSet::from([3, 7]));
    }

    #[test]
    fn bump_high_id_never_decreases() {
        let alloc = IdAllocator::ephemeral();
        alloc.bump_high_id(100);
        assert_eq!(alloc.high_id(), 100);
        alloc.bump_high_id(50);
        assert_eq!(alloc.high_id(), 100);
        assert_eq!(alloc.allocate(), 100);
    }

    #[test]
    fn corrupt_id_file_is_rejected() {
        let dir = TempDir::new("id_alloc_corrupt");
        let path = dir.path().join("bad.id");
        std::fs::write(&path, [1, 2, 3]).unwrap();
        assert!(IdAllocator::open(&path).is_err());
    }

    #[test]
    fn concurrent_allocations_are_unique() {
        use std::sync::Arc;
        let alloc = Arc::new(IdAllocator::ephemeral());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let alloc = Arc::clone(&alloc);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| alloc.allocate()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(all.len(), 4000);
    }
}
