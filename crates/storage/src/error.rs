//! Error type for the storage engine.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors raised by the record storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io {
        /// Description of the operation that failed (e.g. "read page").
        context: String,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A store file could not be opened or created.
    OpenFailed {
        /// Path to the store file.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A record ID referenced a slot that is not in use.
    RecordNotInUse {
        /// The store in which the lookup happened.
        store: &'static str,
        /// The offending record ID.
        id: u64,
    },
    /// A record ID lies beyond the end of the store.
    RecordOutOfBounds {
        /// The store in which the lookup happened.
        store: &'static str,
        /// The offending record ID.
        id: u64,
        /// The current highest allocated ID plus one.
        high_id: u64,
    },
    /// A record on disk could not be decoded.
    Corrupt {
        /// The store in which the record lives.
        store: &'static str,
        /// The offending record ID.
        id: u64,
        /// Human readable description of the corruption.
        reason: String,
    },
    /// A value was too large to be stored (e.g. an over-long string with a
    /// full dynamic store).
    ValueTooLarge {
        /// Size of the value in bytes.
        size: usize,
        /// Maximum supported size.
        max: usize,
    },
    /// A token (label name / property key) limit was exceeded.
    TokenLimitExceeded {
        /// The kind of token.
        kind: &'static str,
    },
    /// The store directory does not look like a graphsi store.
    InvalidStoreDirectory {
        /// Path to the directory.
        path: PathBuf,
        /// Reason it was rejected.
        reason: String,
    },
    /// A store page failed its trailer checksum on fault-in: a torn
    /// write, stale sector or bit flip. Recovery may downgrade this to a
    /// rebuilt page when WAL replay fully covers it.
    PageChecksum {
        /// Name of the store file holding the page.
        file: String,
        /// Page number within the file.
        page: u64,
        /// CRC computed over the page image as read.
        expected: u32,
        /// CRC stored in the page trailer.
        found: u32,
    },
}

impl StorageError {
    /// Convenience constructor for [`StorageError::Io`].
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        StorageError::Io {
            context: context.into(),
            source,
        }
    }

    /// Convenience constructor for [`StorageError::Corrupt`].
    pub fn corrupt(store: &'static str, id: u64, reason: impl Into<String>) -> Self {
        StorageError::Corrupt {
            store,
            id,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { context, source } => {
                write!(f, "I/O error while {context}: {source}")
            }
            StorageError::OpenFailed { path, source } => {
                write!(f, "failed to open store file {}: {source}", path.display())
            }
            StorageError::RecordNotInUse { store, id } => {
                write!(f, "{store} record {id} is not in use")
            }
            StorageError::RecordOutOfBounds { store, id, high_id } => {
                write!(
                    f,
                    "{store} record {id} is out of bounds (high id {high_id})"
                )
            }
            StorageError::Corrupt { store, id, reason } => {
                write!(f, "{store} record {id} is corrupt: {reason}")
            }
            StorageError::ValueTooLarge { size, max } => {
                write!(
                    f,
                    "value of {size} bytes exceeds the maximum of {max} bytes"
                )
            }
            StorageError::TokenLimitExceeded { kind } => {
                write!(f, "too many {kind} tokens")
            }
            StorageError::InvalidStoreDirectory { path, reason } => {
                write!(
                    f,
                    "{} is not a valid graphsi store directory: {reason}",
                    path.display()
                )
            }
            StorageError::PageChecksum {
                file,
                page,
                expected,
                found,
            } => {
                write!(
                    f,
                    "page {page} of {file} failed its checksum \
                     (computed {expected:#010x}, trailer holds {found:#010x})"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } | StorageError::OpenFailed { source, .. } => {
                Some(source)
            }
            _ => None,
        }
    }
}

/// Result alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io_error() {
        let err = StorageError::io("reading page 3", io::Error::other("boom"));
        let s = err.to_string();
        assert!(s.contains("reading page 3"));
        assert!(s.contains("boom"));
    }

    #[test]
    fn display_not_in_use() {
        let err = StorageError::RecordNotInUse {
            store: "node",
            id: 7,
        };
        assert_eq!(err.to_string(), "node record 7 is not in use");
    }

    #[test]
    fn display_out_of_bounds() {
        let err = StorageError::RecordOutOfBounds {
            store: "relationship",
            id: 100,
            high_id: 10,
        };
        assert!(err.to_string().contains("out of bounds"));
    }

    #[test]
    fn display_corrupt() {
        let err = StorageError::corrupt("property", 3, "bad type tag 77");
        assert!(err.to_string().contains("bad type tag 77"));
    }

    #[test]
    fn display_value_too_large() {
        let err = StorageError::ValueTooLarge { size: 10, max: 5 };
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn display_page_checksum_names_file_page_and_both_crcs() {
        let err = StorageError::PageChecksum {
            file: "nodes.db".into(),
            page: 12,
            expected: 0xDEAD_BEEF,
            found: 0x0BAD_F00D,
        };
        let s = err.to_string();
        assert!(s.contains("page 12"), "{s}");
        assert!(s.contains("nodes.db"), "{s}");
        assert!(s.contains("0xdeadbeef"), "{s}");
        assert!(s.contains("0x0badf00d"), "{s}");
    }

    #[test]
    fn error_source_is_preserved() {
        let err = StorageError::io("x", io::Error::other("inner"));
        let src = std::error::Error::source(&err).expect("source");
        assert!(src.to_string().contains("inner"));
    }
}
