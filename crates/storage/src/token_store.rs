//! Token registries: interned label names, property key names and
//! relationship type names.
//!
//! Neo4j stores these small string → token mappings in dedicated token
//! stores; as the paper notes, **tokens are never deleted** even when no
//! entity uses them any more — deletion semantics are handled at the index
//! layer by versioning. Each registry is persisted in a simple
//! length-prefixed file.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use parking_lot::RwLock;

use crate::error::{Result, StorageError};
use crate::ids::{LabelToken, PropertyKeyToken, RelTypeToken};

/// Maximum number of tokens per registry (token IDs are `u32`).
pub const MAX_TOKENS: usize = u32::MAX as usize;

struct RegistryInner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

/// An append-only interning registry mapping names to dense `u32` tokens.
pub struct TokenRegistry {
    path: PathBuf,
    kind: &'static str,
    inner: RwLock<RegistryInner>,
}

impl TokenRegistry {
    /// Opens (or creates) the registry persisted at `path`.
    pub fn open(path: impl AsRef<Path>, kind: &'static str) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let names = match fs::read(&path) {
            Ok(bytes) => Self::decode(&bytes, &path)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(StorageError::io("reading token file", e)),
        };
        let by_name = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
        Ok(TokenRegistry {
            path,
            kind,
            // Lock-order rank: see the README's lock-rank map (a leaf —
            // never held across another acquisition).
            inner: RwLock::with_rank(RegistryInner { names, by_name }, 2700, "storage.tokens"),
        })
    }

    /// Creates an in-memory registry that is never persisted.
    pub fn ephemeral(kind: &'static str) -> Self {
        TokenRegistry {
            path: PathBuf::new(),
            kind,
            inner: RwLock::with_rank(
                RegistryInner {
                    names: Vec::new(),
                    by_name: HashMap::new(),
                },
                2700,
                "storage.tokens",
            ),
        }
    }

    /// Returns the token for `name`, creating it if it does not exist yet.
    ///
    /// Newly created tokens are persisted immediately (token creation is
    /// rare and tokens are never deleted), so a crash between a commit and
    /// the next checkpoint cannot lose the name ↔ token mapping that the
    /// WAL's commit records rely on.
    pub fn get_or_create(&self, name: &str) -> Result<u32> {
        if let Some(&token) = self.inner.read().by_name.get(name) {
            return Ok(token);
        }
        let mut inner = self.inner.write();
        if let Some(&token) = inner.by_name.get(name) {
            return Ok(token);
        }
        if inner.names.len() >= MAX_TOKENS {
            return Err(StorageError::TokenLimitExceeded { kind: self.kind });
        }
        let token = inner.names.len() as u32;
        inner.names.push(name.to_owned());
        inner.by_name.insert(name.to_owned(), token);
        Self::persist_inner(&self.path, &inner)?;
        Ok(token)
    }

    /// Returns the token for `name` if it already exists.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Returns the name behind `token`, if the token exists.
    pub fn name(&self, token: u32) -> Option<String> {
        self.inner.read().names.get(token as usize).cloned()
    }

    /// Number of tokens registered so far.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// Returns `true` if no tokens have been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All registered names in token order.
    pub fn all_names(&self) -> Vec<String> {
        self.inner.read().names.clone()
    }

    /// Persists the registry. A no-op for ephemeral registries.
    pub fn persist(&self) -> Result<()> {
        let inner = self.inner.read();
        Self::persist_inner(&self.path, &inner)
    }

    fn persist_inner(path: &Path, inner: &RegistryInner) -> Result<()> {
        if path.as_os_str().is_empty() {
            return Ok(());
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(inner.names.len() as u64).to_le_bytes());
        for name in &inner.names {
            let b = name.as_bytes();
            bytes.extend_from_slice(&(b.len() as u32).to_le_bytes());
            bytes.extend_from_slice(b);
        }
        fs::write(path, bytes).map_err(|e| StorageError::io("writing token file", e))
    }

    fn decode(bytes: &[u8], path: &Path) -> Result<Vec<String>> {
        let corrupt = |reason: &str| StorageError::InvalidStoreDirectory {
            path: path.to_path_buf(),
            reason: format!("corrupt token file: {reason}"),
        };
        if bytes.len() < 8 {
            return Err(corrupt("missing header"));
        }
        let count = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        // Each name needs at least a 4-byte length prefix, so `count` can
        // never legitimately exceed the remaining bytes / 4. This also guards
        // the pre-allocation below against corrupt headers.
        if count > bytes.len().saturating_sub(8) / 4 {
            return Err(corrupt("token count exceeds file size"));
        }
        let mut names = Vec::with_capacity(count);
        let mut off = 8usize;
        for _ in 0..count {
            if off + 4 > bytes.len() {
                return Err(corrupt("truncated length"));
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            if off + len > bytes.len() {
                return Err(corrupt("truncated name"));
            }
            let name = std::str::from_utf8(&bytes[off..off + len])
                .map_err(|_| corrupt("invalid UTF-8"))?
                .to_owned();
            off += len;
            names.push(name);
        }
        Ok(names)
    }
}

impl std::fmt::Debug for TokenRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenRegistry")
            .field("kind", &self.kind)
            .field("len", &self.len())
            .finish()
    }
}

/// The three token registries used by a graph store.
pub struct TokenStores {
    /// Label name registry.
    pub labels: TokenRegistry,
    /// Property key name registry.
    pub property_keys: TokenRegistry,
    /// Relationship type name registry.
    pub rel_types: TokenRegistry,
}

impl TokenStores {
    /// Opens all three registries inside `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        Ok(TokenStores {
            labels: TokenRegistry::open(dir.join("labels.tokens"), "label")?,
            property_keys: TokenRegistry::open(dir.join("property_keys.tokens"), "property key")?,
            rel_types: TokenRegistry::open(dir.join("rel_types.tokens"), "relationship type")?,
        })
    }

    /// Creates in-memory registries that are never persisted.
    pub fn ephemeral() -> Self {
        TokenStores {
            labels: TokenRegistry::ephemeral("label"),
            property_keys: TokenRegistry::ephemeral("property key"),
            rel_types: TokenRegistry::ephemeral("relationship type"),
        }
    }

    /// Returns the label token for `name`, creating it if needed.
    pub fn label(&self, name: &str) -> Result<LabelToken> {
        self.labels.get_or_create(name).map(LabelToken)
    }

    /// Returns the property key token for `name`, creating it if needed.
    pub fn property_key(&self, name: &str) -> Result<PropertyKeyToken> {
        self.property_keys.get_or_create(name).map(PropertyKeyToken)
    }

    /// Returns the relationship type token for `name`, creating it if
    /// needed.
    pub fn rel_type(&self, name: &str) -> Result<RelTypeToken> {
        self.rel_types.get_or_create(name).map(RelTypeToken)
    }

    /// Looks up an existing label token without creating it.
    pub fn existing_label(&self, name: &str) -> Option<LabelToken> {
        self.labels.get(name).map(LabelToken)
    }

    /// Looks up an existing property key token without creating it.
    pub fn existing_property_key(&self, name: &str) -> Option<PropertyKeyToken> {
        self.property_keys.get(name).map(PropertyKeyToken)
    }

    /// Looks up an existing relationship type token without creating it.
    pub fn existing_rel_type(&self, name: &str) -> Option<RelTypeToken> {
        self.rel_types.get(name).map(RelTypeToken)
    }

    /// Name behind a label token.
    pub fn label_name(&self, token: LabelToken) -> Option<String> {
        self.labels.name(token.0)
    }

    /// Name behind a property key token.
    pub fn property_key_name(&self, token: PropertyKeyToken) -> Option<String> {
        self.property_keys.name(token.0)
    }

    /// Name behind a relationship type token.
    pub fn rel_type_name(&self, token: RelTypeToken) -> Option<String> {
        self.rel_types.name(token.0)
    }

    /// Persists all three registries.
    pub fn persist(&self) -> Result<()> {
        self.labels.persist()?;
        self.property_keys.persist()?;
        self.rel_types.persist()
    }
}

impl std::fmt::Debug for TokenStores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenStores")
            .field("labels", &self.labels.len())
            .field("property_keys", &self.property_keys.len())
            .field("rel_types", &self.rel_types.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;

    #[test]
    fn interning_is_stable() {
        let reg = TokenRegistry::ephemeral("label");
        let a = reg.get_or_create("Person").unwrap();
        let b = reg.get_or_create("Company").unwrap();
        let a2 = reg.get_or_create("Person").unwrap();
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(reg.name(a), Some("Person".to_owned()));
        assert_eq!(reg.get("Company"), Some(b));
        assert_eq!(reg.get("Missing"), None);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
    }

    #[test]
    fn persist_and_reopen() {
        let dir = TempDir::new("tokens");
        let path = dir.path().join("labels.tokens");
        {
            let reg = TokenRegistry::open(&path, "label").unwrap();
            reg.get_or_create("A").unwrap();
            reg.get_or_create("B").unwrap();
            reg.get_or_create("C").unwrap();
            reg.persist().unwrap();
        }
        let reg = TokenRegistry::open(&path, "label").unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.get("B"), Some(1));
        assert_eq!(reg.all_names(), vec!["A", "B", "C"]);
        // New tokens continue after the persisted ones.
        assert_eq!(reg.get_or_create("D").unwrap(), 3);
    }

    #[test]
    fn corrupt_token_file_is_rejected() {
        let dir = TempDir::new("tokens_corrupt");
        let path = dir.path().join("bad.tokens");
        std::fs::write(&path, [9u8; 12]).unwrap();
        assert!(TokenRegistry::open(&path, "label").is_err());
    }

    #[test]
    fn token_stores_round_trip_names() {
        let dir = TempDir::new("token_stores");
        let stores = TokenStores::open(dir.path()).unwrap();
        let person = stores.label("Person").unwrap();
        let age = stores.property_key("age").unwrap();
        let knows = stores.rel_type("KNOWS").unwrap();
        assert_eq!(stores.label_name(person), Some("Person".to_owned()));
        assert_eq!(stores.property_key_name(age), Some("age".to_owned()));
        assert_eq!(stores.rel_type_name(knows), Some("KNOWS".to_owned()));
        assert_eq!(stores.existing_label("Person"), Some(person));
        assert_eq!(stores.existing_label("Nope"), None);
        assert_eq!(stores.existing_property_key("age"), Some(age));
        assert_eq!(stores.existing_rel_type("KNOWS"), Some(knows));
        stores.persist().unwrap();

        let stores = TokenStores::open(dir.path()).unwrap();
        assert_eq!(stores.existing_label("Person"), Some(person));
    }

    #[test]
    fn ephemeral_token_stores_do_not_touch_disk() {
        let stores = TokenStores::ephemeral();
        stores.label("X").unwrap();
        assert!(stores.persist().is_ok());
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        use std::sync::Arc;
        let reg = Arc::new(TokenRegistry::ephemeral("label"));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|i| reg.get_or_create(&format!("L{}", i % 10)).unwrap())
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.len(), 10);
        // The same name always maps to the same token.
        for i in 0..10 {
            let name = format!("L{i}");
            assert_eq!(reg.get(&name), Some(reg.get_or_create(&name).unwrap()));
        }
    }
}
