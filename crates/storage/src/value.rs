//! User-facing property values.
//!
//! Properties on nodes and relationships hold one of a small set of value
//! types (like Neo4j's primitive property types). [`PropertyValue`] is the
//! owned, user-facing representation; the storage layer converts it to and
//! from the on-disk [`crate::record::StoredValue`] form, spilling long
//! strings into the dynamic store.

use std::fmt;

/// A property value attached to a node or relationship.
#[derive(Clone, Debug, PartialEq)]
pub enum PropertyValue {
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// UTF-8 string of arbitrary length.
    String(String),
}

impl PropertyValue {
    /// Returns a hashable, totally ordered key form of the value, suitable
    /// for use in the property indexes. Floats are keyed by a monotonic
    /// transform of their IEEE-754 bit pattern ([`f64_order_bits`]), so
    /// `NaN` values are indexable and equal to themselves *and* the
    /// derived `Ord` on [`ValueKey`] sorts floats numerically — which is
    /// what lets the versioned index serve range predicates over its
    /// sorted key dimension.
    pub fn index_key(&self) -> ValueKey {
        match self {
            PropertyValue::Bool(b) => ValueKey::Bool(*b),
            PropertyValue::Int(i) => ValueKey::Int(*i),
            PropertyValue::Float(x) => ValueKey::Float(f64_order_bits(*x)),
            PropertyValue::String(s) => ValueKey::String(s.clone()),
        }
    }

    /// Returns the integer value if this is an [`PropertyValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropertyValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float value if this is a [`PropertyValue::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            PropertyValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Returns the string slice if this is a [`PropertyValue::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropertyValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean value if this is a [`PropertyValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            PropertyValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            PropertyValue::Bool(_) => "bool",
            PropertyValue::Int(_) => "int",
            PropertyValue::Float(_) => "float",
            PropertyValue::String(_) => "string",
        }
    }
}

impl fmt::Display for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyValue::Bool(b) => write!(f, "{b}"),
            PropertyValue::Int(i) => write!(f, "{i}"),
            PropertyValue::Float(x) => write!(f, "{x}"),
            PropertyValue::String(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<bool> for PropertyValue {
    fn from(v: bool) -> Self {
        PropertyValue::Bool(v)
    }
}

impl From<i64> for PropertyValue {
    fn from(v: i64) -> Self {
        PropertyValue::Int(v)
    }
}

impl From<i32> for PropertyValue {
    fn from(v: i32) -> Self {
        PropertyValue::Int(v as i64)
    }
}

impl From<f64> for PropertyValue {
    fn from(v: f64) -> Self {
        PropertyValue::Float(v)
    }
}

impl From<&str> for PropertyValue {
    fn from(v: &str) -> Self {
        PropertyValue::String(v.to_owned())
    }
}

impl From<String> for PropertyValue {
    fn from(v: String) -> Self {
        PropertyValue::String(v)
    }
}

/// Maps a float to "order bits": a bijective `u64` encoding whose unsigned
/// order equals the IEEE-754 total order (negative NaN < -inf < ... <
/// -0.0 < 0.0 < ... < +inf < NaN). Build [`ValueKey::Float`] keys through
/// [`PropertyValue::index_key`], which applies this transform.
pub fn f64_order_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`f64_order_bits`].
pub fn f64_from_order_bits(bits: u64) -> f64 {
    if bits >> 63 == 1 {
        f64::from_bits(bits & !(1 << 63))
    } else {
        f64::from_bits(!bits)
    }
}

/// A hashable, totally ordered form of a [`PropertyValue`], used as the key
/// in the versioned property indexes. The derived `Ord` sorts by type
/// (`Bool < Int < Float < String`), then by value within each type, which
/// is the sort order of the index's range-scannable key dimension.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKey {
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// Float key, stored as its monotonic [`f64_order_bits`] encoding (so
    /// the derived `Ord` sorts floats numerically).
    Float(u64),
    /// String key.
    String(String),
}

impl ValueKey {
    /// Converts the key back to a [`PropertyValue`].
    pub fn to_value(&self) -> PropertyValue {
        match self {
            ValueKey::Bool(b) => PropertyValue::Bool(*b),
            ValueKey::Int(i) => PropertyValue::Int(*i),
            ValueKey::Float(bits) => PropertyValue::Float(f64_from_order_bits(*bits)),
            ValueKey::String(s) => PropertyValue::String(s.clone()),
        }
    }

    /// `true` if `self` and `other` are the same value type (range
    /// predicates are type-homogeneous: an `Int` bound never matches a
    /// `String` value).
    pub fn same_type(&self, other: &ValueKey) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(other)
    }

    /// The smallest key of this key's value type — the inclusive lower
    /// bound a half-open range (`..= hi`) clamps to so it stays within the
    /// bound's type.
    pub fn type_min(&self) -> ValueKey {
        match self {
            ValueKey::Bool(_) => ValueKey::Bool(false),
            ValueKey::Int(_) => ValueKey::Int(i64::MIN),
            // Order-bits 0 is the smallest float in total order (-NaN).
            ValueKey::Float(_) => ValueKey::Float(0),
            ValueKey::String(_) => ValueKey::String(String::new()),
        }
    }

    /// The smallest key of the *next* value type in sort order — the
    /// exclusive upper bound a half-open range (`lo ..`) clamps to.
    /// `None` for strings, the last type (callers fall back to a
    /// key-space bound there).
    pub fn successor_type_min(&self) -> Option<ValueKey> {
        match self {
            ValueKey::Bool(_) => Some(ValueKey::Int(i64::MIN)),
            ValueKey::Int(_) => Some(ValueKey::Float(0)),
            ValueKey::Float(_) => Some(ValueKey::String(String::new())),
            ValueKey::String(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(PropertyValue::from(true), PropertyValue::Bool(true));
        assert_eq!(PropertyValue::from(3i64), PropertyValue::Int(3));
        assert_eq!(PropertyValue::from(3i32), PropertyValue::Int(3));
        assert_eq!(PropertyValue::from(2.5), PropertyValue::Float(2.5));
        assert_eq!(
            PropertyValue::from("hi"),
            PropertyValue::String("hi".to_owned())
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(PropertyValue::Int(7).as_int(), Some(7));
        assert_eq!(PropertyValue::Int(7).as_str(), None);
        assert_eq!(PropertyValue::Float(1.5).as_float(), Some(1.5));
        assert_eq!(PropertyValue::Bool(true).as_bool(), Some(true));
        assert_eq!(PropertyValue::String("x".into()).as_str(), Some("x"));
        assert_eq!(PropertyValue::String("x".into()).type_name(), "string");
    }

    #[test]
    fn index_key_roundtrip() {
        for v in [
            PropertyValue::Bool(false),
            PropertyValue::Int(-3),
            PropertyValue::Float(1.25),
            PropertyValue::String("graph".into()),
        ] {
            assert_eq!(v.index_key().to_value(), v);
        }
    }

    #[test]
    fn nan_is_indexable_and_self_equal() {
        let nan = PropertyValue::Float(f64::NAN);
        let key1 = nan.index_key();
        let key2 = PropertyValue::Float(f64::NAN).index_key();
        assert_eq!(key1, key2);
        let mut set = HashSet::new();
        set.insert(key1);
        assert!(set.contains(&key2));
    }

    #[test]
    fn value_keys_order_within_type() {
        assert!(ValueKey::Int(1) < ValueKey::Int(2));
        assert!(ValueKey::String("a".into()) < ValueKey::String("b".into()));
    }

    #[test]
    fn float_keys_order_numerically_including_negatives() {
        let key = |x: f64| PropertyValue::Float(x).index_key();
        let ordered = [
            f64::NEG_INFINITY,
            -1.0e9,
            -2.5,
            -1.0,
            -0.0,
            0.0,
            1.0,
            2.5,
            1.0e9,
            f64::INFINITY,
        ];
        for pair in ordered.windows(2) {
            assert!(
                key(pair[0]) < key(pair[1]),
                "{} must sort below {}",
                pair[0],
                pair[1]
            );
        }
        // NaN sorts above everything (IEEE total order) and roundtrips.
        assert!(key(f64::NAN) > key(f64::INFINITY));
        for x in ordered {
            assert_eq!(key(x).to_value(), PropertyValue::Float(x));
        }
        assert!(key(f64::NAN).to_value().as_float().is_some_and(f64::is_nan));
    }

    #[test]
    fn type_range_helpers() {
        let int = PropertyValue::Int(5).index_key();
        assert!(int.same_type(&ValueKey::Int(-3)));
        assert!(!int.same_type(&ValueKey::Bool(true)));
        assert!(int.type_min() <= ValueKey::Int(i64::MIN));
        // Every Int key sorts below Int's successor-type floor, and every
        // Float key at or above it.
        let ceiling = int.successor_type_min().unwrap();
        assert!(ValueKey::Int(i64::MAX) < ceiling);
        assert!(PropertyValue::Float(f64::NEG_INFINITY).index_key() >= ceiling);
        assert_eq!(ValueKey::String(String::new()).successor_type_min(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PropertyValue::Int(5).to_string(), "5");
        assert_eq!(PropertyValue::Bool(true).to_string(), "true");
        assert_eq!(PropertyValue::String("a".into()).to_string(), "\"a\"");
    }
}
