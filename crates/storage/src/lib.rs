//! # graphsi-storage
//!
//! The persistent storage substrate of the graphsi workspace: a from-scratch
//! reimplementation of the Neo4j-style native graph store described in
//! section 2 of *"Snapshot Isolation for Neo4j"* (EDBT 2016).
//!
//! The layout mirrors the paper's description of Neo4j:
//!
//! * **Record stores** ([`store_file::RecordStore`]) hold fixed-size records
//!   whose file position is derived from the entity ID.
//! * **Nodes** ([`record::NodeRecord`]) point at their first relationship and
//!   first property and carry inline label tokens.
//! * **Relationships** ([`record::RelationshipRecord`]) store source and
//!   target node IDs and are threaded into per-node doubly linked chains.
//! * **Properties** ([`record::PropertyRecord`]) are chained per owner, with
//!   long strings overflowing into a dynamic store.
//! * A **page cache** ([`page_cache::PageCache`]) sits between the record
//!   stores and their files.
//! * **Token stores** ([`token_store::TokenStores`]) intern label names,
//!   property keys and relationship type names.
//!
//! The top-level entry point is [`graph_store::GraphStore`], which exposes
//! the logical operations the transactional layers above need. Crucially —
//! and exactly as the paper prescribes — the persistent store holds **only
//! the most recent committed version** of each entity; older versions live
//! in the MVCC object cache (`graphsi-mvcc`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod graph_store;
pub mod id_allocator;
pub mod ids;
pub mod page_cache;
pub mod pages;
pub mod property_store;
pub mod record;
pub mod store_file;
pub mod test_util;
pub mod token_store;
pub mod value;

pub use error::{Result, StorageError};
pub use graph_store::{
    GraphStore, GraphStoreConfig, GraphStoreStats, NodeScanCursor, RelChainCursor, RelScanCursor,
    StorePageReport, StoreTarget, StoredNode, StoredRelationship,
};
pub use ids::{
    DynamicRecordId, EntityId, LabelToken, NodeId, PropertyKeyToken, PropertyRecordId,
    RelTypeToken, RelationshipId, NO_ID,
};
pub use page_cache::{PageFault, RecoveryOutcome};
pub use value::{PropertyValue, ValueKey};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_reexports_are_usable() {
        let v = PropertyValue::from(1i64);
        assert_eq!(v.as_int(), Some(1));
        assert!(NodeId::NONE.is_none());
        assert_eq!(NO_ID, u64::MAX);
    }
}
