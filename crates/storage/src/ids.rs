//! Strongly-typed identifiers for the entities handled by the storage
//! engine.
//!
//! Neo4j derives the position of a record in its store file directly from
//! the entity identifier; we keep the same scheme, so every ID is a plain
//! `u64` slot number wrapped in a newtype. The reserved value
//! [`NO_ID`] marks the absence of a reference (end of a relationship chain,
//! a node with no properties, ...).

use std::fmt;

/// Sentinel raw value meaning "no record" in chain pointers.
pub const NO_ID: u64 = u64::MAX;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $label:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u64);

        impl $name {
            /// The sentinel ID meaning "no record".
            pub const NONE: $name = $name(NO_ID);

            /// Creates an ID from a raw slot number.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// Returns the raw slot number.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns `true` if this is the [`Self::NONE`] sentinel.
            #[inline]
            pub const fn is_none(self) -> bool {
                self.0 == NO_ID
            }

            /// Returns `true` if this refers to an actual record slot.
            #[inline]
            pub const fn is_some(self) -> bool {
                self.0 != NO_ID
            }

            /// Converts to `Option<Self>`, mapping the sentinel to `None`.
            #[inline]
            pub fn as_option(self) -> Option<Self> {
                if self.is_none() {
                    None
                } else {
                    Some(self)
                }
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.is_none() {
                    write!(f, concat!($label, "(NONE)"))
                } else {
                    write!(f, concat!($label, "({})"), self.0)
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.is_none() {
                    write!(f, "-")
                } else {
                    write!(f, "{}", self.0)
                }
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifier of a node record.
    NodeId,
    "NodeId"
);
define_id!(
    /// Identifier of a relationship record.
    RelationshipId,
    "RelationshipId"
);
define_id!(
    /// Identifier of a property record.
    PropertyRecordId,
    "PropertyRecordId"
);
define_id!(
    /// Identifier of a dynamic (overflow) record.
    DynamicRecordId,
    "DynamicRecordId"
);

/// Token identifying a label name (interned string).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LabelToken(pub u32);

/// Token identifying a property key name (interned string).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PropertyKeyToken(pub u32);

/// Token identifying a relationship type name (interned string).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelTypeToken(pub u32);

impl fmt::Display for LabelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

impl fmt::Display for PropertyKeyToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key#{}", self.0)
    }
}

impl fmt::Display for RelTypeToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

/// Identifies either a node or a relationship — the two entity kinds that
/// the paper versions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum EntityId {
    /// A node.
    Node(NodeId),
    /// A relationship.
    Relationship(RelationshipId),
}

impl EntityId {
    /// Returns the raw slot number regardless of entity kind.
    pub fn raw(self) -> u64 {
        match self {
            EntityId::Node(id) => id.raw(),
            EntityId::Relationship(id) => id.raw(),
        }
    }

    /// Returns `true` if this identifies a node.
    pub fn is_node(self) -> bool {
        matches!(self, EntityId::Node(_))
    }

    /// Returns `true` if this identifies a relationship.
    pub fn is_relationship(self) -> bool {
        matches!(self, EntityId::Relationship(_))
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityId::Node(id) => write!(f, "node:{id}"),
            EntityId::Relationship(id) => write!(f, "rel:{id}"),
        }
    }
}

impl From<NodeId> for EntityId {
    fn from(id: NodeId) -> Self {
        EntityId::Node(id)
    }
}

impl From<RelationshipId> for EntityId {
    fn from(id: RelationshipId) -> Self {
        EntityId::Relationship(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_sentinel_roundtrip() {
        assert!(NodeId::NONE.is_none());
        assert!(!NodeId::NONE.is_some());
        assert_eq!(NodeId::NONE.as_option(), None);
        assert_eq!(NodeId::new(3).as_option(), Some(NodeId(3)));
    }

    #[test]
    fn raw_conversions() {
        let id = RelationshipId::from(42u64);
        assert_eq!(u64::from(id), 42);
        assert_eq!(id.raw(), 42);
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", NodeId::new(5)), "NodeId(5)");
        assert_eq!(format!("{:?}", NodeId::NONE), "NodeId(NONE)");
        assert_eq!(format!("{}", NodeId::new(5)), "5");
        assert_eq!(format!("{}", NodeId::NONE), "-");
        assert_eq!(format!("{}", LabelToken(3)), ":3");
        assert_eq!(format!("{}", PropertyKeyToken(3)), "key#3");
        assert_eq!(format!("{}", RelTypeToken(3)), "type#3");
    }

    #[test]
    fn entity_id_kinds() {
        let n = EntityId::from(NodeId::new(1));
        let r = EntityId::from(RelationshipId::new(2));
        assert!(n.is_node());
        assert!(!n.is_relationship());
        assert!(r.is_relationship());
        assert_eq!(n.raw(), 1);
        assert_eq!(r.raw(), 2);
        assert_eq!(format!("{n}"), "node:1");
        assert_eq!(format!("{r}"), "rel:2");
    }

    #[test]
    fn ordering_is_by_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NodeId::new(2) < NodeId::NONE);
    }
}
