//! The aggregated persistent graph store.
//!
//! [`GraphStore`] ties together the node, relationship, property and token
//! stores and provides the *logical* operations the transactional layer
//! needs at commit time (install the newest committed version of an
//! entity) and at cold-read time (materialise an entity that is not in the
//! object cache).
//!
//! Exactly as the paper prescribes, the persistent store holds **only the
//! most recent committed version** of every node and relationship; all
//! older versions live in the in-memory object cache of the MVCC layer.

use std::path::{Path, PathBuf};

use crate::error::{Result, StorageError};
use crate::ids::{LabelToken, NodeId, PropertyKeyToken, RelTypeToken, RelationshipId};
use crate::page_cache::PageCacheStats;
use crate::property_store::PropertyStore;
use crate::record::{NodeRecord, RelationshipRecord};
use crate::store_file::RecordStore;
use crate::token_store::TokenStores;
use crate::value::PropertyValue;

/// Upper bound on relationship-chain length used as a cycle guard.
const MAX_CHAIN_LENGTH: usize = 10_000_000;

/// Configuration for opening a [`GraphStore`].
#[derive(Clone, Copy, Debug)]
pub struct GraphStoreConfig {
    /// Number of pages each record store may keep cached in memory.
    pub cache_pages_per_store: usize,
    /// Verify page-trailer checksums when pages fault in (default on).
    /// Short non-zero file tails are rejected even when this is off.
    pub verify_pages_on_read: bool,
}

impl Default for GraphStoreConfig {
    fn default() -> Self {
        GraphStoreConfig {
            cache_pages_per_store: 256,
            verify_pages_on_read: true,
        }
    }
}

/// Names one of the four page-cache-backed store files, for targeting
/// fault injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreTarget {
    /// `nodes.db`.
    Nodes,
    /// `relationships.db`.
    Relationships,
    /// `properties.db`.
    Properties,
    /// `strings.db` (dynamic string overflow).
    Strings,
}

/// Result of a store-wide page-checksum walk
/// ([`GraphStore::verify_pages`]).
#[derive(Clone, Debug, Default)]
pub struct StorePageReport {
    /// Pages examined across all store files.
    pub pages_checked: u64,
    /// Corrupt pages as `(file, page, computed_crc, stored_crc)`.
    pub corrupt: Vec<(&'static str, u64, u32, u32)>,
}

/// A fully materialised node as stored on disk.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredNode {
    /// The node's ID.
    pub id: NodeId,
    /// Label tokens attached to the node.
    pub labels: Vec<LabelToken>,
    /// The node's properties.
    pub properties: Vec<(PropertyKeyToken, PropertyValue)>,
}

/// A fully materialised relationship as stored on disk.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredRelationship {
    /// The relationship's ID.
    pub id: RelationshipId,
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
    /// Relationship type token.
    pub rel_type: RelTypeToken,
    /// The relationship's properties.
    pub properties: Vec<(PropertyKeyToken, PropertyValue)>,
}

/// Aggregate counters across all record stores, used by experiment E7
/// (write amplification / store size).
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphStoreStats {
    /// Page-cache counters of the node store.
    pub nodes: PageCacheStats,
    /// Page-cache counters of the relationship store.
    pub relationships: PageCacheStats,
    /// Record writes issued against the property + dynamic stores.
    pub property_record_writes: u64,
    /// One past the largest node ID.
    pub node_high_id: u64,
    /// One past the largest relationship ID.
    pub relationship_high_id: u64,
}

impl GraphStoreStats {
    /// Total record writes across node, relationship and property stores.
    pub fn total_record_writes(&self) -> u64 {
        self.nodes.record_writes + self.relationships.record_writes + self.property_record_writes
    }
}

/// The persistent graph store: node, relationship, property and token
/// stores under one directory.
pub struct GraphStore {
    dir: PathBuf,
    nodes: RecordStore<NodeRecord>,
    relationships: RecordStore<RelationshipRecord>,
    properties: PropertyStore,
    tokens: TokenStores,
}

impl GraphStore {
    /// Opens (creating if necessary) a graph store in `dir`.
    pub fn open(dir: impl AsRef<Path>, config: GraphStoreConfig) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| StorageError::OpenFailed {
            path: dir.clone(),
            source: e,
        })?;
        let pages = config.cache_pages_per_store;
        let verify = config.verify_pages_on_read;
        Ok(GraphStore {
            nodes: RecordStore::open_with(&dir, "nodes.db", pages, verify)?,
            relationships: RecordStore::open_with(&dir, "relationships.db", pages, verify)?,
            properties: PropertyStore::open_with(&dir, pages, verify)?,
            tokens: TokenStores::open(&dir)?,
            dir,
        })
    }

    /// Runs `f` over every page cache in the store (nodes, relationships,
    /// properties, strings) — the integrity-plumbing fan-out used for
    /// trailer stamps, recovery suspect mode and stat aggregation.
    fn for_each_cache(&self, mut f: impl FnMut(&'static str, &crate::page_cache::PageCache)) {
        f("nodes.db", self.nodes.page_cache());
        f("relationships.db", self.relationships.page_cache());
        f("properties.db", self.properties.record_store().page_cache());
        f("strings.db", self.properties.dynamic_store().page_cache());
    }

    /// Sets the stamp sealed into page trailers at write-back across all
    /// store files (the checkpoint epoch; diagnostic only).
    pub fn set_page_stamp(&self, stamp: u64) {
        self.for_each_cache(|_, cache| cache.set_stamp(stamp));
    }

    /// Enters recovery mode on every store file: checksum-failed pages
    /// become suspects for WAL replay to rebuild instead of hard errors.
    pub fn begin_recovery(&self) {
        self.for_each_cache(|_, cache| cache.begin_recovery());
    }

    /// Leaves recovery mode, returning each store file's
    /// [`RecoveryOutcome`](crate::page_cache::RecoveryOutcome) keyed by
    /// file name.
    pub fn end_recovery(&self) -> Vec<(&'static str, crate::page_cache::RecoveryOutcome)> {
        let mut out = Vec::new();
        self.for_each_cache(|file, cache| out.push((file, cache.end_recovery())));
        out
    }

    /// Arms a one-shot write-back fault on the store file holding
    /// `target` (see [`PageFault`](crate::page_cache::PageFault)).
    /// Testing hook for the store crash-point matrix.
    pub fn inject_write_fault(&self, target: StoreTarget, fault: crate::page_cache::PageFault) {
        let cache = match target {
            StoreTarget::Nodes => self.nodes.page_cache(),
            StoreTarget::Relationships => self.relationships.page_cache(),
            StoreTarget::Properties => self.properties.record_store().page_cache(),
            StoreTarget::Strings => self.properties.dynamic_store().page_cache(),
        };
        cache.inject_write_fault(fault);
    }

    /// Walks every page of every store file verifying trailer checksums,
    /// holding each cache lock for at most `pages_per_hold` pages at a
    /// time (the `flush_incremental` pattern) so concurrent commits keep
    /// flowing.
    pub fn verify_pages(&self, pages_per_hold: usize) -> Result<StorePageReport> {
        let mut report = StorePageReport::default();
        let caches: [(&'static str, &crate::page_cache::PageCache); 4] = [
            ("nodes.db", self.nodes.page_cache()),
            ("relationships.db", self.relationships.page_cache()),
            ("properties.db", self.properties.record_store().page_cache()),
            ("strings.db", self.properties.dynamic_store().page_cache()),
        ];
        for (file, cache) in caches {
            let mut start = 0u64;
            loop {
                let sweep = cache.verify_pages(start, pages_per_hold)?;
                report.pages_checked += sweep.checked;
                report
                    .corrupt
                    .extend(sweep.corrupt.into_iter().map(|(p, e, f)| (file, p, e, f)));
                match sweep.next {
                    Some(next) => start = next,
                    None => break,
                }
            }
        }
        Ok(report)
    }

    /// Sum of fault-in checksum failures across all store files.
    pub fn checksum_failures(&self) -> u64 {
        let mut total = 0;
        self.for_each_cache(|_, cache| total += cache.stats().checksum_failures);
        total
    }

    /// Sum of recovery-rebuilt torn pages across all store files.
    pub fn torn_pages_recovered(&self) -> u64 {
        let mut total = 0;
        self.for_each_cache(|_, cache| total += cache.stats().torn_pages_recovered);
        total
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The token registries (labels, property keys, relationship types).
    pub fn tokens(&self) -> &TokenStores {
        &self.tokens
    }

    // ----- ID allocation ---------------------------------------------------

    /// Allocates a node ID. The slot is not written until the creating
    /// transaction commits.
    pub fn allocate_node_id(&self) -> NodeId {
        NodeId::new(self.nodes.allocate_id())
    }

    /// Allocates a relationship ID.
    pub fn allocate_relationship_id(&self) -> RelationshipId {
        RelationshipId::new(self.relationships.allocate_id())
    }

    /// Ensures ID high-water marks cover `node_high`/`rel_high`; used by
    /// recovery when replaying a WAL that references newer IDs.
    pub fn bump_high_ids(&self, node_high: u64, rel_high: u64) {
        self.nodes.bump_high_id(node_high);
        self.relationships.bump_high_id(rel_high);
    }

    /// One past the largest node ID ever allocated.
    pub fn node_high_id(&self) -> u64 {
        self.nodes.high_id()
    }

    /// One past the largest relationship ID ever allocated.
    pub fn relationship_high_id(&self) -> u64 {
        self.relationships.high_id()
    }

    // ----- Node operations --------------------------------------------------

    /// Writes a brand new node record (commit-time install of a created
    /// node).
    pub fn create_node(
        &self,
        id: NodeId,
        labels: &[LabelToken],
        properties: &[(PropertyKeyToken, PropertyValue)],
    ) -> Result<()> {
        self.create_node_with(id, labels, properties, None)
    }

    /// [`GraphStore::create_node`] with an optional extra property appended
    /// to the chain (the commit pipeline's reserved commit-ts property),
    /// avoiding a clone of the whole property list at the call site.
    pub fn create_node_with(
        &self,
        id: NodeId,
        labels: &[LabelToken],
        properties: &[(PropertyKeyToken, PropertyValue)],
        extra: Option<&(PropertyKeyToken, PropertyValue)>,
    ) -> Result<()> {
        let first_prop = self.properties.write_chain_with(properties, extra)?;
        let mut record = NodeRecord::new_in_use();
        record.labels = labels.to_vec();
        record.first_prop = first_prop;
        self.nodes.write(id.raw(), &record)
    }

    /// Overwrites the labels and properties of an existing node with the
    /// newest committed version (the paper: only the most recent committed
    /// version is written to the persistent store).
    pub fn update_node(
        &self,
        id: NodeId,
        labels: &[LabelToken],
        properties: &[(PropertyKeyToken, PropertyValue)],
    ) -> Result<()> {
        self.update_node_with(id, labels, properties, None)
    }

    /// [`GraphStore::update_node`] with an optional extra property appended
    /// to the chain.
    pub fn update_node_with(
        &self,
        id: NodeId,
        labels: &[LabelToken],
        properties: &[(PropertyKeyToken, PropertyValue)],
        extra: Option<&(PropertyKeyToken, PropertyValue)>,
    ) -> Result<()> {
        let mut record = self.nodes.load_in_use(id.raw())?;
        self.properties.free_chain(record.first_prop)?;
        record.first_prop = self.properties.write_chain_with(properties, extra)?;
        record.labels = labels.to_vec();
        self.nodes.write(id.raw(), &record)
    }

    /// Physically removes a node record. The caller must have removed all
    /// of the node's relationships first.
    pub fn delete_node(&self, id: NodeId) -> Result<()> {
        let record = self.nodes.load_in_use(id.raw())?;
        if record.first_rel.is_some() {
            return Err(StorageError::corrupt(
                "node",
                id.raw(),
                "cannot delete a node that still has relationships",
            ));
        }
        self.properties.free_chain(record.first_prop)?;
        self.nodes.write(id.raw(), &NodeRecord::default())?;
        self.nodes.release_id(id.raw());
        Ok(())
    }

    /// Returns `true` if the node record is in use.
    pub fn node_exists(&self, id: NodeId) -> Result<bool> {
        if id.is_none() || id.raw() >= self.nodes.high_id() {
            return Ok(false);
        }
        Ok(self.nodes.load(id.raw())?.in_use)
    }

    /// Materialises the node stored under `id`, or `None` if the slot is
    /// not in use.
    pub fn read_node(&self, id: NodeId) -> Result<Option<StoredNode>> {
        if id.is_none() || id.raw() >= self.nodes.high_id() {
            return Ok(None);
        }
        let record = self.nodes.load(id.raw())?;
        if !record.in_use {
            return Ok(None);
        }
        let properties = self.properties.read_chain(record.first_prop)?;
        Ok(Some(StoredNode {
            id,
            labels: record.labels,
            properties,
        }))
    }

    /// Decodes only the requested properties of a node, in `keys` order,
    /// without materialising the rest of its property chain — the
    /// single-key fast path decode-based predicate filters and row
    /// projections ride on. Returns `None` if the node slot is not in use.
    pub fn read_node_properties(
        &self,
        id: NodeId,
        keys: &[PropertyKeyToken],
    ) -> Result<Option<Vec<Option<PropertyValue>>>> {
        let Some(record) = self.read_node_record(id)? else {
            return Ok(None);
        };
        let mut out = vec![None; keys.len()];
        self.properties
            .decode_selected(record.first_prop, keys, &mut out)?;
        Ok(Some(out))
    }

    // ----- Relationship operations -------------------------------------------

    /// Writes a brand new relationship record and links it at the head of
    /// both endpoint nodes' relationship chains.
    pub fn create_relationship(
        &self,
        id: RelationshipId,
        source: NodeId,
        target: NodeId,
        rel_type: RelTypeToken,
        properties: &[(PropertyKeyToken, PropertyValue)],
    ) -> Result<()> {
        self.create_relationship_with(id, source, target, rel_type, properties, None)
    }

    /// [`GraphStore::create_relationship`] with an optional extra property
    /// appended to the chain.
    pub fn create_relationship_with(
        &self,
        id: RelationshipId,
        source: NodeId,
        target: NodeId,
        rel_type: RelTypeToken,
        properties: &[(PropertyKeyToken, PropertyValue)],
        extra: Option<&(PropertyKeyToken, PropertyValue)>,
    ) -> Result<()> {
        let first_prop = self.properties.write_chain_with(properties, extra)?;
        let mut rel = RelationshipRecord::new_in_use(source, target, rel_type);
        rel.first_prop = first_prop;

        let endpoints: &[NodeId] = if source == target {
            &[source]
        } else {
            &[source, target]
        };
        for &node in endpoints {
            let mut node_rec = self.nodes.load_in_use(node.raw())?;
            let old_first = node_rec.first_rel;
            rel.set_chain_for(node, RelationshipId::NONE, old_first);
            if old_first.is_some() {
                // Atomic single-call rewrite: the old chain head may also
                // sit on its *other* endpoint's chain, whose splices are
                // serialised by a different store-apply shard — only this
                // endpoint's pointer pair may be touched, and only under
                // the record's page lock.
                self.relationships.update_in_use(old_first.raw(), |head| {
                    let (_, head_next) = head.chain_for(node);
                    head.set_chain_for(node, id, head_next);
                })?;
            }
            node_rec.first_rel = id;
            self.nodes.write(node.raw(), &node_rec)?;
        }
        self.relationships.write(id.raw(), &rel)
    }

    /// Overwrites the properties of an existing relationship.
    pub fn update_relationship(
        &self,
        id: RelationshipId,
        properties: &[(PropertyKeyToken, PropertyValue)],
    ) -> Result<()> {
        self.update_relationship_with(id, properties, None)
    }

    /// [`GraphStore::update_relationship`] with an optional extra property
    /// appended to the chain.
    pub fn update_relationship_with(
        &self,
        id: RelationshipId,
        properties: &[(PropertyKeyToken, PropertyValue)],
        extra: Option<&(PropertyKeyToken, PropertyValue)>,
    ) -> Result<()> {
        let mut record = self.relationships.load_in_use(id.raw())?;
        self.properties.free_chain(record.first_prop)?;
        record.first_prop = self.properties.write_chain_with(properties, extra)?;
        self.relationships.write(id.raw(), &record)
    }

    /// Physically removes a relationship record, unlinking it from both
    /// endpoint nodes' chains.
    pub fn delete_relationship(&self, id: RelationshipId) -> Result<()> {
        let rel = self.relationships.load_in_use(id.raw())?;
        let endpoints: &[NodeId] = if rel.source == rel.target {
            &[rel.source]
        } else {
            &[rel.source, rel.target]
        };
        for &node in endpoints {
            let (prev, next) = rel.chain_for(node);
            if prev.is_none() {
                let mut node_rec = self.nodes.load_in_use(node.raw())?;
                node_rec.first_rel = next;
                self.nodes.write(node.raw(), &node_rec)?;
            } else {
                // Chain-neighbour rewrites are atomic single-call updates:
                // the neighbour may concurrently have its *other*
                // endpoint's pointers rewritten by a splice holding a
                // different store-apply shard (see `update_in_use`).
                self.relationships.update_in_use(prev.raw(), |prev_rec| {
                    let (pp, _) = prev_rec.chain_for(node);
                    prev_rec.set_chain_for(node, pp, next);
                })?;
            }
            if next.is_some() {
                self.relationships.update_in_use(next.raw(), |next_rec| {
                    let (_, nn) = next_rec.chain_for(node);
                    next_rec.set_chain_for(node, prev, nn);
                })?;
            }
        }
        self.properties.free_chain(rel.first_prop)?;
        self.relationships
            .write(id.raw(), &RelationshipRecord::default())?;
        self.relationships.release_id(id.raw());
        Ok(())
    }

    /// Returns `true` if the relationship record is in use.
    pub fn relationship_exists(&self, id: RelationshipId) -> Result<bool> {
        if id.is_none() || id.raw() >= self.relationships.high_id() {
            return Ok(false);
        }
        Ok(self.relationships.load(id.raw())?.in_use)
    }

    /// Materialises the relationship stored under `id`, or `None` if the
    /// slot is not in use.
    pub fn read_relationship(&self, id: RelationshipId) -> Result<Option<StoredRelationship>> {
        if id.is_none() || id.raw() >= self.relationships.high_id() {
            return Ok(None);
        }
        let record = self.relationships.load(id.raw())?;
        if !record.in_use {
            return Ok(None);
        }
        let properties = self.properties.read_chain(record.first_prop)?;
        Ok(Some(StoredRelationship {
            id,
            source: record.source,
            target: record.target,
            rel_type: record.rel_type,
            properties,
        }))
    }

    /// Materialises every relationship attached to `node` by walking its
    /// relationship chain.
    pub fn relationships_of(&self, node: NodeId) -> Result<Vec<StoredRelationship>> {
        let node_rec = match self.read_node_record(node)? {
            Some(rec) => rec,
            None => return Ok(Vec::new()),
        };
        let mut out = Vec::new();
        let mut current = node_rec.first_rel;
        let mut steps = 0usize;
        while current.is_some() {
            if steps > MAX_CHAIN_LENGTH {
                return Err(StorageError::corrupt(
                    "relationship",
                    node.raw(),
                    "relationship chain exceeds maximum length (cycle?)",
                ));
            }
            steps += 1;
            let rel = self.relationships.load_in_use(current.raw())?;
            let properties = self.properties.read_chain(rel.first_prop)?;
            out.push(StoredRelationship {
                id: current,
                source: rel.source,
                target: rel.target,
                rel_type: rel.rel_type,
                properties,
            });
            let (_, next) = rel.chain_for(node);
            current = next;
        }
        Ok(out)
    }

    /// IDs of every relationship attached to `node`, walking its chain
    /// without loading property chains. This is the hot path behind the
    /// lazy relationship iterators: resolving full relationship state is
    /// deferred to whoever consumes the IDs.
    pub fn relationship_ids_of(&self, node: NodeId) -> Result<Vec<RelationshipId>> {
        let node_rec = match self.read_node_record(node)? {
            Some(rec) => rec,
            None => return Ok(Vec::new()),
        };
        let mut out = Vec::new();
        let mut current = node_rec.first_rel;
        let mut steps = 0usize;
        while current.is_some() {
            if steps > MAX_CHAIN_LENGTH {
                return Err(StorageError::corrupt(
                    "relationship",
                    node.raw(),
                    "relationship chain exceeds maximum length (cycle?)",
                ));
            }
            steps += 1;
            let rel = self.relationships.load_in_use(current.raw())?;
            out.push(current);
            let (_, next) = rel.chain_for(node);
            current = next;
        }
        Ok(out)
    }

    /// Number of relationships attached to `node`.
    pub fn node_degree(&self, node: NodeId) -> Result<usize> {
        Ok(self.relationship_ids_of(node)?.len())
    }

    /// Opens a resumable, chunked cursor over the relationship chain of
    /// `node` (see [`RelChainCursor`]). Buffers nothing at creation; each
    /// [`RelChainCursor::next_chunk`] call walks at most one chunk of chain
    /// links.
    pub fn rel_chain_cursor(&self, node: NodeId, chunk_size: usize) -> Result<RelChainCursor<'_>> {
        let first = match self.read_node_record(node)? {
            Some(rec) => rec.first_rel,
            None => RelationshipId::NONE,
        };
        Ok(RelChainCursor {
            store: self,
            node,
            chunk: chunk_size.max(1),
            next: first,
            steps: 0,
            restarts: 0,
        })
    }

    /// Opens a resumable, chunked cursor over every in-use node slot (see
    /// [`NodeScanCursor`]). The scan is bounded by the high-water mark at
    /// creation time: slots allocated later belong to commits newer than
    /// any snapshot that could be driving the cursor.
    pub fn node_scan_cursor(&self, chunk_size: usize) -> NodeScanCursor<'_> {
        NodeScanCursor {
            store: self,
            next_raw: 0,
            high: self.nodes.high_id(),
            chunk: chunk_size.max(1),
        }
    }

    /// Opens a resumable, chunked cursor over every in-use relationship
    /// slot (see [`RelScanCursor`]).
    pub fn rel_scan_cursor(&self, chunk_size: usize) -> RelScanCursor<'_> {
        RelScanCursor {
            store: self,
            next_raw: 0,
            high: self.relationships.high_id(),
            chunk: chunk_size.max(1),
        }
    }

    // ----- Scans -------------------------------------------------------------

    /// IDs of every in-use node, in ID order.
    pub fn scan_node_ids(&self) -> Result<Vec<NodeId>> {
        let mut out = Vec::new();
        for entry in self.nodes.scan() {
            let (id, _) = entry?;
            out.push(NodeId::new(id));
        }
        Ok(out)
    }

    /// IDs of every in-use relationship, in ID order.
    pub fn scan_relationship_ids(&self) -> Result<Vec<RelationshipId>> {
        let mut out = Vec::new();
        for entry in self.relationships.scan() {
            let (id, _) = entry?;
            out.push(RelationshipId::new(id));
        }
        Ok(out)
    }

    // ----- Maintenance --------------------------------------------------------

    /// Flushes every store (pages, ID allocators, token registries).
    pub fn flush(&self) -> Result<()> {
        self.nodes.flush()?;
        self.relationships.flush()?;
        self.properties.flush()?;
        self.tokens.persist()
    }

    /// Fuzzy-checkpoint flush: writes back every store's currently-dirty
    /// pages at most `chunk` pages per lock acquisition, letting
    /// concurrent commits keep writing between chunks. Returns the total
    /// pages written back. Pages dirtied while the flush runs stay dirty
    /// — they belong to commits the checkpoint does not cover.
    pub fn flush_incremental(&self, chunk: usize) -> Result<u64> {
        let flushed = self.nodes.flush_incremental(chunk)?
            + self.relationships.flush_incremental(chunk)?
            + self.properties.flush_incremental(chunk)?;
        self.tokens.persist()?;
        Ok(flushed)
    }

    /// Aggregate counters for the storage experiments.
    pub fn stats(&self) -> GraphStoreStats {
        GraphStoreStats {
            nodes: self.nodes.cache_stats(),
            relationships: self.relationships.cache_stats(),
            property_record_writes: self.properties.record_writes(),
            node_high_id: self.nodes.high_id(),
            relationship_high_id: self.relationships.high_id(),
        }
    }

    fn read_node_record(&self, id: NodeId) -> Result<Option<NodeRecord>> {
        if id.is_none() || id.raw() >= self.nodes.high_id() {
            return Ok(None);
        }
        let record = self.nodes.load(id.raw())?;
        if record.in_use {
            Ok(Some(record))
        } else {
            Ok(None)
        }
    }
}

/// Cap on chain-restart attempts before a cursor declares the chain
/// corrupt. Restarts only happen when a concurrent committer rewires the
/// chain between two refills, so hitting this bound requires pathological,
/// unending churn on a single node.
const MAX_CHAIN_RESTARTS: u64 = 1024;

/// A resumable, chunked cursor over the relationship chain of one node,
/// created by [`GraphStore::rel_chain_cursor`].
///
/// The cursor holds **no lock** and buffers at most one chunk of
/// relationship IDs per [`RelChainCursor::next_chunk`] call; between calls
/// it remembers only the next chain link. Because concurrent commits may
/// unlink (delete) or head-insert (create) records while the cursor is
/// parked, every resumed link is re-validated: if the record was freed or
/// reused for a relationship that no longer touches the node, the cursor
/// **restarts from the chain head**. Restarting can hand out IDs a
/// previous chunk already contained — callers are expected to deduplicate
/// (the transactional layer does, via its visit-set) and to filter every
/// ID by snapshot visibility, which also makes concurrently inserted
/// (newer-than-snapshot) records harmless. Relationships unlinked by a
/// commit the snapshot must not observe are *not* the cursor's job: their
/// versions live in the MVCC cache and reach readers through the
/// relationship overlay.
pub struct RelChainCursor<'s> {
    store: &'s GraphStore,
    node: NodeId,
    chunk: usize,
    next: RelationshipId,
    steps: usize,
    restarts: u64,
}

impl RelChainCursor<'_> {
    /// Times the cursor had to restart from the chain head because a
    /// concurrent commit invalidated its parked position.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Refills `buf` (cleared first) with up to one chunk of relationship
    /// IDs, resuming at the parked chain link. Returns `false` once the
    /// chain is exhausted and `buf` stayed empty.
    pub fn next_chunk(&mut self, buf: &mut Vec<RelationshipId>) -> Result<bool> {
        buf.clear();
        while self.next.is_some() && buf.len() < self.chunk {
            if self.steps > MAX_CHAIN_LENGTH {
                return Err(StorageError::corrupt(
                    "relationship",
                    self.node.raw(),
                    "relationship chain exceeds maximum length (cycle?)",
                ));
            }
            let record = self.store.relationships.load(self.next.raw())?;
            if !record.in_use || !(record.source == self.node || record.target == self.node) {
                // The parked link was deleted (or its slot reused) by a
                // concurrent commit: the chain was rewired under us.
                // Restart from the head; downstream dedup + visibility
                // filtering absorb the re-yielded prefix.
                self.restarts += 1;
                if self.restarts > MAX_CHAIN_RESTARTS {
                    return Err(StorageError::corrupt(
                        "relationship",
                        self.node.raw(),
                        "relationship chain kept changing under a cursor",
                    ));
                }
                self.steps = 0;
                self.next = match self.store.read_node_record(self.node)? {
                    Some(rec) => rec.first_rel,
                    None => RelationshipId::NONE,
                };
                continue;
            }
            self.steps += 1;
            buf.push(self.next);
            let (_, next) = record.chain_for(self.node);
            self.next = next;
        }
        Ok(!buf.is_empty())
    }
}

impl std::fmt::Debug for RelChainCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelChainCursor")
            .field("node", &self.node)
            .field("chunk", &self.chunk)
            .field("restarts", &self.restarts)
            .finish_non_exhaustive()
    }
}

/// A resumable, chunked cursor over every in-use node slot, created by
/// [`GraphStore::node_scan_cursor`]. Holds no lock; each refill examines
/// record headers from the parked slot onward until one chunk of in-use
/// IDs is collected. Slots freed concurrently are skipped and slots
/// allocated after creation are out of scan range — both only affect
/// entities invisible to any snapshot that existed when the cursor was
/// opened.
pub struct NodeScanCursor<'s> {
    store: &'s GraphStore,
    next_raw: u64,
    high: u64,
    chunk: usize,
}

impl NodeScanCursor<'_> {
    /// Refills `buf` (cleared first) with up to one chunk of in-use node
    /// IDs. Returns `false` once the slot space is exhausted and `buf`
    /// stayed empty.
    pub fn next_chunk(&mut self, buf: &mut Vec<NodeId>) -> Result<bool> {
        buf.clear();
        while self.next_raw < self.high && buf.len() < self.chunk {
            let raw = self.next_raw;
            self.next_raw += 1;
            if self.store.nodes.load(raw)?.in_use {
                buf.push(NodeId::new(raw));
            }
        }
        Ok(!buf.is_empty())
    }
}

impl std::fmt::Debug for NodeScanCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeScanCursor")
            .field("next", &self.next_raw)
            .field("high", &self.high)
            .finish_non_exhaustive()
    }
}

/// Relationship counterpart of [`NodeScanCursor`], created by
/// [`GraphStore::rel_scan_cursor`].
pub struct RelScanCursor<'s> {
    store: &'s GraphStore,
    next_raw: u64,
    high: u64,
    chunk: usize,
}

impl RelScanCursor<'_> {
    /// Refills `buf` (cleared first) with up to one chunk of in-use
    /// relationship IDs. Returns `false` once the slot space is exhausted
    /// and `buf` stayed empty.
    pub fn next_chunk(&mut self, buf: &mut Vec<RelationshipId>) -> Result<bool> {
        buf.clear();
        while self.next_raw < self.high && buf.len() < self.chunk {
            let raw = self.next_raw;
            self.next_raw += 1;
            if self.store.relationships.load(raw)?.in_use {
                buf.push(RelationshipId::new(raw));
            }
        }
        Ok(!buf.is_empty())
    }
}

impl std::fmt::Debug for RelScanCursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelScanCursor")
            .field("next", &self.next_raw)
            .field("high", &self.high)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphStore")
            .field("dir", &self.dir)
            .field("nodes", &self.nodes.high_id())
            .field("relationships", &self.relationships.high_id())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;

    fn open(dir: &TempDir) -> GraphStore {
        GraphStore::open(dir.path(), GraphStoreConfig::default()).unwrap()
    }

    fn props(pairs: &[(u32, i64)]) -> Vec<(PropertyKeyToken, PropertyValue)> {
        pairs
            .iter()
            .map(|&(k, v)| (PropertyKeyToken(k), PropertyValue::Int(v)))
            .collect()
    }

    #[test]
    fn create_and_read_node() {
        let dir = TempDir::new("gs_node");
        let store = open(&dir);
        let id = store.allocate_node_id();
        store
            .create_node(id, &[LabelToken(1)], &props(&[(0, 42)]))
            .unwrap();
        let node = store.read_node(id).unwrap().unwrap();
        assert_eq!(node.labels, vec![LabelToken(1)]);
        assert_eq!(node.properties, props(&[(0, 42)]));
        assert!(store.node_exists(id).unwrap());
        assert!(!store.node_exists(NodeId::new(999)).unwrap());
        assert!(store.read_node(NodeId::NONE).unwrap().is_none());
    }

    #[test]
    fn update_node_replaces_labels_and_properties() {
        let dir = TempDir::new("gs_update");
        let store = open(&dir);
        let id = store.allocate_node_id();
        store
            .create_node(id, &[LabelToken(1)], &props(&[(0, 1), (1, 2)]))
            .unwrap();
        store
            .update_node(id, &[LabelToken(2), LabelToken(3)], &props(&[(5, 9)]))
            .unwrap();
        let node = store.read_node(id).unwrap().unwrap();
        assert_eq!(node.labels, vec![LabelToken(2), LabelToken(3)]);
        assert_eq!(node.properties, props(&[(5, 9)]));
    }

    #[test]
    fn delete_node_frees_slot_for_reuse() {
        let dir = TempDir::new("gs_delete");
        let store = open(&dir);
        let id = store.allocate_node_id();
        store.create_node(id, &[], &props(&[(0, 1)])).unwrap();
        store.delete_node(id).unwrap();
        assert!(!store.node_exists(id).unwrap());
        assert!(store.read_node(id).unwrap().is_none());
        // Slot is reused.
        assert_eq!(store.allocate_node_id(), id);
    }

    #[test]
    fn delete_node_with_relationships_is_rejected() {
        let dir = TempDir::new("gs_delete_guard");
        let store = open(&dir);
        let a = store.allocate_node_id();
        let b = store.allocate_node_id();
        store.create_node(a, &[], &[]).unwrap();
        store.create_node(b, &[], &[]).unwrap();
        let r = store.allocate_relationship_id();
        store
            .create_relationship(r, a, b, RelTypeToken(0), &[])
            .unwrap();
        assert!(store.delete_node(a).is_err());
    }

    #[test]
    fn relationship_chains_link_both_endpoints() {
        let dir = TempDir::new("gs_rels");
        let store = open(&dir);
        let a = store.allocate_node_id();
        let b = store.allocate_node_id();
        let c = store.allocate_node_id();
        for id in [a, b, c] {
            store.create_node(id, &[], &[]).unwrap();
        }
        let r1 = store.allocate_relationship_id();
        let r2 = store.allocate_relationship_id();
        let r3 = store.allocate_relationship_id();
        store
            .create_relationship(r1, a, b, RelTypeToken(0), &[])
            .unwrap();
        store
            .create_relationship(r2, a, c, RelTypeToken(1), &[])
            .unwrap();
        store
            .create_relationship(r3, b, c, RelTypeToken(0), &[])
            .unwrap();

        let a_rels: Vec<RelationshipId> = store
            .relationships_of(a)
            .unwrap()
            .iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(a_rels.len(), 2);
        assert!(a_rels.contains(&r1) && a_rels.contains(&r2));
        assert_eq!(store.node_degree(b).unwrap(), 2);
        assert_eq!(store.node_degree(c).unwrap(), 2);

        let rel = store.read_relationship(r1).unwrap().unwrap();
        assert_eq!(rel.source, a);
        assert_eq!(rel.target, b);
    }

    #[test]
    fn delete_relationship_relinks_chains() {
        let dir = TempDir::new("gs_rel_delete");
        let store = open(&dir);
        let a = store.allocate_node_id();
        let b = store.allocate_node_id();
        store.create_node(a, &[], &[]).unwrap();
        store.create_node(b, &[], &[]).unwrap();
        let rels: Vec<RelationshipId> = (0..5)
            .map(|_| {
                let r = store.allocate_relationship_id();
                store
                    .create_relationship(r, a, b, RelTypeToken(0), &[])
                    .unwrap();
                r
            })
            .collect();
        // Remove the middle, the head and the tail of the chain.
        store.delete_relationship(rels[2]).unwrap();
        store.delete_relationship(rels[4]).unwrap();
        store.delete_relationship(rels[0]).unwrap();
        let remaining: Vec<RelationshipId> = store
            .relationships_of(a)
            .unwrap()
            .iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(remaining.len(), 2);
        assert!(remaining.contains(&rels[1]) && remaining.contains(&rels[3]));
        assert_eq!(store.node_degree(b).unwrap(), 2);
        assert!(!store.relationship_exists(rels[2]).unwrap());
    }

    #[test]
    fn self_loop_appears_once_in_chain() {
        let dir = TempDir::new("gs_self_loop");
        let store = open(&dir);
        let a = store.allocate_node_id();
        store.create_node(a, &[], &[]).unwrap();
        let r = store.allocate_relationship_id();
        store
            .create_relationship(r, a, a, RelTypeToken(0), &[])
            .unwrap();
        let rels = store.relationships_of(a).unwrap();
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].source, a);
        assert_eq!(rels[0].target, a);
        store.delete_relationship(r).unwrap();
        assert_eq!(store.node_degree(a).unwrap(), 0);
    }

    #[test]
    fn relationship_properties_roundtrip() {
        let dir = TempDir::new("gs_rel_props");
        let store = open(&dir);
        let a = store.allocate_node_id();
        let b = store.allocate_node_id();
        store.create_node(a, &[], &[]).unwrap();
        store.create_node(b, &[], &[]).unwrap();
        let r = store.allocate_relationship_id();
        store
            .create_relationship(r, a, b, RelTypeToken(7), &props(&[(0, 10)]))
            .unwrap();
        store
            .update_relationship(r, &props(&[(0, 20), (1, 30)]))
            .unwrap();
        let rel = store.read_relationship(r).unwrap().unwrap();
        assert_eq!(rel.rel_type, RelTypeToken(7));
        assert_eq!(rel.properties, props(&[(0, 20), (1, 30)]));
    }

    #[test]
    fn scans_list_in_use_entities() {
        let dir = TempDir::new("gs_scan");
        let store = open(&dir);
        let mut node_ids = Vec::new();
        for _ in 0..10 {
            let id = store.allocate_node_id();
            store.create_node(id, &[], &[]).unwrap();
            node_ids.push(id);
        }
        store.delete_node(node_ids[3]).unwrap();
        store.delete_node(node_ids[7]).unwrap();
        let scanned = store.scan_node_ids().unwrap();
        assert_eq!(scanned.len(), 8);
        assert!(!scanned.contains(&node_ids[3]));

        let r = store.allocate_relationship_id();
        store
            .create_relationship(r, node_ids[0], node_ids[1], RelTypeToken(0), &[])
            .unwrap();
        assert_eq!(store.scan_relationship_ids().unwrap(), vec![r]);
    }

    #[test]
    fn graph_persists_across_reopen() {
        let dir = TempDir::new("gs_reopen");
        let (a, b, r);
        {
            let store = open(&dir);
            a = store.allocate_node_id();
            b = store.allocate_node_id();
            store
                .create_node(a, &[LabelToken(0)], &props(&[(0, 1)]))
                .unwrap();
            store.create_node(b, &[LabelToken(1)], &[]).unwrap();
            r = store.allocate_relationship_id();
            store
                .create_relationship(r, a, b, RelTypeToken(0), &props(&[(2, 3)]))
                .unwrap();
            store.flush().unwrap();
        }
        let store = open(&dir);
        let node = store.read_node(a).unwrap().unwrap();
        assert_eq!(node.labels, vec![LabelToken(0)]);
        let rel = store.read_relationship(r).unwrap().unwrap();
        assert_eq!(rel.target, b);
        assert_eq!(store.node_degree(b).unwrap(), 1);
        assert_eq!(store.node_high_id(), 2);
    }

    #[test]
    fn stats_report_record_writes() {
        let dir = TempDir::new("gs_stats");
        let store = open(&dir);
        let id = store.allocate_node_id();
        store.create_node(id, &[], &props(&[(0, 1)])).unwrap();
        let stats = store.stats();
        assert!(stats.total_record_writes() >= 2);
        assert_eq!(stats.node_high_id, 1);
    }

    #[test]
    fn tokens_are_shared_through_the_store() {
        let dir = TempDir::new("gs_tokens");
        let store = open(&dir);
        let person = store.tokens().label("Person").unwrap();
        assert_eq!(store.tokens().label("Person").unwrap(), person);
        assert_eq!(store.tokens().label_name(person), Some("Person".to_owned()));
    }

    /// Builds a hub with `n` spokes; returns (hub, spoke rel IDs).
    fn hub_graph(store: &GraphStore, n: usize) -> (NodeId, Vec<RelationshipId>) {
        let hub = store.allocate_node_id();
        store.create_node(hub, &[], &[]).unwrap();
        let rels = (0..n)
            .map(|_| {
                let spoke = store.allocate_node_id();
                store.create_node(spoke, &[], &[]).unwrap();
                let rel = store.allocate_relationship_id();
                store
                    .create_relationship(rel, hub, spoke, RelTypeToken(0), &[])
                    .unwrap();
                rel
            })
            .collect();
        (hub, rels)
    }

    #[test]
    fn rel_chain_cursor_pages_the_whole_chain() {
        let dir = TempDir::new("gs_chain_cursor");
        let store = open(&dir);
        let (hub, rels) = hub_graph(&store, 10);
        for chunk in [1usize, 3, 100] {
            let mut cursor = store.rel_chain_cursor(hub, chunk).unwrap();
            let mut buf = Vec::new();
            let mut out = Vec::new();
            while cursor.next_chunk(&mut buf).unwrap() {
                assert!(buf.len() <= chunk);
                out.extend_from_slice(&buf);
            }
            assert_eq!(cursor.restarts(), 0);
            let mut expected = rels.clone();
            expected.sort();
            out.sort();
            assert_eq!(out, expected, "chunk size {chunk}");
        }
    }

    #[test]
    fn rel_chain_cursor_restarts_after_concurrent_unlink() {
        let dir = TempDir::new("gs_chain_restart");
        let store = open(&dir);
        let (hub, rels) = hub_graph(&store, 6);
        // Chain order is head-insert: the cursor sees rels in reverse
        // creation order. Take one chunk of two, then delete the rel the
        // cursor is parked on (the 3rd-newest) plus one it already saw.
        let mut cursor = store.rel_chain_cursor(hub, 2).unwrap();
        let mut buf = Vec::new();
        assert!(cursor.next_chunk(&mut buf).unwrap());
        assert_eq!(buf.len(), 2);
        let seen_first: Vec<RelationshipId> = buf.clone();
        store.delete_relationship(rels[3]).unwrap(); // parked link
        store.delete_relationship(rels[5]).unwrap(); // already yielded
        let mut out = seen_first.clone();
        while cursor.next_chunk(&mut buf).unwrap() {
            out.extend_from_slice(&buf);
        }
        assert!(cursor.restarts() >= 1, "cursor must detect the rewiring");
        out.sort();
        out.dedup();
        // Every still-linked relationship is delivered at least once.
        for (i, rel) in rels.iter().enumerate() {
            if i != 3 && i != 5 {
                assert!(out.contains(rel), "lost rel {i}");
            }
        }
    }

    #[test]
    fn concurrent_splices_from_opposite_endpoints_share_a_neighbour_record() {
        // R(n1, n3) heads both n1's and n3's chain. One thread splices new
        // relationships onto n1, another onto n3 — each rewrite of R's
        // pointers arrives from a different endpoint and touches a
        // different pointer pair. The atomic neighbour updates keep both
        // chains intact (a lost update would orphan part of a chain).
        use std::sync::Arc;
        const PER_SIDE: usize = 50;
        let dir = TempDir::new("gs_opposite_splice");
        let store = Arc::new(open(&dir));
        let n1 = store.allocate_node_id();
        let n3 = store.allocate_node_id();
        store.create_node(n1, &[], &[]).unwrap();
        store.create_node(n3, &[], &[]).unwrap();
        let shared = store.allocate_relationship_id();
        store
            .create_relationship(shared, n1, n3, RelTypeToken(0), &[])
            .unwrap();

        let mut handles = Vec::new();
        for hub in [n1, n3] {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for _ in 0..PER_SIDE {
                    let spoke = store.allocate_node_id();
                    store.create_node(spoke, &[], &[]).unwrap();
                    let rel = store.allocate_relationship_id();
                    store
                        .create_relationship(rel, hub, spoke, RelTypeToken(1), &[])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.node_degree(n1).unwrap(), PER_SIDE + 1);
        assert_eq!(store.node_degree(n3).unwrap(), PER_SIDE + 1);
        assert!(store.relationship_ids_of(n1).unwrap().contains(&shared));
        assert!(store.relationship_ids_of(n3).unwrap().contains(&shared));
        // The shared record's chain pointers survived both sides: deleting
        // it must splice cleanly out of both chains.
        store.delete_relationship(shared).unwrap();
        assert_eq!(store.node_degree(n1).unwrap(), PER_SIDE);
        assert_eq!(store.node_degree(n3).unwrap(), PER_SIDE);
    }

    #[test]
    fn scan_cursors_match_the_eager_scans() {
        let dir = TempDir::new("gs_scan_cursor");
        let store = open(&dir);
        let (_hub, rels) = hub_graph(&store, 7);
        store.delete_relationship(rels[2]).unwrap();

        let mut nodes = Vec::new();
        let mut buf = Vec::new();
        let mut cursor = store.node_scan_cursor(3);
        while cursor.next_chunk(&mut buf).unwrap() {
            assert!(buf.len() <= 3);
            nodes.extend_from_slice(&buf);
        }
        assert_eq!(nodes, store.scan_node_ids().unwrap());

        let mut rel_ids = Vec::new();
        let mut cursor = store.rel_scan_cursor(2);
        let mut rbuf = Vec::new();
        while cursor.next_chunk(&mut rbuf).unwrap() {
            rel_ids.extend_from_slice(&rbuf);
        }
        assert_eq!(rel_ids, store.scan_relationship_ids().unwrap());
    }
}
