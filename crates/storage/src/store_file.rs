//! Generic fixed-size record store: a paged file plus an ID allocator.
//!
//! Every concrete store (nodes, relationships, properties, dynamic blocks)
//! is a [`RecordStore`] instantiated with the record type, exactly matching
//! the "position in the file is determined by the identifier" layout the
//! paper describes for Neo4j.

use std::path::Path;

use crate::error::{Result, StorageError};
use crate::id_allocator::IdAllocator;
use crate::page_cache::{PageCache, PageCacheStats};
use crate::pages::locate_record;
use crate::record::{
    DynamicRecord, NodeRecord, PropertyRecord, RelationshipRecord, DYNAMIC_RECORD_SIZE,
    NODE_RECORD_SIZE, PROPERTY_RECORD_SIZE, RELATIONSHIP_RECORD_SIZE,
};

/// A record type that can live in a [`RecordStore`].
pub trait Record: Sized + Clone {
    /// Fixed byte size of one record.
    const SIZE: usize;
    /// Human readable store name used in error messages.
    const STORE_NAME: &'static str;

    /// Serialises the record into `buf`, which is exactly [`Self::SIZE`]
    /// bytes long.
    fn encode_into(&self, buf: &mut [u8]) -> Result<()>;

    /// Deserialises a record from `buf`.
    fn decode_from(id: u64, buf: &[u8]) -> Result<Self>;

    /// Whether the record slot is in use.
    fn in_use(&self) -> bool;
}

impl Record for NodeRecord {
    const SIZE: usize = NODE_RECORD_SIZE;
    const STORE_NAME: &'static str = "node";

    fn encode_into(&self, buf: &mut [u8]) -> Result<()> {
        buf.copy_from_slice(&self.encode()?);
        Ok(())
    }

    fn decode_from(id: u64, buf: &[u8]) -> Result<Self> {
        NodeRecord::decode(id, buf)
    }

    fn in_use(&self) -> bool {
        self.in_use
    }
}

impl Record for RelationshipRecord {
    const SIZE: usize = RELATIONSHIP_RECORD_SIZE;
    const STORE_NAME: &'static str = "relationship";

    fn encode_into(&self, buf: &mut [u8]) -> Result<()> {
        buf.copy_from_slice(&self.encode());
        Ok(())
    }

    fn decode_from(id: u64, buf: &[u8]) -> Result<Self> {
        RelationshipRecord::decode(id, buf)
    }

    fn in_use(&self) -> bool {
        self.in_use
    }
}

impl Record for PropertyRecord {
    const SIZE: usize = PROPERTY_RECORD_SIZE;
    const STORE_NAME: &'static str = "property";

    fn encode_into(&self, buf: &mut [u8]) -> Result<()> {
        buf.copy_from_slice(&self.encode()?);
        Ok(())
    }

    fn decode_from(id: u64, buf: &[u8]) -> Result<Self> {
        PropertyRecord::decode(id, buf)
    }

    fn in_use(&self) -> bool {
        self.in_use
    }
}

impl Record for DynamicRecord {
    const SIZE: usize = DYNAMIC_RECORD_SIZE;
    const STORE_NAME: &'static str = "dynamic";

    fn encode_into(&self, buf: &mut [u8]) -> Result<()> {
        buf.copy_from_slice(&self.encode()?);
        Ok(())
    }

    fn decode_from(id: u64, buf: &[u8]) -> Result<Self> {
        DynamicRecord::decode(id, buf)
    }

    fn in_use(&self) -> bool {
        self.in_use
    }
}

/// A store of fixed-size records of type `R` backed by one paged file and
/// one ID allocator.
pub struct RecordStore<R: Record> {
    cache: PageCache,
    ids: IdAllocator,
    _marker: std::marker::PhantomData<R>,
}

impl<R: Record> RecordStore<R> {
    /// Opens (creating if necessary) the store file `<dir>/<file_name>` and
    /// its `.id` sidecar, keeping up to `cache_pages` pages in memory.
    /// Page checksums are verified on fault-in; use
    /// [`RecordStore::open_with`] to opt out.
    pub fn open(dir: impl AsRef<Path>, file_name: &str, cache_pages: usize) -> Result<Self> {
        Self::open_with(dir, file_name, cache_pages, true)
    }

    /// [`RecordStore::open`] with an explicit choice of fault-in checksum
    /// verification.
    pub fn open_with(
        dir: impl AsRef<Path>,
        file_name: &str,
        cache_pages: usize,
        verify_on_read: bool,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        let cache = PageCache::open_with(dir.join(file_name), cache_pages, verify_on_read)?;
        let ids = IdAllocator::open(dir.join(format!("{file_name}.id")))?;
        Ok(RecordStore {
            cache,
            ids,
            _marker: std::marker::PhantomData,
        })
    }

    /// The page cache backing this store, for integrity plumbing (trailer
    /// stamps, recovery suspect mode, fault injection, verifier walks).
    pub fn page_cache(&self) -> &PageCache {
        &self.cache
    }

    /// Allocates a fresh record ID (reusing freed slots when possible).
    pub fn allocate_id(&self) -> u64 {
        self.ids.allocate()
    }

    /// Releases a record ID back to the free-list. The caller should also
    /// overwrite the slot with a not-in-use record.
    pub fn release_id(&self, id: u64) {
        self.ids.release(id);
    }

    /// Ensures the high-water mark covers `next`, used during recovery.
    pub fn bump_high_id(&self, next: u64) {
        self.ids.bump_high_id(next);
    }

    /// One past the largest record ID ever allocated.
    pub fn high_id(&self) -> u64 {
        self.ids.high_id()
    }

    /// Loads record `id` regardless of its in-use flag. Slots that were
    /// never written decode as "not in use".
    pub fn load(&self, id: u64) -> Result<R> {
        let loc = locate_record(id, R::SIZE);
        self.cache.with_page(loc.page_no, |page| {
            R::decode_from(id, &page[loc.offset_in_page..loc.offset_in_page + R::SIZE])
        })?
    }

    /// Loads record `id`, failing if the slot is not in use.
    pub fn load_in_use(&self, id: u64) -> Result<R> {
        let record = self.load(id)?;
        if record.in_use() {
            Ok(record)
        } else {
            Err(StorageError::RecordNotInUse {
                store: R::STORE_NAME,
                id,
            })
        }
    }

    /// Writes record `id`.
    pub fn write(&self, id: u64, record: &R) -> Result<()> {
        let loc = locate_record(id, R::SIZE);
        self.cache.with_page_mut(loc.page_no, |page| {
            record.encode_into(&mut page[loc.offset_in_page..loc.offset_in_page + R::SIZE])
        })?
    }

    /// Atomically read-modify-writes the in-use record `id` under its page
    /// lock: decode, apply `f`, re-encode, all inside one
    /// [`PageCache::with_page_mut`] call.
    ///
    /// This exists for mutations of *shared* records by writers that are
    /// not otherwise serialised against each other: a relationship record
    /// sits on both endpoint nodes' chains, and two chain splices — one
    /// per endpoint, each holding only its own endpoint's store-apply
    /// shard — may rewrite the same record's (disjoint, per-endpoint)
    /// chain pointers concurrently. A separate `load` + `write` pair
    /// would let one splice overwrite the other's update wholesale; the
    /// single-call form makes the two commute.
    ///
    /// [`PageCache::with_page_mut`]: crate::page_cache::PageCache::with_page_mut
    pub fn update_in_use(&self, id: u64, f: impl FnOnce(&mut R)) -> Result<()> {
        let loc = locate_record(id, R::SIZE);
        self.cache.with_page_mut(loc.page_no, |page| {
            let bytes = &mut page[loc.offset_in_page..loc.offset_in_page + R::SIZE];
            let mut record = R::decode_from(id, bytes)?;
            if !record.in_use() {
                return Err(StorageError::RecordNotInUse {
                    store: R::STORE_NAME,
                    id,
                });
            }
            f(&mut record);
            record.encode_into(bytes)
        })?
    }

    /// Flushes dirty pages and persists the ID allocator.
    pub fn flush(&self) -> Result<()> {
        self.cache.flush()?;
        self.ids.persist()
    }

    /// Fuzzy-checkpoint flush: writes back the currently-dirty pages at
    /// most `chunk` at a time without blocking concurrent record writes
    /// (see [`PageCache::flush_incremental`]), then persists the ID
    /// allocator. Returns the number of pages written back.
    pub fn flush_incremental(&self, chunk: usize) -> Result<u64> {
        let flushed = self.cache.flush_incremental(chunk)?;
        self.ids.persist()?;
        Ok(flushed)
    }

    /// Returns the page-cache counters for this store.
    pub fn cache_stats(&self) -> PageCacheStats {
        self.cache.stats()
    }

    /// Number of IDs currently waiting for reuse.
    pub fn free_ids(&self) -> usize {
        self.ids.free_count()
    }

    /// Iterates over all in-use records in ID order.
    pub fn scan(&self) -> StoreScan<'_, R> {
        StoreScan {
            store: self,
            next: 0,
            high: self.high_id(),
        }
    }
}

impl<R: Record> std::fmt::Debug for RecordStore<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordStore")
            .field("store", &R::STORE_NAME)
            .field("high_id", &self.high_id())
            .finish()
    }
}

/// Iterator over the in-use records of a store.
pub struct StoreScan<'a, R: Record> {
    store: &'a RecordStore<R>,
    next: u64,
    high: u64,
}

impl<R: Record> Iterator for StoreScan<'_, R> {
    type Item = Result<(u64, R)>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.next < self.high {
            let id = self.next;
            self.next += 1;
            match self.store.load(id) {
                Ok(record) if record.in_use() => return Some(Ok((id, record))),
                Ok(_) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LabelToken, NodeId, PropertyRecordId, RelTypeToken, RelationshipId};
    use crate::test_util::TempDir;

    fn node(labels: &[u32]) -> NodeRecord {
        let mut rec = NodeRecord::new_in_use();
        rec.labels = labels.iter().copied().map(LabelToken).collect();
        rec
    }

    #[test]
    fn write_and_read_back() {
        let dir = TempDir::new("record_store");
        let store: RecordStore<NodeRecord> = RecordStore::open(dir.path(), "nodes.db", 8).unwrap();
        let id = store.allocate_id();
        let rec = node(&[1, 2]);
        store.write(id, &rec).unwrap();
        assert_eq!(store.load(id).unwrap(), rec);
        assert_eq!(store.load_in_use(id).unwrap(), rec);
    }

    #[test]
    fn unwritten_slot_is_not_in_use() {
        let dir = TempDir::new("record_store_unused");
        let store: RecordStore<NodeRecord> = RecordStore::open(dir.path(), "nodes.db", 8).unwrap();
        let rec = store.load(5).unwrap();
        assert!(!rec.in_use);
        assert!(store.load_in_use(5).is_err());
    }

    #[test]
    fn persists_across_reopen() {
        let dir = TempDir::new("record_store_reopen");
        let id;
        {
            let store: RecordStore<RelationshipRecord> =
                RecordStore::open(dir.path(), "rels.db", 8).unwrap();
            id = store.allocate_id();
            let rec =
                RelationshipRecord::new_in_use(NodeId::new(3), NodeId::new(9), RelTypeToken(2));
            store.write(id, &rec).unwrap();
            store.flush().unwrap();
        }
        let store: RecordStore<RelationshipRecord> =
            RecordStore::open(dir.path(), "rels.db", 8).unwrap();
        let rec = store.load_in_use(id).unwrap();
        assert_eq!(rec.source, NodeId::new(3));
        assert_eq!(rec.target, NodeId::new(9));
        assert_eq!(store.high_id(), id + 1);
    }

    #[test]
    fn scan_skips_unused_slots() {
        let dir = TempDir::new("record_store_scan");
        let store: RecordStore<NodeRecord> = RecordStore::open(dir.path(), "nodes.db", 8).unwrap();
        let mut written = Vec::new();
        for i in 0..20u64 {
            let id = store.allocate_id();
            if i % 3 == 0 {
                store.write(id, &node(&[i as u32])).unwrap();
                written.push(id);
            }
        }
        let scanned: Vec<u64> = store.scan().map(|r| r.unwrap().0).collect();
        assert_eq!(scanned, written);
    }

    #[test]
    fn release_and_reuse_slot() {
        let dir = TempDir::new("record_store_release");
        let store: RecordStore<NodeRecord> = RecordStore::open(dir.path(), "nodes.db", 8).unwrap();
        let id = store.allocate_id();
        store.write(id, &node(&[])).unwrap();
        // Delete: mark not in use and release the ID.
        store.write(id, &NodeRecord::default()).unwrap();
        store.release_id(id);
        assert_eq!(store.free_ids(), 1);
        assert_eq!(store.allocate_id(), id);
    }

    #[test]
    fn many_records_span_pages() {
        let dir = TempDir::new("record_store_pages");
        let store: RecordStore<PropertyRecord> =
            RecordStore::open(dir.path(), "props.db", 4).unwrap();
        let per_page = crate::pages::records_per_page(PROPERTY_RECORD_SIZE) as usize;
        let total = per_page * 5 + 3;
        for i in 0..total as u64 {
            let id = store.allocate_id();
            assert_eq!(id, i);
            let rec = PropertyRecord::new_in_use(
                crate::ids::PropertyKeyToken(i as u32),
                crate::record::StoredValue::Int(i as i64),
            );
            store.write(id, &rec).unwrap();
        }
        store.flush().unwrap();
        for i in 0..total as u64 {
            let rec = store.load_in_use(i).unwrap();
            assert_eq!(rec.key.0, i as u32);
        }
        assert_eq!(store.scan().count(), total);
    }

    #[test]
    fn update_in_use_mutates_atomically_and_rejects_free_slots() {
        let dir = TempDir::new("record_store_update");
        let store: RecordStore<RelationshipRecord> =
            RecordStore::open(dir.path(), "rels.db", 8).unwrap();
        let id = store.allocate_id();
        let rec = RelationshipRecord::new_in_use(NodeId::new(1), NodeId::new(2), RelTypeToken(0));
        store.write(id, &rec).unwrap();
        store
            .update_in_use(id, |r| {
                r.first_prop = PropertyRecordId::new(77);
            })
            .unwrap();
        assert_eq!(
            store.load_in_use(id).unwrap().first_prop,
            PropertyRecordId::new(77)
        );
        let free = store.allocate_id();
        assert!(store.update_in_use(free, |_| {}).is_err());
    }

    #[test]
    fn concurrent_disjoint_field_updates_commute() {
        // The chain-splice hazard in miniature: two threads each rewrite
        // *their* endpoint's pointer pair of the same relationship record.
        // With load+write pairs one side's update could be lost wholesale;
        // the atomic read-modify-write makes them commute.
        use std::sync::Arc;
        let dir = TempDir::new("record_store_commute");
        let store: Arc<RecordStore<RelationshipRecord>> =
            Arc::new(RecordStore::open(dir.path(), "rels.db", 8).unwrap());
        let id = store.allocate_id();
        let (n1, n2) = (NodeId::new(1), NodeId::new(2));
        store
            .write(id, &RelationshipRecord::new_in_use(n1, n2, RelTypeToken(0)))
            .unwrap();
        let mut handles = Vec::new();
        for (node, tag) in [(n1, 100u64), (n2, 200u64)] {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    store
                        .update_in_use(id, |r| {
                            r.set_chain_for(
                                node,
                                RelationshipId::new(tag + i),
                                RelationshipId::new(tag + i + 1),
                            );
                        })
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let rec = store.load_in_use(id).unwrap();
        assert_eq!(
            rec.chain_for(n1),
            (RelationshipId::new(599), RelationshipId::new(600)),
            "source-side pointers lost to the target-side writer"
        );
        assert_eq!(
            rec.chain_for(n2),
            (RelationshipId::new(699), RelationshipId::new(700)),
            "target-side pointers lost to the source-side writer"
        );
    }

    #[test]
    fn first_prop_pointer_roundtrip() {
        let dir = TempDir::new("record_store_ptr");
        let store: RecordStore<NodeRecord> = RecordStore::open(dir.path(), "nodes.db", 8).unwrap();
        let id = store.allocate_id();
        let mut rec = NodeRecord::new_in_use();
        rec.first_rel = RelationshipId::new(1234);
        rec.first_prop = PropertyRecordId::new(5678);
        store.write(id, &rec).unwrap();
        let back = store.load(id).unwrap();
        assert_eq!(back.first_rel, RelationshipId::new(1234));
        assert_eq!(back.first_prop, PropertyRecordId::new(5678));
    }
}
