//! The property store: chained key/value records with a dynamic-store
//! overflow for long strings.
//!
//! Properties of nodes and relationships are stored "in a different file"
//! (the paper, §2) as a singly linked chain of fixed-size records anchored
//! at the owner's `first_prop` pointer. Values that do not fit inline spill
//! into the dynamic store as a chain of [`DynamicRecord`] blocks.

use std::path::Path;

use crate::error::{Result, StorageError};
use crate::ids::{DynamicRecordId, PropertyKeyToken, PropertyRecordId};
use crate::record::{
    DynamicRecord, PropertyRecord, StoredValue, DYNAMIC_DATA_SIZE, PROPERTY_INLINE_STRING_MAX,
};
use crate::store_file::RecordStore;
use crate::value::PropertyValue;

/// Upper bound on property-chain length used as a cycle guard when walking
/// chains of a (possibly corrupt) store.
const MAX_CHAIN_LENGTH: usize = 1_000_000;

/// The property store plus its dynamic (overflow) store.
pub struct PropertyStore {
    records: RecordStore<PropertyRecord>,
    dynamics: RecordStore<DynamicRecord>,
}

impl PropertyStore {
    /// Opens (creating if necessary) the property and dynamic store files
    /// inside `dir`, verifying page checksums on fault-in.
    pub fn open(dir: impl AsRef<Path>, cache_pages: usize) -> Result<Self> {
        Self::open_with(dir, cache_pages, true)
    }

    /// [`PropertyStore::open`] with an explicit choice of fault-in
    /// checksum verification.
    pub fn open_with(
        dir: impl AsRef<Path>,
        cache_pages: usize,
        verify_on_read: bool,
    ) -> Result<Self> {
        let dir = dir.as_ref();
        Ok(PropertyStore {
            records: RecordStore::open_with(dir, "properties.db", cache_pages, verify_on_read)?,
            dynamics: RecordStore::open_with(dir, "strings.db", cache_pages, verify_on_read)?,
        })
    }

    /// The record store holding property records, for integrity plumbing.
    pub fn record_store(&self) -> &RecordStore<PropertyRecord> {
        &self.records
    }

    /// The dynamic (string overflow) store, for integrity plumbing.
    pub fn dynamic_store(&self) -> &RecordStore<DynamicRecord> {
        &self.dynamics
    }

    /// Writes a whole property chain and returns the ID of its first
    /// record, or [`PropertyRecordId::NONE`] for an empty property set.
    pub fn write_chain(
        &self,
        properties: &[(PropertyKeyToken, PropertyValue)],
    ) -> Result<PropertyRecordId> {
        self.write_chain_with(properties, None)
    }

    /// Writes a property chain consisting of `properties` followed by an
    /// optional `extra` entry, without materialising the concatenation.
    /// The commit pipeline uses this to append the reserved commit-ts
    /// property to every entity it installs instead of cloning each op's
    /// full property list.
    pub fn write_chain_with(
        &self,
        properties: &[(PropertyKeyToken, PropertyValue)],
        extra: Option<&(PropertyKeyToken, PropertyValue)>,
    ) -> Result<PropertyRecordId> {
        let total = properties.len() + usize::from(extra.is_some());
        if total == 0 {
            return Ok(PropertyRecordId::NONE);
        }
        let ids: Vec<u64> = (0..total).map(|_| self.records.allocate_id()).collect();
        for (i, (key, value)) in properties.iter().chain(extra).enumerate() {
            let stored = self.store_value(value)?;
            let mut record = PropertyRecord::new_in_use(*key, stored);
            record.next = if i + 1 < ids.len() {
                PropertyRecordId::new(ids[i + 1])
            } else {
                PropertyRecordId::NONE
            };
            self.records.write(ids[i], &record)?;
        }
        Ok(PropertyRecordId::new(ids[0]))
    }

    /// Reads a whole property chain starting at `first`.
    pub fn read_chain(
        &self,
        first: PropertyRecordId,
    ) -> Result<Vec<(PropertyKeyToken, PropertyValue)>> {
        let mut out = Vec::new();
        let mut current = first;
        let mut steps = 0usize;
        while current.is_some() {
            if steps > MAX_CHAIN_LENGTH {
                return Err(StorageError::corrupt(
                    "property",
                    first.raw(),
                    "property chain exceeds maximum length (cycle?)",
                ));
            }
            steps += 1;
            let record = self.records.load_in_use(current.raw())?;
            let value = self.load_value(current.raw(), &record.value)?;
            out.push((record.key, value));
            current = record.next;
        }
        Ok(out)
    }

    /// Decodes a single property out of the chain starting at `first`,
    /// stopping at the first record whose key matches `key` — the fast
    /// path for decode-based predicate filters, which would otherwise
    /// materialise the whole property list (including dynamic-store string
    /// fetches for values the filter never looks at) per candidate.
    pub fn decode_property(
        &self,
        first: PropertyRecordId,
        key: PropertyKeyToken,
    ) -> Result<Option<PropertyValue>> {
        let mut found = [None];
        self.decode_selected(first, &[key], &mut found)?;
        let [value] = found;
        Ok(value)
    }

    /// Decodes only the properties whose keys appear in `keys`, writing
    /// each match into the corresponding slot of `out` (`out.len()` must
    /// equal `keys.len()`; slots are reset to `None` first). Walks the
    /// chain at most once and returns early once every requested key has
    /// been found; values of non-requested keys are never materialised.
    pub fn decode_selected(
        &self,
        first: PropertyRecordId,
        keys: &[PropertyKeyToken],
        out: &mut [Option<PropertyValue>],
    ) -> Result<()> {
        debug_assert_eq!(keys.len(), out.len());
        out.fill(None);
        let mut remaining = keys.len();
        let mut current = first;
        let mut steps = 0usize;
        while current.is_some() && remaining > 0 {
            if steps > MAX_CHAIN_LENGTH {
                return Err(StorageError::corrupt(
                    "property",
                    first.raw(),
                    "property chain exceeds maximum length (cycle?)",
                ));
            }
            steps += 1;
            let record = self.records.load_in_use(current.raw())?;
            let slot = keys
                .iter()
                .enumerate()
                .position(|(i, k)| *k == record.key && out[i].is_none());
            if let Some(i) = slot {
                out[i] = Some(self.load_value(current.raw(), &record.value)?);
                remaining -= 1;
            }
            current = record.next;
        }
        Ok(())
    }

    /// Frees every record of the chain starting at `first` (including any
    /// dynamic overflow blocks).
    pub fn free_chain(&self, first: PropertyRecordId) -> Result<()> {
        let mut current = first;
        let mut steps = 0usize;
        while current.is_some() {
            if steps > MAX_CHAIN_LENGTH {
                return Err(StorageError::corrupt(
                    "property",
                    first.raw(),
                    "property chain exceeds maximum length (cycle?)",
                ));
            }
            steps += 1;
            let record = self.records.load_in_use(current.raw())?;
            if let StoredValue::DynamicString {
                first: dyn_first, ..
            } = record.value
            {
                self.free_dynamic_chain(dyn_first)?;
            }
            self.records
                .write(current.raw(), &PropertyRecord::default())?;
            self.records.release_id(current.raw());
            current = record.next;
        }
        Ok(())
    }

    /// Number of in-use property records (walks the store; intended for
    /// tests and the storage experiments, not hot paths).
    pub fn count_in_use(&self) -> usize {
        self.records.scan().count()
    }

    /// Number of in-use dynamic records.
    pub fn count_dynamic_in_use(&self) -> usize {
        self.dynamics.scan().count()
    }

    /// Total record writes issued against the property and dynamic stores.
    pub fn record_writes(&self) -> u64 {
        self.records.cache_stats().record_writes + self.dynamics.cache_stats().record_writes
    }

    /// Flushes both underlying stores.
    pub fn flush(&self) -> Result<()> {
        self.records.flush()?;
        self.dynamics.flush()
    }

    /// Fuzzy-checkpoint flush of both underlying stores (see
    /// [`crate::store_file::StoreFile::flush_incremental`]). Returns the
    /// total pages written back.
    pub fn flush_incremental(&self, chunk: usize) -> Result<u64> {
        Ok(self.records.flush_incremental(chunk)? + self.dynamics.flush_incremental(chunk)?)
    }

    fn store_value(&self, value: &PropertyValue) -> Result<StoredValue> {
        Ok(match value {
            PropertyValue::Bool(b) => StoredValue::Bool(*b),
            PropertyValue::Int(i) => StoredValue::Int(*i),
            PropertyValue::Float(x) => StoredValue::Float(*x),
            PropertyValue::String(s) if s.len() <= PROPERTY_INLINE_STRING_MAX => {
                StoredValue::InlineString(s.clone())
            }
            PropertyValue::String(s) => {
                let first = self.write_dynamic_chain(s.as_bytes())?;
                StoredValue::DynamicString {
                    first,
                    len: s.len() as u32,
                }
            }
        })
    }

    fn load_value(&self, id: u64, stored: &StoredValue) -> Result<PropertyValue> {
        Ok(match stored {
            StoredValue::Null => {
                return Err(StorageError::corrupt(
                    "property",
                    id,
                    "unexpected null payload in stored property",
                ))
            }
            StoredValue::Bool(b) => PropertyValue::Bool(*b),
            StoredValue::Int(i) => PropertyValue::Int(*i),
            StoredValue::Float(x) => PropertyValue::Float(*x),
            StoredValue::InlineString(s) => PropertyValue::String(s.clone()),
            StoredValue::DynamicString { first, len } => {
                let bytes = self.read_dynamic_chain(*first, *len as usize)?;
                let s = String::from_utf8(bytes).map_err(|_| {
                    StorageError::corrupt("dynamic", first.raw(), "invalid UTF-8 in string chain")
                })?;
                PropertyValue::String(s)
            }
        })
    }

    fn write_dynamic_chain(&self, bytes: &[u8]) -> Result<DynamicRecordId> {
        let chunks: Vec<&[u8]> = bytes.chunks(DYNAMIC_DATA_SIZE).collect();
        debug_assert!(!chunks.is_empty(), "long strings are never empty");
        let ids: Vec<u64> = chunks.iter().map(|_| self.dynamics.allocate_id()).collect();
        for (i, chunk) in chunks.iter().enumerate() {
            let mut record = DynamicRecord::new_in_use(chunk.to_vec());
            record.next = if i + 1 < ids.len() {
                DynamicRecordId::new(ids[i + 1])
            } else {
                DynamicRecordId::NONE
            };
            self.dynamics.write(ids[i], &record)?;
        }
        Ok(DynamicRecordId::new(ids[0]))
    }

    fn read_dynamic_chain(&self, first: DynamicRecordId, expected_len: usize) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(expected_len);
        let mut current = first;
        let mut steps = 0usize;
        while current.is_some() {
            if steps > MAX_CHAIN_LENGTH {
                return Err(StorageError::corrupt(
                    "dynamic",
                    first.raw(),
                    "dynamic chain exceeds maximum length (cycle?)",
                ));
            }
            steps += 1;
            let record = self.dynamics.load_in_use(current.raw())?;
            out.extend_from_slice(&record.data);
            current = record.next;
        }
        if out.len() != expected_len {
            return Err(StorageError::corrupt(
                "dynamic",
                first.raw(),
                format!("expected {expected_len} bytes, found {}", out.len()),
            ));
        }
        Ok(out)
    }

    fn free_dynamic_chain(&self, first: DynamicRecordId) -> Result<()> {
        let mut current = first;
        let mut steps = 0usize;
        while current.is_some() {
            if steps > MAX_CHAIN_LENGTH {
                return Err(StorageError::corrupt(
                    "dynamic",
                    first.raw(),
                    "dynamic chain exceeds maximum length (cycle?)",
                ));
            }
            steps += 1;
            let record = self.dynamics.load_in_use(current.raw())?;
            self.dynamics
                .write(current.raw(), &DynamicRecord::default())?;
            self.dynamics.release_id(current.raw());
            current = record.next;
        }
        Ok(())
    }
}

impl std::fmt::Debug for PropertyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PropertyStore")
            .field("properties", &self.records.high_id())
            .field("dynamic_blocks", &self.dynamics.high_id())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;

    fn key(k: u32) -> PropertyKeyToken {
        PropertyKeyToken(k)
    }

    #[test]
    fn empty_chain_is_none() {
        let dir = TempDir::new("props_empty");
        let store = PropertyStore::open(dir.path(), 8).unwrap();
        let first = store.write_chain(&[]).unwrap();
        assert!(first.is_none());
        assert!(store.read_chain(first).unwrap().is_empty());
    }

    #[test]
    fn chain_roundtrip_all_types() {
        let dir = TempDir::new("props_roundtrip");
        let store = PropertyStore::open(dir.path(), 8).unwrap();
        let props = vec![
            (key(0), PropertyValue::Bool(true)),
            (key(1), PropertyValue::Int(-7)),
            (key(2), PropertyValue::Float(1.5)),
            (key(3), PropertyValue::String("short".to_owned())),
        ];
        let first = store.write_chain(&props).unwrap();
        assert!(first.is_some());
        assert_eq!(store.read_chain(first).unwrap(), props);
    }

    #[test]
    fn long_string_spills_to_dynamic_store() {
        let dir = TempDir::new("props_long");
        let store = PropertyStore::open(dir.path(), 8).unwrap();
        let long = "x".repeat(DYNAMIC_DATA_SIZE * 3 + 17);
        let props = vec![(key(9), PropertyValue::String(long.clone()))];
        let first = store.write_chain(&props).unwrap();
        assert!(store.count_dynamic_in_use() >= 4);
        let back = store.read_chain(first).unwrap();
        assert_eq!(back[0].1, PropertyValue::String(long));
    }

    #[test]
    fn unicode_long_string_roundtrip() {
        let dir = TempDir::new("props_unicode");
        let store = PropertyStore::open(dir.path(), 8).unwrap();
        let long = "héllø→🌍 ".repeat(100);
        let first = store
            .write_chain(&[(key(0), PropertyValue::String(long.clone()))])
            .unwrap();
        let back = store.read_chain(first).unwrap();
        assert_eq!(back[0].1.as_str(), Some(long.as_str()));
    }

    #[test]
    fn free_chain_releases_everything() {
        let dir = TempDir::new("props_free");
        let store = PropertyStore::open(dir.path(), 8).unwrap();
        let long = "y".repeat(DYNAMIC_DATA_SIZE * 2 + 5);
        let props = vec![
            (key(0), PropertyValue::Int(1)),
            (key(1), PropertyValue::String(long)),
            (key(2), PropertyValue::Bool(false)),
        ];
        let first = store.write_chain(&props).unwrap();
        assert_eq!(store.count_in_use(), 3);
        assert_eq!(store.count_dynamic_in_use(), 3);
        store.free_chain(first).unwrap();
        assert_eq!(store.count_in_use(), 0);
        assert_eq!(store.count_dynamic_in_use(), 0);
        // Freed slots are reused by the next chain.
        let again = store
            .write_chain(&[(key(5), PropertyValue::Int(2))])
            .unwrap();
        assert!(again.raw() < 3);
    }

    #[test]
    fn chains_persist_across_reopen() {
        let dir = TempDir::new("props_reopen");
        let props = vec![
            (key(0), PropertyValue::Int(42)),
            (key(1), PropertyValue::String("durable".to_owned())),
        ];
        let first;
        {
            let store = PropertyStore::open(dir.path(), 8).unwrap();
            first = store.write_chain(&props).unwrap();
            store.flush().unwrap();
        }
        let store = PropertyStore::open(dir.path(), 8).unwrap();
        assert_eq!(store.read_chain(first).unwrap(), props);
    }

    #[test]
    fn boundary_string_length_stays_inline() {
        let dir = TempDir::new("props_boundary");
        let store = PropertyStore::open(dir.path(), 8).unwrap();
        let s = "a".repeat(PROPERTY_INLINE_STRING_MAX);
        let first = store
            .write_chain(&[(key(0), PropertyValue::String(s.clone()))])
            .unwrap();
        assert_eq!(store.count_dynamic_in_use(), 0);
        assert_eq!(
            store.read_chain(first).unwrap()[0].1.as_str(),
            Some(s.as_str())
        );

        let s2 = "a".repeat(PROPERTY_INLINE_STRING_MAX + 1);
        store
            .write_chain(&[(key(1), PropertyValue::String(s2))])
            .unwrap();
        assert!(store.count_dynamic_in_use() > 0);
    }

    #[test]
    fn decode_property_stops_at_first_match() {
        let dir = TempDir::new("props_decode_one");
        let store = PropertyStore::open(dir.path(), 8).unwrap();
        let long = "z".repeat(DYNAMIC_DATA_SIZE * 2 + 3);
        let props = vec![
            (key(0), PropertyValue::Int(7)),
            (key(1), PropertyValue::String(long.clone())),
            (key(2), PropertyValue::Bool(true)),
        ];
        let first = store.write_chain(&props).unwrap();
        assert_eq!(
            store.decode_property(first, key(0)).unwrap(),
            Some(PropertyValue::Int(7))
        );
        assert_eq!(
            store.decode_property(first, key(2)).unwrap(),
            Some(PropertyValue::Bool(true))
        );
        assert_eq!(store.decode_property(first, key(9)).unwrap(), None);
        assert_eq!(
            store
                .decode_property(PropertyRecordId::NONE, key(0))
                .unwrap(),
            None
        );
        // The long string is still decodable when explicitly requested.
        assert_eq!(
            store.decode_property(first, key(1)).unwrap(),
            Some(PropertyValue::String(long))
        );
    }

    #[test]
    fn decode_selected_fills_requested_slots_only() {
        let dir = TempDir::new("props_decode_sel");
        let store = PropertyStore::open(dir.path(), 8).unwrap();
        let props = vec![
            (key(0), PropertyValue::Int(1)),
            (key(1), PropertyValue::Int(2)),
            (key(2), PropertyValue::Int(3)),
        ];
        let first = store.write_chain(&props).unwrap();
        let mut out = [Some(PropertyValue::Bool(false)), None, None];
        store
            .decode_selected(first, &[key(2), key(7), key(0)], &mut out)
            .unwrap();
        assert_eq!(
            out,
            [
                Some(PropertyValue::Int(3)),
                None,
                Some(PropertyValue::Int(1))
            ]
        );
    }

    #[test]
    fn many_chains_coexist() {
        let dir = TempDir::new("props_many");
        let store = PropertyStore::open(dir.path(), 8).unwrap();
        let mut firsts = Vec::new();
        for i in 0..100i64 {
            let props = vec![
                (key(0), PropertyValue::Int(i)),
                (key(1), PropertyValue::Int(i * 2)),
            ];
            firsts.push((store.write_chain(&props).unwrap(), props));
        }
        for (first, props) in firsts {
            assert_eq!(store.read_chain(first).unwrap(), props);
        }
    }
}
