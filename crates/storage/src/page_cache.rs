//! A small page cache sitting between the record stores and their files.
//!
//! Each store file gets its own [`PageCache`]. Pages are loaded on demand,
//! kept pinned in memory up to a configurable capacity and evicted with an
//! LRU policy, writing dirty pages back to the file on eviction and on
//! [`PageCache::flush`].

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::pages::{Page, PAGE_SIZE};

/// Counters describing page-cache behaviour, useful for the storage
/// experiments (E7) and for tuning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Page requests satisfied from memory.
    pub hits: u64,
    /// Page requests that had to read the file.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back to the file.
    pub pages_flushed: u64,
    /// Individual record writes that dirtied a page.
    pub record_writes: u64,
}

struct Frame {
    page: Page,
    dirty: bool,
    last_used: u64,
}

struct CacheInner {
    file: File,
    frames: HashMap<u64, Frame>,
    tick: u64,
    stats: PageCacheStats,
    /// Number of pages the backing file is known to contain.
    file_pages: u64,
}

/// An LRU page cache over a single store file.
pub struct PageCache {
    path: PathBuf,
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl PageCache {
    /// Opens (creating if necessary) the file at `path` with room for
    /// `capacity` cached pages. A capacity of zero is rounded up to one.
    pub fn open(path: impl AsRef<Path>, capacity: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|source| StorageError::OpenFailed {
                path: path.clone(),
                source,
            })?;
        let len = file
            .metadata()
            .map_err(|e| StorageError::io("reading file metadata", e))?
            .len();
        let file_pages = len.div_ceil(PAGE_SIZE as u64);
        Ok(PageCache {
            path,
            capacity: capacity.max(1),
            // Lock-order rank: see the README's lock-rank map (a leaf —
            // never held across another acquisition).
            inner: Mutex::with_rank(
                CacheInner {
                    file,
                    frames: HashMap::new(),
                    tick: 0,
                    stats: PageCacheStats::default(),
                    file_pages,
                },
                2710,
                "storage.page_cache",
            ),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages the backing file currently holds (including pages
    /// only present in the cache and not yet flushed).
    pub fn known_pages(&self) -> u64 {
        let inner = self.inner.lock();
        let cached_max = inner.frames.keys().max().map_or(0, |p| p + 1);
        inner.file_pages.max(cached_max)
    }

    /// Runs `f` over a read-only view of page `page_no`.
    pub fn with_page<R>(&self, page_no: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.ensure_loaded(&mut inner, page_no)?;
        inner.tick += 1;
        let tick = inner.tick;
        let frame = inner.frames.get_mut(&page_no).expect("page just loaded");
        frame.last_used = tick;
        Ok(f(frame.page.bytes()))
    }

    /// Runs `f` over a mutable view of page `page_no`, marking it dirty.
    pub fn with_page_mut<R>(&self, page_no: u64, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.ensure_loaded(&mut inner, page_no)?;
        inner.tick += 1;
        inner.stats.record_writes += 1;
        let tick = inner.tick;
        let frame = inner.frames.get_mut(&page_no).expect("page just loaded");
        frame.last_used = tick;
        frame.dirty = true;
        Ok(f(frame.page.bytes_mut()))
    }

    /// Writes every dirty page back to the file and syncs it.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let dirty: Vec<u64> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&p, _)| p)
            .collect();
        for page_no in dirty {
            Self::write_back(&mut inner, page_no)?;
        }
        inner
            .file
            .sync_data()
            .map_err(|e| StorageError::io("syncing store file", e))?;
        Ok(())
    }

    /// Fuzzy-checkpoint flush: writes back the pages that are dirty *when
    /// the call starts*, at most `chunk` pages per lock acquisition, then
    /// syncs the file. Returns the number of pages written back.
    ///
    /// Unlike [`PageCache::flush`], the lock is released between chunks so
    /// concurrent record writes keep landing while the flush makes
    /// progress — the checkpoint cursor. Pages dirtied *after* the initial
    /// snapshot are deliberately left dirty: they belong to commits the
    /// checkpoint does not cover (their WAL records sit after the
    /// checkpoint-begin mark and will be replayed), and skipping them is
    /// what makes the loop terminate under sustained write load.
    pub fn flush_incremental(&self, chunk: usize) -> Result<u64> {
        let chunk = chunk.max(1);
        let dirty: Vec<u64> = {
            let inner = self.inner.lock();
            inner
                .frames
                .iter()
                .filter(|(_, f)| f.dirty)
                .map(|(&p, _)| p)
                .collect()
        };
        let mut flushed = 0u64;
        for batch in dirty.chunks(chunk) {
            let mut inner = self.inner.lock();
            for &page_no in batch {
                // A page may have been evicted (already written back)
                // since the snapshot; only still-resident dirty pages need
                // work.
                if inner.frames.get(&page_no).is_some_and(|f| f.dirty) {
                    Self::write_back(&mut inner, page_no)?;
                    flushed += 1;
                }
            }
        }
        // Sync on a duplicated descriptor so the cache lock is *not* held
        // across the fsync — concurrent record writes keep landing while
        // the kernel drains the writeback.
        let file = {
            let inner = self.inner.lock();
            inner
                .file
                .try_clone()
                .map_err(|e| StorageError::io("cloning store file for sync", e))?
        };
        file.sync_data()
            .map_err(|e| StorageError::io("syncing store file", e))?;
        Ok(flushed)
    }

    /// Returns a snapshot of the cache counters.
    pub fn stats(&self) -> PageCacheStats {
        self.inner.lock().stats
    }

    /// Number of pages currently resident in the cache.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    fn ensure_loaded(&self, inner: &mut CacheInner, page_no: u64) -> Result<()> {
        if inner.frames.contains_key(&page_no) {
            inner.stats.hits += 1;
            return Ok(());
        }
        inner.stats.misses += 1;
        // Evict if at capacity.
        while inner.frames.len() >= self.capacity {
            let victim = inner
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&p, _)| p)
                .expect("non-empty cache");
            if inner.frames[&victim].dirty {
                Self::write_back(inner, victim)?;
            }
            inner.frames.remove(&victim);
            inner.stats.evictions += 1;
        }
        // Load the page (or a zero page if it lies beyond EOF).
        let page = if page_no < inner.file_pages {
            let mut buf = vec![0u8; PAGE_SIZE];
            inner
                .file
                .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))
                .map_err(|e| StorageError::io("seeking store file", e))?;
            // The last file page may be short if the process crashed
            // mid-write; treat missing bytes as zeros.
            let mut read = 0usize;
            while read < PAGE_SIZE {
                match inner.file.read(&mut buf[read..]) {
                    Ok(0) => break,
                    Ok(n) => read += n,
                    Err(e) => return Err(StorageError::io("reading store page", e)),
                }
            }
            Page::from_bytes(&buf)
        } else {
            Page::zeroed()
        };
        inner.tick += 1;
        let tick = inner.tick;
        inner.frames.insert(
            page_no,
            Frame {
                page,
                dirty: false,
                last_used: tick,
            },
        );
        Ok(())
    }

    fn write_back(inner: &mut CacheInner, page_no: u64) -> Result<()> {
        let frame = inner.frames.get_mut(&page_no).expect("frame present");
        inner
            .file
            .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))
            .map_err(|e| StorageError::io("seeking store file", e))?;
        inner
            .file
            .write_all(frame.page.bytes())
            .map_err(|e| StorageError::io("writing store page", e))?;
        frame.dirty = false;
        inner.stats.pages_flushed += 1;
        if page_no + 1 > inner.file_pages {
            inner.file_pages = page_no + 1;
        }
        Ok(())
    }
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("path", &self.path)
            .field("capacity", &self.capacity)
            .field("resident", &self.resident_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::TempDir;

    #[test]
    fn read_beyond_eof_is_zero_page() {
        let dir = TempDir::new("page_cache_eof");
        let cache = PageCache::open(dir.path().join("store"), 4).unwrap();
        let all_zero = cache.with_page(10, |b| b.iter().all(|&x| x == 0)).unwrap();
        assert!(all_zero);
    }

    #[test]
    fn write_then_read_back_same_instance() {
        let dir = TempDir::new("page_cache_rw");
        let cache = PageCache::open(dir.path().join("store"), 4).unwrap();
        cache.with_page_mut(2, |b| b[100] = 42).unwrap();
        let v = cache.with_page(2, |b| b[100]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn flush_persists_across_reopen() {
        let dir = TempDir::new("page_cache_persist");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 4).unwrap();
            cache.with_page_mut(0, |b| b[0] = 7).unwrap();
            cache.with_page_mut(3, |b| b[8191] = 9).unwrap();
            cache.flush().unwrap();
        }
        let cache = PageCache::open(&path, 4).unwrap();
        assert_eq!(cache.with_page(0, |b| b[0]).unwrap(), 7);
        assert_eq!(cache.with_page(3, |b| b[8191]).unwrap(), 9);
    }

    #[test]
    fn incremental_flush_covers_initially_dirty_pages() {
        let dir = TempDir::new("page_cache_incremental");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 8).unwrap();
            for p in 0..5u64 {
                cache.with_page_mut(p, |b| b[0] = p as u8 + 1).unwrap();
            }
            // Chunk smaller than the dirty set: several lock round-trips.
            assert_eq!(cache.flush_incremental(2).unwrap(), 5);
            // Everything is clean now; a second pass flushes nothing.
            assert_eq!(cache.flush_incremental(2).unwrap(), 0);
        }
        let cache = PageCache::open(&path, 8).unwrap();
        for p in 0..5u64 {
            assert_eq!(cache.with_page(p, |b| b[0]).unwrap(), p as u8 + 1);
        }
    }

    #[test]
    fn eviction_writes_dirty_pages() {
        let dir = TempDir::new("page_cache_evict");
        let path = dir.path().join("store");
        let cache = PageCache::open(&path, 2).unwrap();
        cache.with_page_mut(0, |b| b[1] = 1).unwrap();
        cache.with_page_mut(1, |b| b[1] = 2).unwrap();
        // This forces eviction of page 0 (least recently used).
        cache.with_page_mut(2, |b| b[1] = 3).unwrap();
        assert_eq!(cache.resident_pages(), 2);
        // Page 0 must have been written back and is still readable.
        assert_eq!(cache.with_page(0, |b| b[1]).unwrap(), 1);
        let stats = cache.stats();
        assert!(stats.evictions >= 1);
        assert!(stats.pages_flushed >= 1);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let dir = TempDir::new("page_cache_stats");
        let cache = PageCache::open(dir.path().join("store"), 4).unwrap();
        cache.with_page(0, |_| ()).unwrap();
        cache.with_page(0, |_| ()).unwrap();
        cache.with_page(1, |_| ()).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn known_pages_accounts_for_cached_growth() {
        let dir = TempDir::new("page_cache_known");
        let cache = PageCache::open(dir.path().join("store"), 4).unwrap();
        assert_eq!(cache.known_pages(), 0);
        cache.with_page_mut(5, |b| b[0] = 1).unwrap();
        assert_eq!(cache.known_pages(), 6);
        cache.flush().unwrap();
        assert_eq!(cache.known_pages(), 6);
    }

    #[test]
    fn capacity_zero_is_usable() {
        let dir = TempDir::new("page_cache_zero_cap");
        let cache = PageCache::open(dir.path().join("store"), 0).unwrap();
        cache.with_page_mut(0, |b| b[0] = 5).unwrap();
        assert_eq!(cache.with_page(0, |b| b[0]).unwrap(), 5);
    }
}
