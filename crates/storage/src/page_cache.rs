//! A small page cache sitting between the record stores and their files.
//!
//! Each store file gets its own [`PageCache`]. Pages are loaded on demand,
//! kept pinned in memory up to a configurable capacity and evicted with an
//! LRU policy, writing dirty pages back to the file on eviction and on
//! [`PageCache::flush`].
//!
//! ## Integrity
//!
//! Every write-back seals the page's integrity trailer (CRC + stamp, see
//! [`crate::pages`]), so the on-disk image always carries a checksum. On
//! fault-in the trailer is verified (when `verify_on_read` is on, the
//! default) and a mismatch surfaces as a typed
//! [`StorageError::PageChecksum`] instead of decoding garbage. During
//! recovery the cache can be switched into a permissive mode
//! ([`PageCache::begin_recovery`]) that *collects* checksum-failed pages
//! as suspects instead of failing: WAL replay then rewrites the records
//! it covers, and [`PageCache::end_recovery`] reports which suspects were
//! rebuilt (dirtied by replay — a torn write healed) and which remain
//! unexplained (fatal corruption).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::pages::{Page, PageVerdict, PAGE_SIZE};

/// Counters describing page-cache behaviour, useful for the storage
/// experiments (E7) and for tuning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageCacheStats {
    /// Page requests satisfied from memory.
    pub hits: u64,
    /// Page requests that had to read the file.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back to the file.
    pub pages_flushed: u64,
    /// Individual record writes that dirtied a page.
    pub record_writes: u64,
    /// Pages whose trailer failed verification on fault-in (fatal reads
    /// and recovery-mode suspects both count).
    pub checksum_failures: u64,
    /// Recovery-mode suspect pages rebuilt by WAL replay.
    pub torn_pages_recovered: u64,
}

/// A write-back fault the cache can be armed to inject, for crash-matrix
/// tests (the storage analogue of `Wal::fail_syncs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageFault {
    /// Only the first half of the page image reaches the file; the rest
    /// keeps whatever the disk held before (a torn sector write).
    TornHalf,
    /// The write is silently dropped: the file keeps the previous page
    /// image, whose trailer is internally consistent but stale.
    Stale,
    /// The full image is written with one bit flipped mid-body.
    BitFlip,
}

/// Result of one bounded [`PageCache::verify_pages`] sweep.
#[derive(Clone, Debug, Default)]
pub struct VerifySweep {
    /// Pages examined in this sweep (resident pages count as checked —
    /// the in-memory copy is authoritative and reseals at flush).
    pub checked: u64,
    /// Corrupt on-disk pages as `(page, computed_crc, stored_crc)`.
    pub corrupt: Vec<(u64, u32, u32)>,
    /// Where the next sweep should start, or `None` when the file is
    /// exhausted.
    pub next: Option<u64>,
}

/// What [`PageCache::end_recovery`] found: suspects rebuilt by replay and
/// suspects nothing rewrote.
#[derive(Clone, Debug, Default)]
pub struct RecoveryOutcome {
    /// Checksum-failed pages that WAL replay dirtied — torn writes fully
    /// covered by the log, rebuilt in memory and re-sealed at next flush.
    pub recovered: Vec<u64>,
    /// Checksum-failed pages replay never touched, with the CRC pair
    /// `(computed, stored)` observed at fault-in. Unexplainable by a torn
    /// write: fatal corruption.
    pub unresolved: Vec<(u64, u32, u32)>,
}

struct Frame {
    page: Page,
    dirty: bool,
    last_used: u64,
}

struct CacheInner {
    file: File,
    frames: HashMap<u64, Frame>,
    tick: u64,
    stats: PageCacheStats,
    /// Number of pages the backing file is known to contain.
    file_pages: u64,
    /// When `Some`, fault-ins that fail verification are recorded here
    /// (page → CRC pair) instead of erroring — recovery mode.
    suspects: Option<HashMap<u64, (u32, u32)>>,
    /// Suspect pages rewritten while recovery mode was active.
    recovered: Vec<u64>,
    /// One-shot write-back fault to inject, if armed.
    fault: Option<PageFault>,
}

/// An LRU page cache over a single store file.
pub struct PageCache {
    path: PathBuf,
    capacity: usize,
    verify_on_read: bool,
    /// Stamp written into page trailers at write-back (checkpoint epoch;
    /// purely diagnostic).
    stamp: AtomicU64,
    inner: Mutex<CacheInner>,
}

impl PageCache {
    /// Opens (creating if necessary) the file at `path` with room for
    /// `capacity` cached pages and checksum verification on fault-in. A
    /// capacity of zero is rounded up to one.
    pub fn open(path: impl AsRef<Path>, capacity: usize) -> Result<Self> {
        Self::open_with(path, capacity, true)
    }

    /// [`PageCache::open`] with an explicit `verify_on_read` choice.
    /// Short-read tails with non-zero bytes are still rejected even when
    /// verification is off — those are unambiguous torn writes.
    pub fn open_with(
        path: impl AsRef<Path>,
        capacity: usize,
        verify_on_read: bool,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|source| StorageError::OpenFailed {
                path: path.clone(),
                source,
            })?;
        let len = file
            .metadata()
            .map_err(|e| StorageError::io("reading file metadata", e))?
            .len();
        let file_pages = len.div_ceil(PAGE_SIZE as u64);
        Ok(PageCache {
            path,
            capacity: capacity.max(1),
            verify_on_read,
            stamp: AtomicU64::new(0),
            // Lock-order rank: see the README's lock-rank map (a leaf —
            // never held across another acquisition).
            inner: Mutex::with_rank(
                CacheInner {
                    file,
                    frames: HashMap::new(),
                    tick: 0,
                    stats: PageCacheStats::default(),
                    file_pages,
                    suspects: None,
                    recovered: Vec::new(),
                    fault: None,
                },
                2710,
                "storage.page_cache",
            ),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The file name of the backing file, for error reporting.
    fn file_name(&self) -> String {
        self.path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| self.path.display().to_string())
    }

    /// Sets the stamp sealed into page trailers at write-back. The core
    /// points this at the checkpoint epoch so a corrupted page can be
    /// dated; it never participates in verification.
    pub fn set_stamp(&self, stamp: u64) {
        self.stamp.store(stamp, Ordering::Relaxed);
    }

    /// Arms a one-shot write-back fault: the next page written back
    /// suffers `fault` while the cache pretends the write succeeded —
    /// exactly what a crash between DMA and completion does. Testing hook
    /// for the store crash-point matrix.
    pub fn inject_write_fault(&self, fault: PageFault) {
        self.inner.lock().fault = Some(fault);
    }

    /// Enters recovery mode: fault-ins that fail verification are
    /// recorded as suspects and served as-read instead of erroring, so
    /// WAL replay can rebuild the records it covers.
    pub fn begin_recovery(&self) {
        let mut inner = self.inner.lock();
        if inner.suspects.is_none() {
            inner.suspects = Some(HashMap::new());
        }
        inner.recovered.clear();
    }

    /// Leaves recovery mode, reporting which suspects replay rebuilt and
    /// which remain unexplained (see [`RecoveryOutcome`]).
    pub fn end_recovery(&self) -> RecoveryOutcome {
        let mut inner = self.inner.lock();
        let suspects = inner.suspects.take().unwrap_or_default();
        let mut unresolved: Vec<(u64, u32, u32)> =
            suspects.into_iter().map(|(p, (e, f))| (p, e, f)).collect();
        unresolved.sort_unstable();
        let recovered = std::mem::take(&mut inner.recovered);
        inner.stats.torn_pages_recovered += recovered.len() as u64;
        RecoveryOutcome {
            recovered,
            unresolved,
        }
    }

    /// Number of pages the backing file currently holds (including pages
    /// only present in the cache and not yet flushed).
    pub fn known_pages(&self) -> u64 {
        let inner = self.inner.lock();
        let cached_max = inner.frames.keys().max().map_or(0, |p| p + 1);
        inner.file_pages.max(cached_max)
    }

    /// Runs `f` over a read-only view of page `page_no`.
    pub fn with_page<R>(&self, page_no: u64, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.ensure_loaded(&mut inner, page_no)?;
        inner.tick += 1;
        let tick = inner.tick;
        let frame = inner.frames.get_mut(&page_no).expect("page just loaded");
        frame.last_used = tick;
        Ok(f(frame.page.bytes()))
    }

    /// Runs `f` over a mutable view of page `page_no`, marking it dirty.
    pub fn with_page_mut<R>(&self, page_no: u64, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.ensure_loaded(&mut inner, page_no)?;
        inner.tick += 1;
        inner.stats.record_writes += 1;
        // A suspect page being rewritten during recovery is a torn write
        // the WAL covers: replay is rebuilding it.
        if let Some(suspects) = inner.suspects.as_mut() {
            if suspects.remove(&page_no).is_some() {
                inner.recovered.push(page_no);
            }
        }
        let tick = inner.tick;
        let frame = inner.frames.get_mut(&page_no).expect("page just loaded");
        frame.last_used = tick;
        frame.dirty = true;
        Ok(f(frame.page.bytes_mut()))
    }

    /// Writes every dirty page back to the file and syncs it.
    pub fn flush(&self) -> Result<()> {
        let stamp = self.stamp.load(Ordering::Relaxed);
        let mut inner = self.inner.lock();
        let dirty: Vec<u64> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&p, _)| p)
            .collect();
        for page_no in dirty {
            Self::write_back(&mut inner, page_no, stamp)?;
        }
        inner
            .file
            .sync_data()
            .map_err(|e| StorageError::io("syncing store file", e))?;
        Ok(())
    }

    /// Fuzzy-checkpoint flush: writes back the pages that are dirty *when
    /// the call starts*, at most `chunk` pages per lock acquisition, then
    /// syncs the file. Returns the number of pages written back.
    ///
    /// Unlike [`PageCache::flush`], the lock is released between chunks so
    /// concurrent record writes keep landing while the flush makes
    /// progress — the checkpoint cursor. Pages dirtied *after* the initial
    /// snapshot are deliberately left dirty: they belong to commits the
    /// checkpoint does not cover (their WAL records sit after the
    /// checkpoint-begin mark and will be replayed), and skipping them is
    /// what makes the loop terminate under sustained write load.
    pub fn flush_incremental(&self, chunk: usize) -> Result<u64> {
        let chunk = chunk.max(1);
        let stamp = self.stamp.load(Ordering::Relaxed);
        let dirty: Vec<u64> = {
            let inner = self.inner.lock();
            inner
                .frames
                .iter()
                .filter(|(_, f)| f.dirty)
                .map(|(&p, _)| p)
                .collect()
        };
        let mut flushed = 0u64;
        for batch in dirty.chunks(chunk) {
            let mut inner = self.inner.lock();
            for &page_no in batch {
                // A page may have been evicted (already written back)
                // since the snapshot; only still-resident dirty pages need
                // work.
                if inner.frames.get(&page_no).is_some_and(|f| f.dirty) {
                    Self::write_back(&mut inner, page_no, stamp)?;
                    flushed += 1;
                }
            }
        }
        // Sync on a duplicated descriptor so the cache lock is *not* held
        // across the fsync — concurrent record writes keep landing while
        // the kernel drains the writeback.
        let file = {
            let inner = self.inner.lock();
            inner
                .file
                .try_clone()
                .map_err(|e| StorageError::io("cloning store file for sync", e))?
        };
        file.sync_data()
            .map_err(|e| StorageError::io("syncing store file", e))?;
        Ok(flushed)
    }

    /// Verifies the trailer checksums of up to `max` pages starting at
    /// `start`, holding the cache lock for the whole sweep so a
    /// concurrent write-back cannot be observed half-written (the caller
    /// bounds `max` to keep each lock hold short — the
    /// `flush_incremental` pattern). Pages resident in the cache are
    /// trusted as-is: the in-memory copy is authoritative and is
    /// re-sealed at flush, so only their on-disk shadow could mismatch —
    /// by design, never a finding. Does not populate the cache.
    pub fn verify_pages(&self, start: u64, max: usize) -> Result<VerifySweep> {
        let max = max.max(1) as u64;
        let mut inner = self.inner.lock();
        let total = {
            let cached_max = inner.frames.keys().max().map_or(0, |p| p + 1);
            inner.file_pages.max(cached_max)
        };
        let end = total.min(start.saturating_add(max));
        let mut sweep = VerifySweep::default();
        let mut buf = vec![0u8; PAGE_SIZE];
        for page_no in start..end {
            sweep.checked += 1;
            if inner.frames.contains_key(&page_no) {
                continue;
            }
            if page_no >= inner.file_pages {
                continue;
            }
            buf.fill(0);
            inner
                .file
                .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))
                .map_err(|e| StorageError::io("seeking store file", e))?;
            let mut read = 0usize;
            while read < PAGE_SIZE {
                match inner.file.read(&mut buf[read..]) {
                    Ok(0) => break,
                    Ok(n) => read += n,
                    Err(e) => return Err(StorageError::io("reading store page", e)),
                }
            }
            if let PageVerdict::Corrupt { expected, found } = Page::from_bytes(&buf).verify() {
                sweep.corrupt.push((page_no, expected, found));
            }
        }
        sweep.next = (end < total).then_some(end);
        Ok(sweep)
    }

    /// Returns a snapshot of the cache counters.
    pub fn stats(&self) -> PageCacheStats {
        self.inner.lock().stats
    }

    /// Number of pages currently resident in the cache.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    fn ensure_loaded(&self, inner: &mut CacheInner, page_no: u64) -> Result<()> {
        if inner.frames.contains_key(&page_no) {
            inner.stats.hits += 1;
            return Ok(());
        }
        inner.stats.misses += 1;
        // Evict if at capacity.
        while inner.frames.len() >= self.capacity {
            let victim = inner
                .frames
                .iter()
                .min_by_key(|(_, f)| f.last_used)
                .map(|(&p, _)| p)
                .expect("non-empty cache");
            if inner.frames[&victim].dirty {
                let stamp = self.stamp.load(Ordering::Relaxed);
                Self::write_back(inner, victim, stamp)?;
            }
            inner.frames.remove(&victim);
            inner.stats.evictions += 1;
        }
        // Load the page (or a zero page if it lies beyond EOF).
        let page = if page_no < inner.file_pages {
            let mut buf = vec![0u8; PAGE_SIZE];
            inner
                .file
                .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))
                .map_err(|e| StorageError::io("seeking store file", e))?;
            let mut read = 0usize;
            while read < PAGE_SIZE {
                match inner.file.read(&mut buf[read..]) {
                    Ok(0) => break,
                    Ok(n) => read += n,
                    Err(e) => return Err(StorageError::io("reading store page", e)),
                }
            }
            let page = Page::from_bytes(&buf);
            // A short tail is legitimate only while it is all zeros (a
            // crash between file extension and the page write); any other
            // short or full page must verify. Short non-zero tails are
            // checked even when verification is off — they are
            // unambiguous torn writes, not a knob-dependent judgement.
            let short_read = read < PAGE_SIZE;
            if self.verify_on_read || short_read {
                match page.verify() {
                    PageVerdict::AllZero | PageVerdict::Valid { .. } => {}
                    PageVerdict::Corrupt { expected, found } => {
                        inner.stats.checksum_failures += 1;
                        if let Some(suspects) = inner.suspects.as_mut() {
                            suspects.entry(page_no).or_insert((expected, found));
                        } else {
                            return Err(StorageError::PageChecksum {
                                file: self.file_name(),
                                page: page_no,
                                expected,
                                found,
                            });
                        }
                    }
                }
            }
            page
        } else {
            Page::zeroed()
        };
        inner.tick += 1;
        let tick = inner.tick;
        inner.frames.insert(
            page_no,
            Frame {
                page,
                dirty: false,
                last_used: tick,
            },
        );
        Ok(())
    }

    fn write_back(inner: &mut CacheInner, page_no: u64, stamp: u64) -> Result<()> {
        let fault = inner.fault.take();
        // Destructured borrows: the frame stays borrowed across the file
        // write without re-fetching it from the map.
        let CacheInner {
            frames,
            file,
            stats,
            file_pages,
            ..
        } = inner;
        let frame = frames.get_mut(&page_no).expect("frame present");
        frame.page.seal(stamp);
        let image: Vec<u8>;
        let bytes: &[u8] = match fault {
            None => frame.page.bytes(),
            Some(PageFault::TornHalf) => &frame.page.bytes()[..PAGE_SIZE / 2],
            Some(PageFault::Stale) => &[],
            Some(PageFault::BitFlip) => {
                let mut flipped = frame.page.bytes().to_vec();
                flipped[PAGE_SIZE / 4] ^= 0x20;
                image = flipped;
                &image
            }
        };
        if !bytes.is_empty() {
            file.seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))
                .map_err(|e| StorageError::io("seeking store file", e))?;
            file.write_all(bytes)
                .map_err(|e| StorageError::io("writing store page", e))?;
        }
        frame.dirty = false;
        stats.pages_flushed += 1;
        if page_no + 1 > *file_pages {
            *file_pages = page_no + 1;
        }
        Ok(())
    }
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("path", &self.path)
            .field("capacity", &self.capacity)
            .field("resident", &self.resident_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pages::PAGE_USABLE_SIZE;
    use crate::test_util::TempDir;

    #[test]
    fn read_beyond_eof_is_zero_page() {
        let dir = TempDir::new("page_cache_eof");
        let cache = PageCache::open(dir.path().join("store"), 4).unwrap();
        let all_zero = cache.with_page(10, |b| b.iter().all(|&x| x == 0)).unwrap();
        assert!(all_zero);
    }

    #[test]
    fn write_then_read_back_same_instance() {
        let dir = TempDir::new("page_cache_rw");
        let cache = PageCache::open(dir.path().join("store"), 4).unwrap();
        cache.with_page_mut(2, |b| b[100] = 42).unwrap();
        let v = cache.with_page(2, |b| b[100]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn flush_persists_across_reopen() {
        let dir = TempDir::new("page_cache_persist");
        let path = dir.path().join("store");
        let last = PAGE_USABLE_SIZE - 1;
        {
            let cache = PageCache::open(&path, 4).unwrap();
            cache.with_page_mut(0, |b| b[0] = 7).unwrap();
            cache.with_page_mut(3, |b| b[last] = 9).unwrap();
            cache.flush().unwrap();
        }
        let cache = PageCache::open(&path, 4).unwrap();
        assert_eq!(cache.with_page(0, |b| b[0]).unwrap(), 7);
        assert_eq!(cache.with_page(3, |b| b[last]).unwrap(), 9);
    }

    #[test]
    fn incremental_flush_covers_initially_dirty_pages() {
        let dir = TempDir::new("page_cache_incremental");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 8).unwrap();
            for p in 0..5u64 {
                cache.with_page_mut(p, |b| b[0] = p as u8 + 1).unwrap();
            }
            // Chunk smaller than the dirty set: several lock round-trips.
            assert_eq!(cache.flush_incremental(2).unwrap(), 5);
            // Everything is clean now; a second pass flushes nothing.
            assert_eq!(cache.flush_incremental(2).unwrap(), 0);
        }
        let cache = PageCache::open(&path, 8).unwrap();
        for p in 0..5u64 {
            assert_eq!(cache.with_page(p, |b| b[0]).unwrap(), p as u8 + 1);
        }
    }

    #[test]
    fn eviction_writes_dirty_pages() {
        let dir = TempDir::new("page_cache_evict");
        let path = dir.path().join("store");
        let cache = PageCache::open(&path, 2).unwrap();
        cache.with_page_mut(0, |b| b[1] = 1).unwrap();
        cache.with_page_mut(1, |b| b[1] = 2).unwrap();
        // This forces eviction of page 0 (least recently used).
        cache.with_page_mut(2, |b| b[1] = 3).unwrap();
        assert_eq!(cache.resident_pages(), 2);
        // Page 0 must have been written back and is still readable.
        assert_eq!(cache.with_page(0, |b| b[1]).unwrap(), 1);
        let stats = cache.stats();
        assert!(stats.evictions >= 1);
        assert!(stats.pages_flushed >= 1);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let dir = TempDir::new("page_cache_stats");
        let cache = PageCache::open(dir.path().join("store"), 4).unwrap();
        cache.with_page(0, |_| ()).unwrap();
        cache.with_page(0, |_| ()).unwrap();
        cache.with_page(1, |_| ()).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn known_pages_accounts_for_cached_growth() {
        let dir = TempDir::new("page_cache_known");
        let cache = PageCache::open(dir.path().join("store"), 4).unwrap();
        assert_eq!(cache.known_pages(), 0);
        cache.with_page_mut(5, |b| b[0] = 1).unwrap();
        assert_eq!(cache.known_pages(), 6);
        cache.flush().unwrap();
        assert_eq!(cache.known_pages(), 6);
    }

    #[test]
    fn capacity_zero_is_usable() {
        let dir = TempDir::new("page_cache_zero_cap");
        let cache = PageCache::open(dir.path().join("store"), 0).unwrap();
        cache.with_page_mut(0, |b| b[0] = 5).unwrap();
        assert_eq!(cache.with_page(0, |b| b[0]).unwrap(), 5);
    }

    /// Corrupts one byte of `page_no` directly in the file.
    fn flip_byte_on_disk(path: &Path, page_no: u64, offset: usize) {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .unwrap();
        let at = page_no * PAGE_SIZE as u64 + offset as u64;
        file.seek(SeekFrom::Start(at)).unwrap();
        let mut b = [0u8; 1];
        file.read_exact(&mut b).unwrap();
        b[0] ^= 0xFF;
        file.seek(SeekFrom::Start(at)).unwrap();
        file.write_all(&b).unwrap();
    }

    #[test]
    fn bit_flip_on_disk_surfaces_typed_checksum_error() {
        let dir = TempDir::new("page_cache_bitflip");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 4).unwrap();
            cache.with_page_mut(1, |b| b[10] = 99).unwrap();
            cache.flush().unwrap();
        }
        flip_byte_on_disk(&path, 1, 10);
        let cache = PageCache::open(&path, 4).unwrap();
        let err = cache.with_page(1, |_| ()).unwrap_err();
        match err {
            StorageError::PageChecksum {
                file,
                page,
                expected,
                found,
            } => {
                assert_eq!(file, "store");
                assert_eq!(page, 1);
                assert_ne!(expected, found);
            }
            other => panic!("expected PageChecksum, got {other}"),
        }
        assert_eq!(cache.stats().checksum_failures, 1);
        // An unaffected page still reads fine.
        assert!(cache.with_page(0, |b| b.iter().all(|&x| x == 0)).unwrap());
    }

    #[test]
    fn verification_can_be_disabled() {
        let dir = TempDir::new("page_cache_noverify");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 4).unwrap();
            cache.with_page_mut(0, |b| b[10] = 99).unwrap();
            cache.flush().unwrap();
        }
        flip_byte_on_disk(&path, 0, 10);
        let cache = PageCache::open_with(&path, 4, false).unwrap();
        // The flipped byte reads back without complaint: the knob is off.
        assert_eq!(cache.with_page(0, |b| b[10]).unwrap(), 99 ^ 0xFF);
    }

    /// The short-read audit: a torn tail with non-zero bytes is rejected
    /// even with verification off, while an all-zero tail (legitimate
    /// fresh extension) passes.
    #[test]
    fn short_nonzero_tail_is_corruption_even_unverified() {
        let dir = TempDir::new("page_cache_short");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 4).unwrap();
            cache.with_page_mut(0, |b| b[0] = 1).unwrap();
            cache.flush().unwrap();
        }
        // Truncate mid-page: a torn tail carrying real bytes.
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(100).unwrap();
        drop(file);
        let cache = PageCache::open_with(&path, 4, false).unwrap();
        assert!(matches!(
            cache.with_page(0, |_| ()).unwrap_err(),
            StorageError::PageChecksum { page: 0, .. }
        ));

        // An all-zero short tail is a fresh extension, not corruption.
        let path2 = dir.path().join("store2");
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path2)
            .unwrap();
        file.set_len(100).unwrap();
        drop(file);
        let cache = PageCache::open_with(&path2, 4, false).unwrap();
        assert!(cache.with_page(0, |b| b.iter().all(|&x| x == 0)).unwrap());
    }

    #[test]
    fn recovery_mode_collects_suspects_and_reports_rebuilt_pages() {
        let dir = TempDir::new("page_cache_recovery");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 4).unwrap();
            cache.with_page_mut(0, |b| b[0] = 1).unwrap();
            cache.with_page_mut(1, |b| b[0] = 2).unwrap();
            cache.flush().unwrap();
        }
        flip_byte_on_disk(&path, 0, 5);
        flip_byte_on_disk(&path, 1, 5);
        let cache = PageCache::open(&path, 4).unwrap();
        cache.begin_recovery();
        // Fault both pages in: no error, both become suspects.
        cache.with_page(0, |_| ()).unwrap();
        cache.with_page(1, |_| ()).unwrap();
        // "Replay" rewrites page 0 only.
        cache.with_page_mut(0, |b| b[0] = 7).unwrap();
        let outcome = cache.end_recovery();
        assert_eq!(outcome.recovered, vec![0]);
        assert_eq!(outcome.unresolved.len(), 1);
        assert_eq!(outcome.unresolved[0].0, 1);
        assert_eq!(cache.stats().torn_pages_recovered, 1);
        // After recovery mode ends, the unresolved page is fatal again
        // once it drops out of the cache; the rebuilt one flushes clean.
        cache.flush().unwrap();
        drop(cache);
        let cache = PageCache::open(&path, 4).unwrap();
        assert_eq!(cache.with_page(0, |b| b[0]).unwrap(), 7);
        assert!(matches!(
            cache.with_page(1, |_| ()).unwrap_err(),
            StorageError::PageChecksum { page: 1, .. }
        ));
    }

    #[test]
    fn injected_torn_half_write_is_caught_on_reopen() {
        let dir = TempDir::new("page_cache_fault_torn");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 4).unwrap();
            cache
                .with_page_mut(0, |b| {
                    for x in b[..PAGE_USABLE_SIZE].iter_mut() {
                        *x = 0xAB;
                    }
                })
                .unwrap();
            cache.inject_write_fault(PageFault::TornHalf);
            cache.flush().unwrap();
        }
        let cache = PageCache::open(&path, 4).unwrap();
        assert!(matches!(
            cache.with_page(0, |_| ()).unwrap_err(),
            StorageError::PageChecksum { page: 0, .. }
        ));
    }

    #[test]
    fn injected_bit_flip_is_caught_on_reopen() {
        let dir = TempDir::new("page_cache_fault_flip");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 4).unwrap();
            cache.with_page_mut(0, |b| b[0] = 1).unwrap();
            cache.inject_write_fault(PageFault::BitFlip);
            cache.flush().unwrap();
        }
        let cache = PageCache::open(&path, 4).unwrap();
        assert!(matches!(
            cache.with_page(0, |_| ()).unwrap_err(),
            StorageError::PageChecksum { page: 0, .. }
        ));
    }

    #[test]
    fn injected_stale_write_keeps_the_old_valid_image() {
        let dir = TempDir::new("page_cache_fault_stale");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 4).unwrap();
            cache.with_page_mut(0, |b| b[0] = 1).unwrap();
            cache.flush().unwrap();
            cache.with_page_mut(0, |b| b[0] = 2).unwrap();
            cache.inject_write_fault(PageFault::Stale);
            cache.flush().unwrap();
        }
        // The stale image carries a *valid* old checksum: undetectable at
        // the page layer by design (WAL replay or the verifier owns it).
        let cache = PageCache::open(&path, 4).unwrap();
        assert_eq!(cache.with_page(0, |b| b[0]).unwrap(), 1);
    }

    #[test]
    fn stamp_is_sealed_into_flushed_pages() {
        let dir = TempDir::new("page_cache_stamp");
        let path = dir.path().join("store");
        {
            let cache = PageCache::open(&path, 4).unwrap();
            cache.set_stamp(77);
            cache.with_page_mut(0, |b| b[0] = 1).unwrap();
            cache.flush().unwrap();
        }
        let cache = PageCache::open(&path, 4).unwrap();
        let verdict = cache
            .with_page(0, |b| Page::from_bytes(b).verify())
            .unwrap();
        assert_eq!(verdict, PageVerdict::Valid { stamp: 77 });
    }
}
