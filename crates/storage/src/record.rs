//! On-disk record formats.
//!
//! Mirroring Neo4j's native store layout, every entity kind lives in its own
//! store file made of **fixed-size records** whose file offset is derived
//! from the entity ID:
//!
//! * a node record points at the node's first relationship and first
//!   property and carries its (inline) label tokens,
//! * a relationship record stores the source and target node IDs, the
//!   per-node relationship chain pointers, the relationship type and the
//!   first property,
//! * a property record stores one key/value pair and a pointer to the next
//!   property of the same owner; over-long string values overflow into the
//!   dynamic store,
//! * a dynamic record is one block of an overflow chain.
//!
//! Record sizes are chosen to divide the page size evenly so a record never
//! straddles a page boundary.

use crate::error::{Result, StorageError};
use crate::ids::{
    DynamicRecordId, LabelToken, NodeId, PropertyKeyToken, PropertyRecordId, RelTypeToken,
    RelationshipId, NO_ID,
};

/// Size of a node record in bytes.
pub const NODE_RECORD_SIZE: usize = 64;
/// Size of a relationship record in bytes.
pub const RELATIONSHIP_RECORD_SIZE: usize = 64;
/// Size of a property record in bytes.
pub const PROPERTY_RECORD_SIZE: usize = 128;
/// Size of a dynamic (string overflow) record in bytes.
pub const DYNAMIC_RECORD_SIZE: usize = 128;
/// Maximum number of label tokens stored inline in a node record.
pub const MAX_INLINE_LABELS: usize = 8;
/// Maximum number of bytes of a string stored inline in a property record.
pub const PROPERTY_INLINE_STRING_MAX: usize = 110;
/// Payload bytes carried by one dynamic record.
pub const DYNAMIC_DATA_SIZE: usize = DYNAMIC_RECORD_SIZE - 11;

const IN_USE_FLAG: u8 = 0b0000_0001;

#[inline]
fn put_u32(buf: &mut [u8], offset: usize, value: u32) {
    buf[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
}

#[inline]
fn get_u32(buf: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(buf[offset..offset + 4].try_into().expect("4 bytes"))
}

#[inline]
fn put_u64(buf: &mut [u8], offset: usize, value: u64) {
    buf[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
}

#[inline]
fn get_u64(buf: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(buf[offset..offset + 8].try_into().expect("8 bytes"))
}

#[inline]
fn put_u16(buf: &mut [u8], offset: usize, value: u16) {
    buf[offset..offset + 2].copy_from_slice(&value.to_le_bytes());
}

#[inline]
fn get_u16(buf: &[u8], offset: usize) -> u16 {
    u16::from_le_bytes(buf[offset..offset + 2].try_into().expect("2 bytes"))
}

/// A node record: `flags | first_rel | first_prop | label_count | labels[8]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeRecord {
    /// Whether the record slot is in use.
    pub in_use: bool,
    /// First relationship in this node's relationship chain.
    pub first_rel: RelationshipId,
    /// First property in this node's property chain.
    pub first_prop: PropertyRecordId,
    /// Label tokens attached to the node (at most [`MAX_INLINE_LABELS`]).
    pub labels: Vec<LabelToken>,
}

impl Default for NodeRecord {
    fn default() -> Self {
        NodeRecord {
            in_use: false,
            first_rel: RelationshipId::NONE,
            first_prop: PropertyRecordId::NONE,
            labels: Vec::new(),
        }
    }
}

impl NodeRecord {
    /// Creates an in-use node record with no relationships, properties or
    /// labels.
    pub fn new_in_use() -> Self {
        NodeRecord {
            in_use: true,
            ..Default::default()
        }
    }

    /// Serialises the record into a fixed-size buffer.
    ///
    /// Returns an error if more than [`MAX_INLINE_LABELS`] labels are
    /// attached.
    pub fn encode(&self) -> Result<[u8; NODE_RECORD_SIZE]> {
        if self.labels.len() > MAX_INLINE_LABELS {
            return Err(StorageError::ValueTooLarge {
                size: self.labels.len(),
                max: MAX_INLINE_LABELS,
            });
        }
        let mut buf = [0u8; NODE_RECORD_SIZE];
        buf[0] = if self.in_use { IN_USE_FLAG } else { 0 };
        put_u64(&mut buf, 1, self.first_rel.raw());
        put_u64(&mut buf, 9, self.first_prop.raw());
        buf[17] = self.labels.len() as u8;
        for (i, label) in self.labels.iter().enumerate() {
            put_u32(&mut buf, 18 + i * 4, label.0);
        }
        Ok(buf)
    }

    /// Deserialises a record from a fixed-size buffer.
    pub fn decode(id: u64, buf: &[u8]) -> Result<Self> {
        if buf.len() < NODE_RECORD_SIZE {
            return Err(StorageError::corrupt("node", id, "short record buffer"));
        }
        let in_use = buf[0] & IN_USE_FLAG != 0;
        let label_count = buf[17] as usize;
        if label_count > MAX_INLINE_LABELS {
            return Err(StorageError::corrupt(
                "node",
                id,
                format!("label count {label_count} exceeds maximum"),
            ));
        }
        let mut labels = Vec::with_capacity(label_count);
        for i in 0..label_count {
            labels.push(LabelToken(get_u32(buf, 18 + i * 4)));
        }
        Ok(NodeRecord {
            in_use,
            first_rel: RelationshipId::new(get_u64(buf, 1)),
            first_prop: PropertyRecordId::new(get_u64(buf, 9)),
            labels,
        })
    }
}

/// A relationship record.
///
/// Relationships form two doubly linked chains, one threaded through the
/// source node's relationships and one through the target node's, exactly
/// as in Neo4j's store format. Walking a node's relationships therefore
/// never touches relationships of unrelated nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationshipRecord {
    /// Whether the record slot is in use.
    pub in_use: bool,
    /// Relationship type token.
    pub rel_type: RelTypeToken,
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
    /// Previous relationship in the source node's chain.
    pub source_prev: RelationshipId,
    /// Next relationship in the source node's chain.
    pub source_next: RelationshipId,
    /// Previous relationship in the target node's chain.
    pub target_prev: RelationshipId,
    /// Next relationship in the target node's chain.
    pub target_next: RelationshipId,
    /// First property in this relationship's property chain.
    pub first_prop: PropertyRecordId,
}

impl Default for RelationshipRecord {
    fn default() -> Self {
        RelationshipRecord {
            in_use: false,
            rel_type: RelTypeToken(0),
            source: NodeId::NONE,
            target: NodeId::NONE,
            source_prev: RelationshipId::NONE,
            source_next: RelationshipId::NONE,
            target_prev: RelationshipId::NONE,
            target_next: RelationshipId::NONE,
            first_prop: PropertyRecordId::NONE,
        }
    }
}

impl RelationshipRecord {
    /// Creates an in-use relationship record connecting `source` to
    /// `target` with the given type and empty chains.
    pub fn new_in_use(source: NodeId, target: NodeId, rel_type: RelTypeToken) -> Self {
        RelationshipRecord {
            in_use: true,
            rel_type,
            source,
            target,
            ..Default::default()
        }
    }

    /// Serialises the record into a fixed-size buffer.
    pub fn encode(&self) -> [u8; RELATIONSHIP_RECORD_SIZE] {
        let mut buf = [0u8; RELATIONSHIP_RECORD_SIZE];
        buf[0] = if self.in_use { IN_USE_FLAG } else { 0 };
        put_u32(&mut buf, 1, self.rel_type.0);
        put_u64(&mut buf, 5, self.source.raw());
        put_u64(&mut buf, 13, self.target.raw());
        put_u64(&mut buf, 21, self.source_prev.raw());
        put_u64(&mut buf, 29, self.source_next.raw());
        put_u64(&mut buf, 37, self.target_prev.raw());
        put_u64(&mut buf, 45, self.target_next.raw());
        put_u64(&mut buf, 53, self.first_prop.raw());
        buf
    }

    /// Deserialises a record from a fixed-size buffer.
    pub fn decode(id: u64, buf: &[u8]) -> Result<Self> {
        if buf.len() < RELATIONSHIP_RECORD_SIZE {
            return Err(StorageError::corrupt(
                "relationship",
                id,
                "short record buffer",
            ));
        }
        Ok(RelationshipRecord {
            in_use: buf[0] & IN_USE_FLAG != 0,
            rel_type: RelTypeToken(get_u32(buf, 1)),
            source: NodeId::new(get_u64(buf, 5)),
            target: NodeId::new(get_u64(buf, 13)),
            source_prev: RelationshipId::new(get_u64(buf, 21)),
            source_next: RelationshipId::new(get_u64(buf, 29)),
            target_prev: RelationshipId::new(get_u64(buf, 37)),
            target_next: RelationshipId::new(get_u64(buf, 45)),
            first_prop: PropertyRecordId::new(get_u64(buf, 53)),
        })
    }

    /// Returns the "other" end of the relationship relative to `node`.
    ///
    /// For self-loops both ends are the same node and that node is returned.
    pub fn other_node(&self, node: NodeId) -> NodeId {
        if self.source == node {
            self.target
        } else {
            self.source
        }
    }

    /// Returns the chain pointers (`prev`, `next`) for the given node's
    /// relationship chain.
    pub fn chain_for(&self, node: NodeId) -> (RelationshipId, RelationshipId) {
        if self.source == node {
            (self.source_prev, self.source_next)
        } else {
            (self.target_prev, self.target_next)
        }
    }

    /// Sets the chain pointers for the given node's relationship chain.
    pub fn set_chain_for(&mut self, node: NodeId, prev: RelationshipId, next: RelationshipId) {
        if self.source == node {
            self.source_prev = prev;
            self.source_next = next;
        }
        if self.target == node {
            self.target_prev = prev;
            self.target_next = next;
        }
    }
}

/// The value payload stored in a property record.
///
/// String values that fit inline are stored directly in the record; longer
/// strings are split across dynamic records and referenced by their first
/// dynamic record ID.
#[derive(Clone, Debug, PartialEq)]
pub enum StoredValue {
    /// Explicit null (the property exists, its value is null).
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// String short enough to be stored inline.
    InlineString(String),
    /// String stored in the dynamic store.
    DynamicString {
        /// First dynamic record of the overflow chain.
        first: DynamicRecordId,
        /// Total string length in bytes.
        len: u32,
    },
}

impl StoredValue {
    fn type_tag(&self) -> u8 {
        match self {
            StoredValue::Null => 0,
            StoredValue::Bool(_) => 1,
            StoredValue::Int(_) => 2,
            StoredValue::Float(_) => 3,
            StoredValue::InlineString(_) => 4,
            StoredValue::DynamicString { .. } => 5,
        }
    }
}

/// A property record: one key/value pair plus the next-property pointer.
#[derive(Clone, Debug, PartialEq)]
pub struct PropertyRecord {
    /// Whether the record slot is in use.
    pub in_use: bool,
    /// Property key token.
    pub key: PropertyKeyToken,
    /// Next property record of the same owner.
    pub next: PropertyRecordId,
    /// The stored value.
    pub value: StoredValue,
}

impl Default for PropertyRecord {
    fn default() -> Self {
        PropertyRecord {
            in_use: false,
            key: PropertyKeyToken(0),
            next: PropertyRecordId::NONE,
            value: StoredValue::Null,
        }
    }
}

impl PropertyRecord {
    /// Creates an in-use property record holding `value` under `key`.
    pub fn new_in_use(key: PropertyKeyToken, value: StoredValue) -> Self {
        PropertyRecord {
            in_use: true,
            key,
            next: PropertyRecordId::NONE,
            value,
        }
    }

    /// Serialises the record into a fixed-size buffer.
    pub fn encode(&self) -> Result<[u8; PROPERTY_RECORD_SIZE]> {
        let mut buf = [0u8; PROPERTY_RECORD_SIZE];
        buf[0] = if self.in_use { IN_USE_FLAG } else { 0 };
        put_u32(&mut buf, 1, self.key.0);
        put_u64(&mut buf, 5, self.next.raw());
        buf[13] = self.value.type_tag();
        match &self.value {
            StoredValue::Null => {}
            StoredValue::Bool(b) => buf[14] = u8::from(*b),
            StoredValue::Int(i) => put_u64(&mut buf, 14, *i as u64),
            StoredValue::Float(x) => put_u64(&mut buf, 14, x.to_bits()),
            StoredValue::InlineString(s) => {
                let bytes = s.as_bytes();
                if bytes.len() > PROPERTY_INLINE_STRING_MAX {
                    return Err(StorageError::ValueTooLarge {
                        size: bytes.len(),
                        max: PROPERTY_INLINE_STRING_MAX,
                    });
                }
                put_u16(&mut buf, 14, bytes.len() as u16);
                buf[16..16 + bytes.len()].copy_from_slice(bytes);
            }
            StoredValue::DynamicString { first, len } => {
                put_u64(&mut buf, 14, first.raw());
                put_u32(&mut buf, 22, *len);
            }
        }
        Ok(buf)
    }

    /// Deserialises a record from a fixed-size buffer.
    pub fn decode(id: u64, buf: &[u8]) -> Result<Self> {
        if buf.len() < PROPERTY_RECORD_SIZE {
            return Err(StorageError::corrupt("property", id, "short record buffer"));
        }
        let in_use = buf[0] & IN_USE_FLAG != 0;
        let key = PropertyKeyToken(get_u32(buf, 1));
        let next = PropertyRecordId::new(get_u64(buf, 5));
        let value = match buf[13] {
            0 => StoredValue::Null,
            1 => StoredValue::Bool(buf[14] != 0),
            2 => StoredValue::Int(get_u64(buf, 14) as i64),
            3 => StoredValue::Float(f64::from_bits(get_u64(buf, 14))),
            4 => {
                let len = get_u16(buf, 14) as usize;
                if len > PROPERTY_INLINE_STRING_MAX {
                    return Err(StorageError::corrupt(
                        "property",
                        id,
                        format!("inline string length {len} exceeds maximum"),
                    ));
                }
                let bytes = &buf[16..16 + len];
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| StorageError::corrupt("property", id, "invalid UTF-8"))?;
                StoredValue::InlineString(s.to_owned())
            }
            5 => StoredValue::DynamicString {
                first: DynamicRecordId::new(get_u64(buf, 14)),
                len: get_u32(buf, 22),
            },
            other => {
                return Err(StorageError::corrupt(
                    "property",
                    id,
                    format!("unknown value type tag {other}"),
                ))
            }
        };
        Ok(PropertyRecord {
            in_use,
            key,
            next,
            value,
        })
    }
}

/// One block of an overflow (dynamic) chain used for long string values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynamicRecord {
    /// Whether the record slot is in use.
    pub in_use: bool,
    /// Next block in the chain.
    pub next: DynamicRecordId,
    /// Payload bytes held by this block.
    pub data: Vec<u8>,
}

impl Default for DynamicRecord {
    fn default() -> Self {
        DynamicRecord {
            in_use: false,
            next: DynamicRecordId::NONE,
            data: Vec::new(),
        }
    }
}

impl DynamicRecord {
    /// Creates an in-use dynamic record holding `data`.
    pub fn new_in_use(data: Vec<u8>) -> Self {
        DynamicRecord {
            in_use: true,
            next: DynamicRecordId::NONE,
            data,
        }
    }

    /// Serialises the record into a fixed-size buffer.
    pub fn encode(&self) -> Result<[u8; DYNAMIC_RECORD_SIZE]> {
        if self.data.len() > DYNAMIC_DATA_SIZE {
            return Err(StorageError::ValueTooLarge {
                size: self.data.len(),
                max: DYNAMIC_DATA_SIZE,
            });
        }
        let mut buf = [0u8; DYNAMIC_RECORD_SIZE];
        buf[0] = if self.in_use { IN_USE_FLAG } else { 0 };
        put_u64(&mut buf, 1, self.next.raw());
        put_u16(&mut buf, 9, self.data.len() as u16);
        buf[11..11 + self.data.len()].copy_from_slice(&self.data);
        Ok(buf)
    }

    /// Deserialises a record from a fixed-size buffer.
    pub fn decode(id: u64, buf: &[u8]) -> Result<Self> {
        if buf.len() < DYNAMIC_RECORD_SIZE {
            return Err(StorageError::corrupt("dynamic", id, "short record buffer"));
        }
        let len = get_u16(buf, 9) as usize;
        if len > DYNAMIC_DATA_SIZE {
            return Err(StorageError::corrupt(
                "dynamic",
                id,
                format!("data length {len} exceeds block size"),
            ));
        }
        Ok(DynamicRecord {
            in_use: buf[0] & IN_USE_FLAG != 0,
            next: DynamicRecordId::new(get_u64(buf, 1)),
            data: buf[11..11 + len].to_vec(),
        })
    }
}

/// Sanity check: every record size must fit at least one record into the
/// usable (pre-trailer) area of a page, and records are packed from the
/// page start so none can straddle into the integrity trailer as long as
/// `usable_size / record_size` records are placed per page (see
/// [`crate::pages::records_per_page`]).
pub const fn record_sizes_fit_usable_page(usable_size: usize) -> bool {
    usable_size / NODE_RECORD_SIZE >= 1
        && usable_size / RELATIONSHIP_RECORD_SIZE >= 1
        && usable_size / PROPERTY_RECORD_SIZE >= 1
        && usable_size / DYNAMIC_RECORD_SIZE >= 1
}

/// Helper re-exported for chain manipulation: the raw `NO_ID` sentinel.
pub const CHAIN_END: u64 = NO_ID;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn node_record_roundtrip() {
        let mut rec = NodeRecord::new_in_use();
        rec.first_rel = RelationshipId::new(17);
        rec.first_prop = PropertyRecordId::new(99);
        rec.labels = vec![LabelToken(1), LabelToken(7), LabelToken(42)];
        let buf = rec.encode().unwrap();
        let back = NodeRecord::decode(0, &buf).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn node_record_default_is_not_in_use() {
        let rec = NodeRecord::default();
        let buf = rec.encode().unwrap();
        let back = NodeRecord::decode(0, &buf).unwrap();
        assert!(!back.in_use);
        assert!(back.first_rel.is_none());
        assert!(back.labels.is_empty());
    }

    #[test]
    fn node_record_too_many_labels_rejected() {
        let mut rec = NodeRecord::new_in_use();
        rec.labels = (0..9).map(LabelToken).collect();
        assert!(rec.encode().is_err());
    }

    #[test]
    fn node_record_corrupt_label_count() {
        let mut buf = NodeRecord::new_in_use().encode().unwrap();
        buf[17] = 200;
        assert!(NodeRecord::decode(3, &buf).is_err());
    }

    #[test]
    fn relationship_record_roundtrip() {
        let mut rec =
            RelationshipRecord::new_in_use(NodeId::new(1), NodeId::new(2), RelTypeToken(5));
        rec.source_next = RelationshipId::new(10);
        rec.target_prev = RelationshipId::new(20);
        rec.first_prop = PropertyRecordId::new(30);
        let buf = rec.encode();
        let back = RelationshipRecord::decode(0, &buf).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn relationship_other_node_and_chain() {
        let mut rec =
            RelationshipRecord::new_in_use(NodeId::new(1), NodeId::new(2), RelTypeToken(0));
        assert_eq!(rec.other_node(NodeId::new(1)), NodeId::new(2));
        assert_eq!(rec.other_node(NodeId::new(2)), NodeId::new(1));
        rec.set_chain_for(
            NodeId::new(1),
            RelationshipId::new(7),
            RelationshipId::new(8),
        );
        assert_eq!(
            rec.chain_for(NodeId::new(1)),
            (RelationshipId::new(7), RelationshipId::new(8))
        );
        assert_eq!(
            rec.chain_for(NodeId::new(2)),
            (RelationshipId::NONE, RelationshipId::NONE)
        );
    }

    #[test]
    fn self_loop_chain_updates_both_ends() {
        let mut rec =
            RelationshipRecord::new_in_use(NodeId::new(3), NodeId::new(3), RelTypeToken(0));
        rec.set_chain_for(
            NodeId::new(3),
            RelationshipId::new(1),
            RelationshipId::new(2),
        );
        assert_eq!(rec.source_prev, RelationshipId::new(1));
        assert_eq!(rec.target_prev, RelationshipId::new(1));
        assert_eq!(rec.other_node(NodeId::new(3)), NodeId::new(3));
    }

    #[test]
    fn property_record_roundtrips_all_types() {
        let values = vec![
            StoredValue::Null,
            StoredValue::Bool(true),
            StoredValue::Bool(false),
            StoredValue::Int(-12345),
            StoredValue::Int(i64::MAX),
            StoredValue::Float(3.5),
            StoredValue::Float(f64::NEG_INFINITY),
            StoredValue::InlineString("hello".to_owned()),
            StoredValue::InlineString(String::new()),
            StoredValue::DynamicString {
                first: DynamicRecordId::new(12),
                len: 4096,
            },
        ];
        for value in values {
            let mut rec = PropertyRecord::new_in_use(PropertyKeyToken(3), value.clone());
            rec.next = PropertyRecordId::new(55);
            let buf = rec.encode().unwrap();
            let back = PropertyRecord::decode(0, &buf).unwrap();
            assert_eq!(rec, back, "value {value:?}");
        }
    }

    #[test]
    fn property_record_rejects_over_long_inline_string() {
        let s = "x".repeat(PROPERTY_INLINE_STRING_MAX + 1);
        let rec = PropertyRecord::new_in_use(PropertyKeyToken(0), StoredValue::InlineString(s));
        assert!(rec.encode().is_err());
    }

    #[test]
    fn property_record_rejects_unknown_tag() {
        let rec = PropertyRecord::new_in_use(PropertyKeyToken(0), StoredValue::Null);
        let mut buf = rec.encode().unwrap();
        buf[13] = 99;
        assert!(PropertyRecord::decode(0, &buf).is_err());
    }

    #[test]
    fn dynamic_record_roundtrip() {
        let mut rec = DynamicRecord::new_in_use(vec![1, 2, 3, 4, 5]);
        rec.next = DynamicRecordId::new(77);
        let buf = rec.encode().unwrap();
        let back = DynamicRecord::decode(0, &buf).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn dynamic_record_rejects_oversized_payload() {
        let rec = DynamicRecord::new_in_use(vec![0u8; DYNAMIC_DATA_SIZE + 1]);
        assert!(rec.encode().is_err());
    }

    #[test]
    fn record_sizes_fit_the_usable_page() {
        assert!(record_sizes_fit_usable_page(crate::pages::PAGE_USABLE_SIZE));
        // The per-page packing derived from the usable area never reaches
        // into the 16-byte integrity trailer.
        for size in [
            NODE_RECORD_SIZE,
            RELATIONSHIP_RECORD_SIZE,
            PROPERTY_RECORD_SIZE,
            DYNAMIC_RECORD_SIZE,
        ] {
            let per_page = crate::pages::records_per_page(size) as usize;
            assert!(per_page >= 1);
            assert!(per_page * size <= crate::pages::PAGE_USABLE_SIZE);
        }
    }

    proptest! {
        #[test]
        fn prop_node_record_roundtrip(
            first_rel in proptest::option::of(0u64..1_000_000),
            first_prop in proptest::option::of(0u64..1_000_000),
            labels in proptest::collection::vec(0u32..10_000, 0..=MAX_INLINE_LABELS),
        ) {
            let rec = NodeRecord {
                in_use: true,
                first_rel: first_rel.map(RelationshipId::new).unwrap_or(RelationshipId::NONE),
                first_prop: first_prop.map(PropertyRecordId::new).unwrap_or(PropertyRecordId::NONE),
                labels: labels.into_iter().map(LabelToken).collect(),
            };
            let buf = rec.encode().unwrap();
            prop_assert_eq!(NodeRecord::decode(0, &buf).unwrap(), rec);
        }

        #[test]
        fn prop_relationship_record_roundtrip(
            src in 0u64..1_000_000,
            dst in 0u64..1_000_000,
            rel_type in 0u32..1_000,
            sp in 0u64..1_000_000,
            sn in 0u64..1_000_000,
            tp in 0u64..1_000_000,
            tn in 0u64..1_000_000,
        ) {
            let rec = RelationshipRecord {
                in_use: true,
                rel_type: RelTypeToken(rel_type),
                source: NodeId::new(src),
                target: NodeId::new(dst),
                source_prev: RelationshipId::new(sp),
                source_next: RelationshipId::new(sn),
                target_prev: RelationshipId::new(tp),
                target_next: RelationshipId::new(tn),
                first_prop: PropertyRecordId::NONE,
            };
            let buf = rec.encode();
            prop_assert_eq!(RelationshipRecord::decode(0, &buf).unwrap(), rec);
        }

        #[test]
        fn prop_property_int_roundtrip(key in 0u32..100_000, v in proptest::num::i64::ANY) {
            let rec = PropertyRecord::new_in_use(PropertyKeyToken(key), StoredValue::Int(v));
            let buf = rec.encode().unwrap();
            prop_assert_eq!(PropertyRecord::decode(0, &buf).unwrap(), rec);
        }

        #[test]
        fn prop_property_string_roundtrip(s in "[a-zA-Z0-9 ]{0,100}") {
            let rec = PropertyRecord::new_in_use(
                PropertyKeyToken(1),
                StoredValue::InlineString(s),
            );
            let buf = rec.encode().unwrap();
            prop_assert_eq!(PropertyRecord::decode(0, &buf).unwrap(), rec);
        }

        #[test]
        fn prop_dynamic_roundtrip(data in proptest::collection::vec(proptest::num::u8::ANY, 0..=DYNAMIC_DATA_SIZE)) {
            let rec = DynamicRecord::new_in_use(data);
            let buf = rec.encode().unwrap();
            prop_assert_eq!(DynamicRecord::decode(0, &buf).unwrap(), rec);
        }
    }
}
