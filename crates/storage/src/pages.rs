//! Fixed-size pages, the unit of I/O between store files and the page
//! cache.

/// Size of a page in bytes. All record sizes divide this evenly so a record
/// never straddles a page boundary.
pub const PAGE_SIZE: usize = 8192;

/// An in-memory copy of one page of a store file.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// Creates a zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// Creates a page from raw bytes, zero-padding or truncating to
    /// [`PAGE_SIZE`].
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut data = vec![0u8; PAGE_SIZE];
        let n = bytes.len().min(PAGE_SIZE);
        data[..n].copy_from_slice(&bytes[..n]);
        Page {
            data: data.into_boxed_slice(),
        }
    }

    /// Read-only view of the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the page contents.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Returns the slice holding one record of `record_size` bytes at
    /// `offset_in_page`.
    #[inline]
    pub fn record(&self, offset_in_page: usize, record_size: usize) -> &[u8] {
        &self.data[offset_in_page..offset_in_page + record_size]
    }

    /// Returns the mutable slice holding one record of `record_size` bytes
    /// at `offset_in_page`.
    #[inline]
    pub fn record_mut(&mut self, offset_in_page: usize, record_size: usize) -> &mut [u8] {
        &mut self.data[offset_in_page..offset_in_page + record_size]
    }

    /// Returns `true` if every byte of the page is zero (i.e. no record in
    /// this page has ever been written).
    pub fn is_all_zero(&self) -> bool {
        self.data.iter().all(|&b| b == 0)
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes, zero={})", PAGE_SIZE, self.is_all_zero())
    }
}

/// Identifies the position of a record within a paged file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordLocation {
    /// Page number within the file.
    pub page_no: u64,
    /// Byte offset of the record within the page.
    pub offset_in_page: usize,
}

/// Computes where record `id` of a store with `record_size`-byte records
/// lives.
#[inline]
pub fn locate_record(id: u64, record_size: usize) -> RecordLocation {
    let records_per_page = (PAGE_SIZE / record_size) as u64;
    RecordLocation {
        page_no: id / records_per_page,
        offset_in_page: (id % records_per_page) as usize * record_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = Page::zeroed();
        assert!(p.is_all_zero());
        assert_eq!(p.bytes().len(), PAGE_SIZE);
    }

    #[test]
    fn from_bytes_pads_and_truncates() {
        let p = Page::from_bytes(&[1, 2, 3]);
        assert_eq!(&p.bytes()[..3], &[1, 2, 3]);
        assert!(p.bytes()[3..].iter().all(|&b| b == 0));

        let big = vec![7u8; PAGE_SIZE + 100];
        let p = Page::from_bytes(&big);
        assert_eq!(p.bytes().len(), PAGE_SIZE);
        assert!(p.bytes().iter().all(|&b| b == 7));
    }

    #[test]
    fn record_slices() {
        let mut p = Page::zeroed();
        p.record_mut(64, 64).copy_from_slice(&[9u8; 64]);
        assert!(p.record(64, 64).iter().all(|&b| b == 9));
        assert!(p.record(0, 64).iter().all(|&b| b == 0));
        assert!(!p.is_all_zero());
    }

    #[test]
    fn locate_record_small_ids() {
        let loc = locate_record(0, 64);
        assert_eq!(
            loc,
            RecordLocation {
                page_no: 0,
                offset_in_page: 0
            }
        );
        let loc = locate_record(1, 64);
        assert_eq!(
            loc,
            RecordLocation {
                page_no: 0,
                offset_in_page: 64
            }
        );
    }

    #[test]
    fn locate_record_page_boundaries() {
        let records_per_page = PAGE_SIZE / 64;
        let loc = locate_record(records_per_page as u64, 64);
        assert_eq!(loc.page_no, 1);
        assert_eq!(loc.offset_in_page, 0);
        let loc = locate_record(records_per_page as u64 - 1, 64);
        assert_eq!(loc.page_no, 0);
        assert_eq!(loc.offset_in_page, PAGE_SIZE - 64);
    }

    #[test]
    fn locate_record_larger_records() {
        let records_per_page = PAGE_SIZE / 128;
        let loc = locate_record(records_per_page as u64 * 3 + 5, 128);
        assert_eq!(loc.page_no, 3);
        assert_eq!(loc.offset_in_page, 5 * 128);
    }
}
