//! Fixed-size pages, the unit of I/O between store files and the page
//! cache.
//!
//! Every page ends in a 16-byte **integrity trailer**:
//!
//! ```text
//! +------------------------------+---------+---------+---------+
//! | record area (8176 bytes)     | magic   | stamp   | crc32   |
//! |                              | u32 LE  | u64 LE  | u32 LE  |
//! +------------------------------+---------+---------+---------+
//! ```
//!
//! The CRC covers everything before it (record area + magic + stamp), so
//! torn writes and bit flips are detected on fault-in instead of being
//! decoded as records. The stamp is a diagnostic checkpoint-epoch mark
//! written by the page cache at write-back — it tells an investigator
//! *when* a page was last persisted, but does not participate in
//! verification. An all-zero page is valid by definition: it is a page
//! that has never been written (record stores treat zero records as
//! not-in-use, and a fresh trailer of zeros carries no claim to check).
//!
//! Records are laid out only in the record area ([`PAGE_USABLE_SIZE`]);
//! [`locate_record`] floors the records-per-page division so no record
//! ever straddles into the trailer.

/// Size of a page in bytes, including the integrity trailer.
pub const PAGE_SIZE: usize = 8192;

/// Size of the integrity trailer at the end of every page.
pub const PAGE_TRAILER_SIZE: usize = 16;

/// Bytes of a page available to records (everything before the trailer).
pub const PAGE_USABLE_SIZE: usize = PAGE_SIZE - PAGE_TRAILER_SIZE;

/// Magic marker beginning every page trailer ("GSPG").
pub const PAGE_TRAILER_MAGIC: u32 = 0x4753_5047;

/// CRC-32 (IEEE 802.3) lookup table, built at compile time. The WAL crate
/// carries the same polynomial; it is replicated here because
/// `graphsi-storage` sits below `graphsi-wal` in the dependency order.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    const POLY: u32 = 0xEDB8_8320;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = (crc >> 1) ^ (POLY & (crc & 1).wrapping_neg());
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 (IEEE) checksum of `data`. Identical polynomial and
/// output to `graphsi_wal::crc::crc32`, but table-driven — this runs over
/// every 8 KiB page image on fault-in and write-back.
pub fn page_crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

/// Outcome of verifying one page image against its trailer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageVerdict {
    /// Every byte is zero: a page that has never been written. Valid.
    AllZero,
    /// The trailer is well-formed and the CRC matches the page image.
    Valid {
        /// The checkpoint-epoch stamp recorded at the last write-back.
        stamp: u64,
    },
    /// The trailer is missing, malformed or the CRC disagrees with the
    /// page image: a torn write, stale sector or bit flip.
    Corrupt {
        /// CRC computed over the page image as read.
        expected: u32,
        /// CRC stored in the trailer (zero when the trailer is absent).
        found: u32,
    },
}

/// An in-memory copy of one page of a store file.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// Creates a zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// Creates a page from raw bytes, zero-padding or truncating to
    /// [`PAGE_SIZE`].
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut data = vec![0u8; PAGE_SIZE];
        let n = bytes.len().min(PAGE_SIZE);
        data[..n].copy_from_slice(&bytes[..n]);
        Page {
            data: data.into_boxed_slice(),
        }
    }

    /// Read-only view of the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the page contents.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Returns the slice holding one record of `record_size` bytes at
    /// `offset_in_page`.
    #[inline]
    pub fn record(&self, offset_in_page: usize, record_size: usize) -> &[u8] {
        &self.data[offset_in_page..offset_in_page + record_size]
    }

    /// Returns the mutable slice holding one record of `record_size` bytes
    /// at `offset_in_page`.
    #[inline]
    pub fn record_mut(&mut self, offset_in_page: usize, record_size: usize) -> &mut [u8] {
        &mut self.data[offset_in_page..offset_in_page + record_size]
    }

    /// Returns `true` if every byte of the page is zero (i.e. no record in
    /// this page has ever been written).
    pub fn is_all_zero(&self) -> bool {
        self.data.iter().all(|&b| b == 0)
    }

    /// Writes the integrity trailer: magic, `stamp`, and a CRC over
    /// everything before the CRC field. Called by the page cache
    /// immediately before every write-back so the on-disk image always
    /// carries a matching checksum.
    pub fn seal(&mut self, stamp: u64) {
        let t = PAGE_USABLE_SIZE;
        self.data[t..t + 4].copy_from_slice(&PAGE_TRAILER_MAGIC.to_le_bytes());
        self.data[t + 4..t + 12].copy_from_slice(&stamp.to_le_bytes());
        let crc = page_crc32(&self.data[..PAGE_SIZE - 4]);
        self.data[PAGE_SIZE - 4..].copy_from_slice(&crc.to_le_bytes());
    }

    /// Verifies the page image against its trailer. See [`PageVerdict`]
    /// for the three outcomes; only `Corrupt` indicates a problem.
    pub fn verify(&self) -> PageVerdict {
        if self.is_all_zero() {
            return PageVerdict::AllZero;
        }
        let t = PAGE_USABLE_SIZE;
        let magic = read_u32(&self.data, t);
        let stamp = read_u64(&self.data, t + 4);
        let found = read_u32(&self.data, PAGE_SIZE - 4);
        let expected = page_crc32(&self.data[..PAGE_SIZE - 4]);
        if magic != PAGE_TRAILER_MAGIC || found != expected {
            return PageVerdict::Corrupt { expected, found };
        }
        PageVerdict::Valid { stamp }
    }
}

#[inline]
fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

#[inline]
fn read_u64(b: &[u8], at: usize) -> u64 {
    let mut out = [0u8; 8];
    out.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(out)
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes, zero={})", PAGE_SIZE, self.is_all_zero())
    }
}

/// Identifies the position of a record within a paged file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordLocation {
    /// Page number within the file.
    pub page_no: u64,
    /// Byte offset of the record within the page.
    pub offset_in_page: usize,
}

/// Number of `record_size`-byte records that fit in the record area of one
/// page. Floored, so the last partial slot (and the trailer) are never
/// used for records.
#[inline]
pub fn records_per_page(record_size: usize) -> u64 {
    (PAGE_USABLE_SIZE / record_size) as u64
}

/// Computes where record `id` of a store with `record_size`-byte records
/// lives.
#[inline]
pub fn locate_record(id: u64, record_size: usize) -> RecordLocation {
    let per_page = records_per_page(record_size);
    RecordLocation {
        page_no: id / per_page,
        offset_in_page: (id % per_page) as usize * record_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = Page::zeroed();
        assert!(p.is_all_zero());
        assert_eq!(p.bytes().len(), PAGE_SIZE);
    }

    #[test]
    fn from_bytes_pads_and_truncates() {
        let p = Page::from_bytes(&[1, 2, 3]);
        assert_eq!(&p.bytes()[..3], &[1, 2, 3]);
        assert!(p.bytes()[3..].iter().all(|&b| b == 0));

        let big = vec![7u8; PAGE_SIZE + 100];
        let p = Page::from_bytes(&big);
        assert_eq!(p.bytes().len(), PAGE_SIZE);
        assert!(p.bytes().iter().all(|&b| b == 7));
    }

    #[test]
    fn record_slices() {
        let mut p = Page::zeroed();
        p.record_mut(64, 64).copy_from_slice(&[9u8; 64]);
        assert!(p.record(64, 64).iter().all(|&b| b == 9));
        assert!(p.record(0, 64).iter().all(|&b| b == 0));
        assert!(!p.is_all_zero());
    }

    #[test]
    fn locate_record_small_ids() {
        let loc = locate_record(0, 64);
        assert_eq!(
            loc,
            RecordLocation {
                page_no: 0,
                offset_in_page: 0
            }
        );
        let loc = locate_record(1, 64);
        assert_eq!(
            loc,
            RecordLocation {
                page_no: 0,
                offset_in_page: 64
            }
        );
    }

    #[test]
    fn locate_record_page_boundaries() {
        let per_page = records_per_page(64);
        let loc = locate_record(per_page, 64);
        assert_eq!(loc.page_no, 1);
        assert_eq!(loc.offset_in_page, 0);
        let loc = locate_record(per_page - 1, 64);
        assert_eq!(loc.page_no, 0);
        assert_eq!(loc.offset_in_page, (per_page as usize - 1) * 64);
    }

    #[test]
    fn locate_record_larger_records() {
        let per_page = records_per_page(128);
        let loc = locate_record(per_page * 3 + 5, 128);
        assert_eq!(loc.page_no, 3);
        assert_eq!(loc.offset_in_page, 5 * 128);
    }

    #[test]
    fn records_never_reach_the_trailer() {
        for size in [64usize, 128] {
            let per_page = records_per_page(size);
            assert!(per_page as usize * size <= PAGE_USABLE_SIZE);
            let loc = locate_record(per_page - 1, size);
            assert!(loc.offset_in_page + size <= PAGE_USABLE_SIZE);
        }
    }

    #[test]
    fn crc_matches_known_vectors() {
        // Same vectors the WAL's bitwise implementation is pinned to.
        assert_eq!(page_crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(page_crc32(b""), 0);
        assert_eq!(
            page_crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn seal_then_verify_round_trips() {
        let mut p = Page::zeroed();
        p.record_mut(0, 64).copy_from_slice(&[5u8; 64]);
        p.seal(42);
        assert_eq!(p.verify(), PageVerdict::Valid { stamp: 42 });
    }

    #[test]
    fn all_zero_page_is_trivially_valid() {
        assert_eq!(Page::zeroed().verify(), PageVerdict::AllZero);
    }

    #[test]
    fn bit_flip_anywhere_is_detected() {
        let mut p = Page::zeroed();
        p.record_mut(128, 64).copy_from_slice(&[7u8; 64]);
        p.seal(1);
        for at in [0usize, 130, PAGE_USABLE_SIZE + 1, PAGE_SIZE - 1] {
            let mut flipped = p.clone();
            flipped.bytes_mut()[at] ^= 0x10;
            assert!(
                matches!(flipped.verify(), PageVerdict::Corrupt { .. }),
                "flip at {at} must be caught"
            );
        }
    }

    #[test]
    fn unsealed_nonzero_page_is_corrupt() {
        // A page with data but no trailer (e.g. a write torn before the
        // trailer bytes landed) must not verify.
        let mut p = Page::zeroed();
        p.record_mut(0, 64).copy_from_slice(&[9u8; 64]);
        let v = p.verify();
        assert!(matches!(v, PageVerdict::Corrupt { found: 0, .. }), "{v:?}");
    }

    #[test]
    fn torn_half_page_is_detected() {
        let mut p = Page::zeroed();
        for b in p.bytes_mut().iter_mut() {
            *b = 3;
        }
        p.seal(9);
        // Simulate a torn write: the second half never hit the disk.
        let mut torn = p.bytes().to_vec();
        for b in torn[PAGE_SIZE / 2..].iter_mut() {
            *b = 0;
        }
        assert!(matches!(
            Page::from_bytes(&torn).verify(),
            PageVerdict::Corrupt { .. }
        ));
    }

    #[test]
    fn reseal_after_mutation_restores_validity() {
        let mut p = Page::zeroed();
        p.record_mut(0, 64).copy_from_slice(&[1u8; 64]);
        p.seal(1);
        p.record_mut(64, 64).copy_from_slice(&[2u8; 64]);
        assert!(matches!(p.verify(), PageVerdict::Corrupt { .. }));
        p.seal(2);
        assert_eq!(p.verify(), PageVerdict::Valid { stamp: 2 });
    }
}
