//! Small helpers shared by tests, examples and benchmarks across the
//! workspace.
//!
//! The workspace deliberately keeps its dependency set minimal, so instead
//! of pulling in a temp-dir crate we provide [`TempDir`]: a uniquely named
//! directory under the system temp dir that is removed on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temporary directory, deleted (best effort) on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh temporary directory whose name contains `prefix`,
    /// the process ID, a timestamp and a per-process counter so concurrent
    /// tests never collide.
    pub fn new(prefix: &str) -> Self {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "graphsi-{prefix}-{}-{nanos}-{count}",
            std::process::id()
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// Path of the directory.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the guard without deleting the directory (useful when a
    /// test intentionally reopens the store after a simulated crash).
    pub fn into_path(mut self) -> PathBuf {
        std::mem::take(&mut self.path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes_directory() {
        let path = {
            let dir = TempDir::new("unit");
            assert!(dir.path().exists());
            dir.path().to_path_buf()
        };
        assert!(!path.exists());
    }

    #[test]
    fn two_dirs_do_not_collide() {
        let a = TempDir::new("same");
        let b = TempDir::new("same");
        assert_ne!(a.path(), b.path());
    }

    #[test]
    fn into_path_keeps_directory() {
        let dir = TempDir::new("keep");
        let path = dir.into_path();
        assert!(path.exists());
        std::fs::remove_dir_all(path).unwrap();
    }
}
