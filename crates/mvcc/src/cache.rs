//! The versioned object cache.
//!
//! This is the paper's modified Neo4j **object cache**: every cached entity
//! holds its list of versions ([`crate::chain::VersionChain`]), and all
//! versions are additionally threaded through the global GC list
//! ([`crate::gc_list::GcList`]) sorted by commit timestamp. The persistent
//! store below only ever holds the newest committed version, so the cache
//! is the sole home of historical versions and tombstones.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use graphsi_txn::Timestamp;

use crate::chain::VersionChain;
use crate::gc_list::GcList;
use crate::version::Version;

/// Result of a visibility read against the cache.
#[derive(Debug, Clone)]
pub enum CacheRead<V> {
    /// A visible, alive version was found.
    Version(Arc<V>),
    /// The entity is deleted in the reader's snapshot (visible tombstone).
    Deleted,
    /// The entity has cached versions, but none is visible to the reader —
    /// it did not exist yet at the reader's start timestamp.
    NotVisible,
    /// The cache holds no information about this entity; the reader should
    /// fall through to the persistent store.
    Miss,
}

impl<V> CacheRead<V> {
    /// Returns the payload if this is a visible alive version.
    pub fn into_version(self) -> Option<Arc<V>> {
        match self {
            CacheRead::Version(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` for [`CacheRead::Miss`].
    pub fn is_miss(&self) -> bool {
        matches!(self, CacheRead::Miss)
    }
}

/// A visible version returned by [`VersionedCache::lookup`], including its
/// commit timestamp (needed by the commit pipeline to seed base versions).
#[derive(Debug, Clone)]
pub struct ReadVersion<V> {
    /// Commit timestamp of the visible version.
    pub commit_ts: Timestamp,
    /// Payload, or `None` for a tombstone (deleted entity).
    pub payload: Option<Arc<V>>,
}

/// Result of a timestamp-aware visibility lookup.
#[derive(Debug, Clone)]
pub enum CacheLookup<V> {
    /// A version visible to the reader was found (alive or tombstone).
    Hit(ReadVersion<V>),
    /// The entity has cached versions, but none is visible to the reader.
    NotVisible,
    /// The cache holds no chain for this entity.
    Miss,
}

/// Counters describing cache behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Number of entities currently holding a version chain.
    pub chains: u64,
    /// Number of versions currently held (including tombstones).
    pub versions: u64,
    /// Committed versions installed since start-up.
    pub installs: u64,
    /// Base versions loaded from the persistent store.
    pub base_loads: u64,
    /// Tombstone versions installed.
    pub tombstones: u64,
    /// Visibility reads served (any outcome).
    pub reads: u64,
    /// Visibility reads that found chain information (hit, deleted or
    /// not-visible).
    pub chain_hits: u64,
    /// Versions reclaimed by garbage collection.
    pub reclaimed: u64,
    /// Chains dropped entirely by garbage collection.
    pub chains_dropped: u64,
}

#[derive(Default)]
struct CacheCounters {
    installs: AtomicU64,
    base_loads: AtomicU64,
    tombstones: AtomicU64,
    reads: AtomicU64,
    chain_hits: AtomicU64,
    reclaimed: AtomicU64,
    chains_dropped: AtomicU64,
    versions: AtomicU64,
    chains: AtomicU64,
}

/// Result of pruning one entity's chain.
#[derive(Debug, Default, Clone, Copy)]
pub struct PruneOutcome {
    /// Versions removed from the chain.
    pub reclaimed: usize,
    /// Whether the whole chain was dropped from the cache.
    pub dropped_chain: bool,
    /// Versions remaining in the chain afterwards (0 if dropped).
    pub remaining: usize,
}

/// The versioned object cache, generic over the entity key `K` and the
/// cached entity state `V`.
///
/// Shards are ordered maps so their key sets can be paged in sorted order
/// with a range-resume marker ([`VersionedCache::shard_keys_page`]):
/// whole-graph scans buffer one bounded page at a time instead of one
/// whole shard.
pub struct VersionedCache<K, V> {
    shards: Vec<RwLock<BTreeMap<K, VersionChain<V>>>>,
    gc_list: Mutex<GcList<K>>,
    counters: CacheCounters,
}

impl<K, V> VersionedCache<K, V>
where
    K: Hash + Eq + Ord + Copy,
{
    /// Creates a cache with the given number of shards (rounded up to at
    /// least one).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        VersionedCache {
            // Lock-order ranks: see the README's lock-rank map. Installs
            // push GC-list entries while holding a shard write lock, so
            // the list ranks above the shards; only one shard is ever
            // held at a time, so all shards share one rank.
            shards: (0..shards)
                .map(|_| RwLock::with_rank(BTreeMap::new(), 2520, "mvcc.cache_shard"))
                .collect(),
            gc_list: Mutex::with_rank(GcList::new(), 2540, "mvcc.gc_list"),
            counters: CacheCounters::default(),
        }
    }

    /// Creates a cache with a default shard count suitable for tests and
    /// moderate concurrency.
    pub fn with_default_shards() -> Self {
        Self::new(16)
    }

    fn shard_for(&self, key: &K) -> &RwLock<BTreeMap<K, VersionChain<V>>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Visibility read: returns the newest version visible at `start_ts`
    /// following the paper's read rule, or [`CacheRead::Miss`] if the cache
    /// has no chain for the entity.
    pub fn read(&self, key: K, start_ts: Timestamp) -> CacheRead<V> {
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_for(&key).read();
        let Some(chain) = shard.get(&key) else {
            return CacheRead::Miss;
        };
        self.counters.chain_hits.fetch_add(1, Ordering::Relaxed);
        match chain.visible_at(start_ts) {
            Some(version) if version.is_tombstone() => CacheRead::Deleted,
            Some(version) => CacheRead::Version(Arc::clone(
                version.payload.as_ref().expect("alive version has payload"),
            )),
            None => CacheRead::NotVisible,
        }
    }

    /// Like [`VersionedCache::read`], but also reports the commit timestamp
    /// of the visible version. Used by the commit pipeline, which needs to
    /// know the pre-image's timestamp to seed base versions.
    pub fn lookup(&self, key: K, start_ts: Timestamp) -> CacheLookup<V> {
        self.counters.reads.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_for(&key).read();
        let Some(chain) = shard.get(&key) else {
            return CacheLookup::Miss;
        };
        self.counters.chain_hits.fetch_add(1, Ordering::Relaxed);
        match chain.visible_at(start_ts) {
            Some(version) => CacheLookup::Hit(ReadVersion {
                commit_ts: version.commit_ts,
                payload: version.payload.clone(),
            }),
            None => CacheLookup::NotVisible,
        }
    }

    /// Ensures the entity has a chain seeded with the *base* version — the
    /// version currently held by the persistent store, stamped with its
    /// commit timestamp. Called before the first new version of an entity
    /// is installed, so that readers with older snapshots keep finding the
    /// state they are entitled to. A no-op if a chain already exists.
    pub fn ensure_base(&self, key: K, base_ts: Timestamp, payload: Arc<V>) {
        let mut shard = self.shard_for(&key).write();
        if shard.contains_key(&key) {
            return;
        }
        let mut chain = VersionChain::with_base(base_ts, payload);
        let handle = self.gc_list.lock().push(key, base_ts);
        chain.set_gc_handle(base_ts, handle);
        shard.insert(key, chain);
        self.counters.base_loads.fetch_add(1, Ordering::Relaxed);
        self.counters.versions.fetch_add(1, Ordering::Relaxed);
        self.counters.chains.fetch_add(1, Ordering::Relaxed);
    }

    /// Installs a freshly committed version (or tombstone when `payload` is
    /// `None`). Creates the chain if the entity was not cached yet (a newly
    /// created entity has no base version).
    pub fn install_committed(&self, key: K, commit_ts: Timestamp, payload: Option<Arc<V>>) {
        let mut shard = self.shard_for(&key).write();
        let chain = shard.entry(key).or_insert_with(|| {
            self.counters.chains.fetch_add(1, Ordering::Relaxed);
            VersionChain::new()
        });
        let mut version = match payload {
            Some(p) => Version::alive(commit_ts, p),
            None => {
                self.counters.tombstones.fetch_add(1, Ordering::Relaxed);
                Version::tombstone(commit_ts)
            }
        };
        let handle = self.gc_list.lock().push(key, commit_ts);
        version.gc_handle = Some(handle);
        chain.install(version);
        self.counters.installs.fetch_add(1, Ordering::Relaxed);
        self.counters.versions.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes the version installed for `key` at exactly `commit_ts`
    /// (unlinking it from the GC list; the chain is dropped when it
    /// becomes empty). Returns `true` if a version was removed.
    ///
    /// This is the commit pipeline's abort rollback: a commit that fails
    /// its store apply has already installed its versions, but nothing can
    /// have observed them — the visible timestamp never reaches a
    /// withdrawn commit — so removing them restores the pre-commit state
    /// instead of leaking writes the caller was told failed.
    pub fn remove_version(&self, key: K, commit_ts: Timestamp) -> bool {
        let mut shard = self.shard_for(&key).write();
        let Some(chain) = shard.get_mut(&key) else {
            return false;
        };
        let Some(version) = chain.remove_at(commit_ts) else {
            return false;
        };
        if version.is_tombstone() {
            self.counters.tombstones.fetch_sub(1, Ordering::Relaxed);
        }
        if chain.is_empty() {
            shard.remove(&key);
            self.counters.chains.fetch_sub(1, Ordering::Relaxed);
        }
        drop(shard);
        if let Some(handle) = version.gc_handle {
            self.gc_list.lock().remove(handle);
        }
        // `installs` is a monotone history counter and stays untouched;
        // only the population gauges shrink.
        self.counters.versions.fetch_sub(1, Ordering::Relaxed);
        true
    }

    /// Commit timestamp of the newest cached version of the entity, used
    /// for write-write conflict checks.
    pub fn newest_commit_ts(&self, key: K) -> Option<Timestamp> {
        self.shard_for(&key)
            .read()
            .get(&key)
            .and_then(|c| c.newest_commit_ts())
    }

    /// Returns `true` if the entity currently has a version chain.
    pub fn contains(&self, key: K) -> bool {
        self.shard_for(&key).read().contains_key(&key)
    }

    /// Number of versions in the entity's chain (0 if not cached).
    pub fn chain_len(&self, key: K) -> usize {
        self.shard_for(&key).read().get(&key).map_or(0, |c| c.len())
    }

    /// Prunes one entity's chain against the GC watermark, unlinking
    /// reclaimed versions from the GC list and dropping the chain entirely
    /// when the persistent store alone can serve all readers.
    pub fn prune_key(&self, key: K, watermark: Timestamp) -> PruneOutcome {
        let mut shard = self.shard_for(&key).write();
        let Some(chain) = shard.get_mut(&key) else {
            return PruneOutcome::default();
        };
        let result = chain.prune(watermark);
        let mut outcome = PruneOutcome {
            reclaimed: result.removed,
            dropped_chain: false,
            remaining: chain.len(),
        };
        let mut handles = result.removed_handles;
        if result.droppable {
            // Unlink whatever survives pruning as well: the store can serve
            // it, so the cache entry goes away completely.
            handles.extend(chain.all_handles());
            shard.remove(&key);
            outcome.dropped_chain = true;
            outcome.remaining = 0;
            self.counters.chains_dropped.fetch_add(1, Ordering::Relaxed);
            self.counters.chains.fetch_sub(1, Ordering::Relaxed);
        }
        drop(shard);
        if !handles.is_empty() {
            let mut list = self.gc_list.lock();
            for h in &handles {
                list.remove(*h);
            }
        }
        // The versions counter drops by every version removed from memory:
        // the pruned ones plus any survivor dropped together with its chain.
        let dropped_survivors = if outcome.dropped_chain {
            (handles.len() as u64).saturating_sub(outcome.reclaimed as u64)
        } else {
            0
        };
        let removed_from_memory = outcome.reclaimed as u64 + dropped_survivors;
        self.counters
            .reclaimed
            .fetch_add(removed_from_memory, Ordering::Relaxed);
        self.counters
            .versions
            .fetch_sub(removed_from_memory, Ordering::Relaxed);
        outcome
    }

    /// Distinct entity keys that currently hold versions older than
    /// `watermark`, together with the number of GC-list entries that were
    /// walked to find them. Only these chains need to be visited by a
    /// threaded GC run.
    pub fn gc_candidates(&self, watermark: Timestamp) -> (Vec<K>, usize) {
        let list = self.gc_list.lock();
        let entries = list.entries_older_than(watermark);
        let walked = entries.len();
        let mut seen = HashMap::new();
        let mut keys = Vec::new();
        for (_, key, _) in entries {
            if seen.insert(key, ()).is_none() {
                keys.push(key);
            }
        }
        (keys, walked)
    }

    /// Every cached entity key (used by the vacuum-style GC baseline, which
    /// must visit all chains).
    pub fn all_keys(&self) -> Vec<K> {
        let mut keys = Vec::new();
        self.for_each_key(|k| keys.push(k));
        keys
    }

    /// Borrowing variant of [`VersionedCache::all_keys`]: streams every
    /// cached key through `f`, locking one shard at a time, without
    /// allocating a full key `Vec`. Keys inserted or removed concurrently
    /// in shards not yet visited may or may not be observed — the same
    /// guarantee `all_keys` gives.
    pub fn for_each_key(&self, mut f: impl FnMut(K)) {
        for shard in &self.shards {
            for key in shard.read().keys() {
                f(*key);
            }
        }
    }

    /// Number of shards (for chunked key enumeration via
    /// [`VersionedCache::shard_keys`] and
    /// [`VersionedCache::shard_keys_page`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Appends every key of one shard to `out`, returning `false` when
    /// `shard` is out of range. GC pages the cache shard by shard with
    /// this; scans that need bounded buffering use
    /// [`VersionedCache::shard_keys_page`] instead. A shard's key set is
    /// copied atomically under its read lock, so a key that exists for the
    /// whole enumeration is never missed.
    pub fn shard_keys(&self, shard: usize, out: &mut Vec<K>) -> bool {
        let Some(shard) = self.shards.get(shard) else {
            return false;
        };
        out.extend(shard.read().keys().copied());
        true
    }

    /// Appends up to `chunk` keys of one shard to `out`, in ascending key
    /// order, resuming strictly after `after` (`None` = from the start of
    /// the shard). Returns `false` when `shard` is out of range.
    ///
    /// This is the range-resume page behind whole-graph scans: between
    /// pages only the marker is retained, so a scan's transient buffering
    /// is bounded by `chunk` no matter how large (or skewed) the shard is.
    /// Keys inserted before the marker between two pages are skipped and
    /// keys removed ahead of it are simply not yielded — the same
    /// guarantee class as [`VersionedCache::shard_keys`], which snapshots
    /// a shard at one instant: a key that exists for the whole enumeration
    /// is never missed.
    pub fn shard_keys_page(
        &self,
        shard: usize,
        after: Option<K>,
        chunk: usize,
        out: &mut Vec<K>,
    ) -> bool {
        let Some(shard) = self.shards.get(shard) else {
            return false;
        };
        let guard = shard.read();
        let range = match after {
            None => guard.range(..),
            Some(a) => guard.range((Bound::Excluded(a), Bound::Unbounded)),
        };
        out.extend(range.take(chunk.max(1)).map(|(k, _)| *k));
        true
    }

    /// Number of entries currently threaded in the GC list.
    pub fn gc_list_len(&self) -> usize {
        self.gc_list.lock().len()
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            chains: self.counters.chains.load(Ordering::Relaxed),
            versions: self.counters.versions.load(Ordering::Relaxed),
            installs: self.counters.installs.load(Ordering::Relaxed),
            base_loads: self.counters.base_loads.load(Ordering::Relaxed),
            tombstones: self.counters.tombstones.load(Ordering::Relaxed),
            reads: self.counters.reads.load(Ordering::Relaxed),
            chain_hits: self.counters.chain_hits.load(Ordering::Relaxed),
            reclaimed: self.counters.reclaimed.load(Ordering::Relaxed),
            chains_dropped: self.counters.chains_dropped.load(Ordering::Relaxed),
        }
    }
}

impl<K, V> std::fmt::Debug for VersionedCache<K, V>
where
    K: Hash + Eq + Ord + Copy,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("VersionedCache")
            .field("chains", &stats.chains)
            .field("versions", &stats.versions)
            .field("gc_list", &self.gc_list_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Cache = VersionedCache<u64, String>;

    fn payload(s: &str) -> Arc<String> {
        Arc::new(s.to_owned())
    }

    #[test]
    fn miss_for_unknown_entity() {
        let cache = Cache::with_default_shards();
        assert!(cache.read(1, Timestamp(10)).is_miss());
        assert_eq!(cache.chain_len(1), 0);
        assert!(!cache.contains(1));
    }

    #[test]
    fn read_rule_selects_correct_version() {
        let cache = Cache::with_default_shards();
        cache.install_committed(1, Timestamp(10), Some(payload("v10")));
        cache.install_committed(1, Timestamp(20), Some(payload("v20")));
        match cache.read(1, Timestamp(15)) {
            CacheRead::Version(v) => assert_eq!(*v, "v10"),
            other => panic!("unexpected {other:?}"),
        }
        match cache.read(1, Timestamp(25)) {
            CacheRead::Version(v) => assert_eq!(*v, "v20"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(cache.read(1, Timestamp(5)), CacheRead::NotVisible));
        assert_eq!(cache.newest_commit_ts(1), Some(Timestamp(20)));
    }

    #[test]
    fn tombstone_reads_as_deleted() {
        let cache = Cache::with_default_shards();
        cache.install_committed(7, Timestamp(10), Some(payload("alive")));
        cache.install_committed(7, Timestamp(20), None);
        assert!(matches!(cache.read(7, Timestamp(25)), CacheRead::Deleted));
        match cache.read(7, Timestamp(15)) {
            CacheRead::Version(v) => assert_eq!(*v, "alive"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cache.stats().tombstones, 1);
    }

    #[test]
    fn ensure_base_is_idempotent_and_preserves_existing_chain() {
        let cache = Cache::with_default_shards();
        cache.ensure_base(3, Timestamp(5), payload("base"));
        cache.ensure_base(3, Timestamp(99), payload("should-not-replace"));
        match cache.read(3, Timestamp(100)) {
            CacheRead::Version(v) => assert_eq!(*v, "base"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cache.chain_len(3), 1);
        assert_eq!(cache.stats().base_loads, 1);
    }

    #[test]
    fn prune_reclaims_old_versions_and_updates_gc_list() {
        let cache = Cache::with_default_shards();
        cache.ensure_base(1, Timestamp(5), payload("base"));
        cache.install_committed(1, Timestamp(10), Some(payload("v10")));
        cache.install_committed(1, Timestamp(20), Some(payload("v20")));
        assert_eq!(cache.gc_list_len(), 3);

        let outcome = cache.prune_key(1, Timestamp(15));
        assert_eq!(outcome.reclaimed, 1); // base at ts 5
        assert!(!outcome.dropped_chain);
        assert_eq!(outcome.remaining, 2);
        assert_eq!(cache.gc_list_len(), 2);

        // Once every active snapshot is past ts 20 the chain collapses onto
        // the store and disappears from the cache.
        let outcome = cache.prune_key(1, Timestamp(25));
        assert_eq!(outcome.reclaimed, 1);
        assert!(outcome.dropped_chain);
        assert_eq!(cache.gc_list_len(), 0);
        assert!(!cache.contains(1));
        assert!(cache.read(1, Timestamp(30)).is_miss());
    }

    #[test]
    fn prune_drops_fully_deleted_entities() {
        let cache = Cache::with_default_shards();
        cache.ensure_base(9, Timestamp(5), payload("base"));
        cache.install_committed(9, Timestamp(12), None);
        let outcome = cache.prune_key(9, Timestamp(20));
        assert!(outcome.dropped_chain);
        assert_eq!(cache.chain_len(9), 0);
        assert_eq!(cache.gc_list_len(), 0);
    }

    #[test]
    fn gc_candidates_only_walk_old_entries() {
        let cache = Cache::with_default_shards();
        for ts in 1..=10u64 {
            cache.install_committed(ts % 3, Timestamp(ts), Some(payload(&format!("v{ts}"))));
        }
        let (keys, walked) = cache.gc_candidates(Timestamp(5));
        assert_eq!(walked, 4); // timestamps 1..=4
        assert!(keys.len() <= 3);
        let (_, walked_all) = cache.gc_candidates(Timestamp(100));
        assert_eq!(walked_all, 10);
    }

    #[test]
    fn all_keys_lists_every_cached_entity() {
        let cache = Cache::new(4);
        for k in 0..20u64 {
            cache.install_committed(k, Timestamp(k + 1), Some(payload("x")));
        }
        let mut keys = cache.all_keys();
        keys.sort_unstable();
        assert_eq!(keys, (0..20u64).collect::<Vec<_>>());
    }

    #[test]
    fn shard_paging_covers_every_key_exactly_once() {
        let cache = Cache::new(4);
        for k in 0..32u64 {
            cache.install_committed(k, Timestamp(k + 1), Some(payload("x")));
        }
        assert_eq!(cache.shard_count(), 4);
        let mut paged = Vec::new();
        let mut buf = Vec::new();
        for shard in 0..cache.shard_count() {
            buf.clear();
            assert!(cache.shard_keys(shard, &mut buf));
            paged.extend_from_slice(&buf);
        }
        assert!(!cache.shard_keys(cache.shard_count(), &mut buf));
        paged.sort_unstable();
        assert_eq!(paged, (0..32u64).collect::<Vec<_>>());

        let mut streamed = Vec::new();
        cache.for_each_key(|k| streamed.push(k));
        streamed.sort_unstable();
        assert_eq!(streamed, paged);
    }

    #[test]
    fn remove_version_rolls_back_an_install() {
        let cache = Cache::with_default_shards();
        cache.ensure_base(1, Timestamp(5), payload("base"));
        cache.install_committed(1, Timestamp(10), Some(payload("v10")));
        assert_eq!(cache.gc_list_len(), 2);
        assert!(cache.remove_version(1, Timestamp(10)));
        assert!(!cache.remove_version(1, Timestamp(10)), "already gone");
        assert_eq!(cache.gc_list_len(), 1);
        assert_eq!(cache.newest_commit_ts(1), Some(Timestamp(5)));
        match cache.read(1, Timestamp(20)) {
            CacheRead::Version(v) => assert_eq!(*v, "base"),
            other => panic!("unexpected {other:?}"),
        }
        // Removing the last version drops the chain entirely.
        assert!(cache.remove_version(1, Timestamp(5)));
        assert!(!cache.contains(1));
        assert_eq!(cache.gc_list_len(), 0);
        assert_eq!(cache.stats().versions, 0);
        assert_eq!(cache.stats().chains, 0);

        // Tombstone rollback adjusts the tombstone gauge too.
        cache.install_committed(2, Timestamp(3), None);
        assert_eq!(cache.stats().tombstones, 1);
        assert!(cache.remove_version(2, Timestamp(3)));
        assert_eq!(cache.stats().tombstones, 0);
        assert!(!cache.remove_version(9, Timestamp(1)), "unknown key");
    }

    #[test]
    fn shard_key_pages_resume_in_sorted_order() {
        let cache = Cache::new(1); // worst-case skew: every key in one shard
        for k in 0..23u64 {
            cache.install_committed(k, Timestamp(k + 1), Some(payload("x")));
        }
        let mut paged = Vec::new();
        let mut buf = Vec::new();
        let mut after = None;
        loop {
            buf.clear();
            assert!(cache.shard_keys_page(0, after, 5, &mut buf));
            assert!(buf.len() <= 5, "page exceeded the chunk bound");
            let Some(&last) = buf.last() else { break };
            assert!(buf.windows(2).all(|w| w[0] < w[1]), "page not sorted");
            paged.extend_from_slice(&buf);
            after = Some(last);
        }
        assert_eq!(paged, (0..23u64).collect::<Vec<_>>());
        assert!(!cache.shard_keys_page(1, None, 5, &mut buf));
    }

    #[test]
    fn shard_key_pages_survive_concurrent_removal() {
        let cache = Cache::new(1);
        for k in 0..10u64 {
            cache.install_committed(k, Timestamp(k + 1), Some(payload("x")));
        }
        let mut buf = Vec::new();
        assert!(cache.shard_keys_page(0, None, 4, &mut buf));
        assert_eq!(buf, vec![0, 1, 2, 3]);
        // Drop keys behind and ahead of the marker; the resume must keep
        // yielding every surviving key exactly once.
        cache.prune_key(2, Timestamp(100));
        cache.prune_key(7, Timestamp(100));
        let mut rest = Vec::new();
        cache.shard_keys_page(0, Some(3), 100, &mut rest);
        assert_eq!(rest, vec![4, 5, 6, 8, 9]);
    }

    #[test]
    fn stats_track_population() {
        let cache = Cache::with_default_shards();
        cache.ensure_base(1, Timestamp(1), payload("a"));
        cache.install_committed(1, Timestamp(2), Some(payload("b")));
        cache.install_committed(2, Timestamp(3), Some(payload("c")));
        cache.read(1, Timestamp(5));
        cache.read(9, Timestamp(5));
        let stats = cache.stats();
        assert_eq!(stats.chains, 2);
        assert_eq!(stats.versions, 3);
        assert_eq!(stats.installs, 2);
        assert_eq!(stats.base_loads, 1);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.chain_hits, 1);
    }

    #[test]
    fn concurrent_installs_and_reads() {
        let cache = Arc::new(Cache::new(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let key = (t * 500 + i) % 100;
                    cache.install_committed(
                        key,
                        Timestamp(t * 1000 + i + 1),
                        Some(Arc::new(format!("{t}-{i}"))),
                    );
                    let _ = cache.read(key, Timestamp(u64::MAX));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().installs, 2000);
        assert_eq!(cache.gc_list_len(), 2000);
    }
}
