//! # graphsi-mvcc
//!
//! The multi-version concurrency control layer described in *"Snapshot
//! Isolation for Neo4j"* (EDBT 2016): per-entity version chains living in
//! the object cache, tombstones for deletions, snapshot visibility following
//! the read rule, and garbage collection driven by a global doubly linked
//! list of versions sorted by commit timestamp.
//!
//! The crate is generic over the entity key and payload so it can version
//! nodes, relationships and (through `graphsi-index`) index entries alike.
//!
//! * [`version::Version`] — one committed version (or tombstone).
//! * [`chain::VersionChain`] — the per-entity version list.
//! * [`cache::VersionedCache`] — the sharded object cache plus GC list.
//! * [`gc`] — the threaded GC of the paper and a vacuum-style baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod chain;
pub mod gc;
pub mod gc_list;
pub mod version;

pub use cache::{
    CacheLookup, CacheRead, CacheStatsSnapshot, PruneOutcome, ReadVersion, VersionedCache,
};
pub use chain::{PruneResult, VersionChain};
pub use gc::{run_threaded, run_vacuum, GcRunStats, GcStrategy};
pub use gc_list::GcList;
pub use version::{GcHandle, Version};

#[cfg(test)]
mod lib_tests {
    use super::*;
    use graphsi_txn::Timestamp;
    use std::sync::Arc;

    #[test]
    fn end_to_end_version_lifecycle() {
        let cache: VersionedCache<u64, &'static str> = VersionedCache::with_default_shards();
        // Entity 1 existed before SI was enabled (bootstrap version).
        cache.ensure_base(1, Timestamp::BOOTSTRAP, Arc::new("initial"));
        // Two updates commit at ts 1 and 2.
        cache.install_committed(1, Timestamp(1), Some(Arc::new("first")));
        cache.install_committed(1, Timestamp(2), Some(Arc::new("second")));
        // A reader that started before both updates still sees the initial
        // state.
        assert!(matches!(
            cache.read(1, Timestamp(0)),
            CacheRead::Version(v) if *v == "initial"
        ));
        // GC with the oldest active snapshot at ts 2 collapses the chain.
        let stats = run_threaded(&cache, Timestamp(2));
        assert_eq!(stats.versions_reclaimed, 2);
        assert!(stats.chains_dropped >= 1);
    }
}
