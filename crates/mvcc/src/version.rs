//! A single version of an entity.
//!
//! The paper versions nodes and relationships by attaching a **commit
//! timestamp** and a **deleted flag** to each of them (§4). A version whose
//! payload is absent is a *tombstone*: the entity was deleted by the
//! transaction that committed at that timestamp, but the tombstone "has to
//! be kept till no previous version can be read by an active transaction".

use std::sync::Arc;

use graphsi_txn::Timestamp;

/// Handle of a version's entry in the global garbage-collection list
/// (see [`crate::gc_list::GcList`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GcHandle(pub(crate) usize);

impl GcHandle {
    /// Raw slab index (exposed for diagnostics and tests).
    pub fn raw(self) -> usize {
        self.0
    }
}

/// One committed version of an entity.
#[derive(Clone, Debug)]
pub struct Version<V> {
    /// Commit timestamp of the transaction that produced this version.
    pub commit_ts: Timestamp,
    /// The entity state; `None` marks a tombstone (the entity was deleted).
    pub payload: Option<Arc<V>>,
    /// Link into the global GC list, if the version is threaded there.
    pub gc_handle: Option<GcHandle>,
}

impl<V> Version<V> {
    /// Creates an alive version.
    pub fn alive(commit_ts: Timestamp, payload: Arc<V>) -> Self {
        Version {
            commit_ts,
            payload: Some(payload),
            gc_handle: None,
        }
    }

    /// Creates a tombstone version (the entity was deleted at
    /// `commit_ts`).
    pub fn tombstone(commit_ts: Timestamp) -> Self {
        Version {
            commit_ts,
            payload: None,
            gc_handle: None,
        }
    }

    /// Returns `true` if this version marks a deletion.
    pub fn is_tombstone(&self) -> bool {
        self.payload.is_none()
    }

    /// Returns `true` if this version is visible to a reader with the given
    /// start timestamp (the read rule: `commit_ts <= start_ts`).
    pub fn visible_to(&self, start_ts: Timestamp) -> bool {
        self.commit_ts.visible_to(start_ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alive_and_tombstone() {
        let v = Version::alive(Timestamp(3), Arc::new("x"));
        assert!(!v.is_tombstone());
        assert_eq!(v.payload.as_deref(), Some(&"x"));

        let t: Version<&str> = Version::tombstone(Timestamp(4));
        assert!(t.is_tombstone());
        assert!(t.payload.is_none());
    }

    #[test]
    fn visibility_matches_read_rule() {
        let v = Version::alive(Timestamp(10), Arc::new(1u32));
        assert!(v.visible_to(Timestamp(10)));
        assert!(v.visible_to(Timestamp(11)));
        assert!(!v.visible_to(Timestamp(9)));
    }

    #[test]
    fn gc_handle_roundtrip() {
        let mut v = Version::alive(Timestamp(1), Arc::new(0u8));
        assert!(v.gc_handle.is_none());
        v.gc_handle = Some(GcHandle(7));
        assert_eq!(v.gc_handle.unwrap().raw(), 7);
    }
}
