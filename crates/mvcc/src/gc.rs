//! Garbage collection of obsolete versions.
//!
//! Two strategies are implemented so that experiment **E6** can compare
//! them:
//!
//! * [`run_threaded`] — the paper's approach: walk the global doubly linked
//!   GC list from its oldest end and stop at the watermark, so the run only
//!   ever touches versions that are candidates for reclamation.
//! * [`run_vacuum`] — a PostgreSQL-vacuum-style baseline: visit **every**
//!   cached chain, regardless of whether it holds anything reclaimable. The
//!   paper criticises this pattern because its cost is proportional to the
//!   whole data set, not to the garbage.
//!
//! Both strategies reclaim exactly the same versions; they differ only in
//! how much work they do to find them.

use std::hash::Hash;
use std::time::{Duration, Instant};

use graphsi_txn::Timestamp;

use crate::cache::VersionedCache;

/// Which GC strategy produced a [`GcRunStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcStrategy {
    /// Walk the commit-timestamp-sorted GC list (the paper's design).
    Threaded,
    /// Scan every cached chain (vacuum-style baseline).
    Vacuum,
}

impl std::fmt::Display for GcStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcStrategy::Threaded => f.write_str("threaded"),
            GcStrategy::Vacuum => f.write_str("vacuum"),
        }
    }
}

/// Statistics of one garbage-collection run.
#[derive(Clone, Copy, Debug)]
pub struct GcRunStats {
    /// Strategy that produced the run.
    pub strategy: GcStrategy,
    /// The watermark (oldest active start timestamp) used.
    pub watermark: Timestamp,
    /// Versions (GC-list entries or chain entries) the run had to examine.
    pub versions_examined: u64,
    /// Chains the run visited.
    pub chains_visited: u64,
    /// Versions actually reclaimed (removed from memory).
    pub versions_reclaimed: u64,
    /// Chains dropped entirely from the cache.
    pub chains_dropped: u64,
    /// Wall-clock duration of the run.
    pub duration: Duration,
}

impl GcRunStats {
    /// Work efficiency: versions examined per version reclaimed. Lower is
    /// better; 1.0 means the run touched nothing it did not reclaim.
    pub fn examined_per_reclaimed(&self) -> f64 {
        if self.versions_reclaimed == 0 {
            self.versions_examined as f64
        } else {
            self.versions_examined as f64 / self.versions_reclaimed as f64
        }
    }
}

/// Runs the paper's threaded GC: only versions older than the watermark are
/// visited, discovered by walking the global GC list.
pub fn run_threaded<K, V>(cache: &VersionedCache<K, V>, watermark: Timestamp) -> GcRunStats
where
    K: Hash + Eq + Ord + Copy,
{
    let start = Instant::now();
    let (candidates, walked) = cache.gc_candidates(watermark);
    let mut reclaimed = 0u64;
    let mut dropped = 0u64;
    let mut visited = 0u64;
    for key in candidates {
        let outcome = cache.prune_key(key, watermark);
        visited += 1;
        reclaimed += outcome.reclaimed as u64;
        dropped += u64::from(outcome.dropped_chain);
    }
    GcRunStats {
        strategy: GcStrategy::Threaded,
        watermark,
        versions_examined: walked as u64,
        chains_visited: visited,
        versions_reclaimed: reclaimed,
        chains_dropped: dropped,
        duration: start.elapsed(),
    }
}

/// Runs the vacuum-style baseline GC: every cached chain is visited and
/// pruned, whether or not it holds reclaimable versions.
pub fn run_vacuum<K, V>(cache: &VersionedCache<K, V>, watermark: Timestamp) -> GcRunStats
where
    K: Hash + Eq + Ord + Copy,
{
    let start = Instant::now();
    let mut reclaimed = 0u64;
    let mut dropped = 0u64;
    let mut examined = 0u64;
    let mut visited = 0u64;
    // Page the key space one shard at a time (the iterator-based key
    // access) instead of materialising every cached key up front.
    let mut keys = Vec::new();
    for shard in 0..cache.shard_count() {
        keys.clear();
        cache.shard_keys(shard, &mut keys);
        for &key in &keys {
            examined += cache.chain_len(key) as u64;
            let outcome = cache.prune_key(key, watermark);
            visited += 1;
            reclaimed += outcome.reclaimed as u64;
            dropped += u64::from(outcome.dropped_chain);
        }
    }
    GcRunStats {
        strategy: GcStrategy::Vacuum,
        watermark,
        versions_examined: examined,
        chains_visited: visited,
        versions_reclaimed: reclaimed,
        chains_dropped: dropped,
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    type Cache = VersionedCache<u64, u64>;

    /// Builds a cache with `entities` entities, each having `versions`
    /// versions committed at increasing timestamps.
    fn populated(entities: u64, versions: u64) -> Cache {
        let cache = Cache::new(8);
        let mut ts = 0u64;
        for v in 0..versions {
            for e in 0..entities {
                ts += 1;
                cache.install_committed(e, Timestamp(ts), Some(Arc::new(v)));
            }
        }
        cache
    }

    #[test]
    fn threaded_and_vacuum_reclaim_the_same_versions() {
        let a = populated(50, 5);
        let b = populated(50, 5);
        let watermark = Timestamp(u64::MAX - 1);
        let ta = run_threaded(&a, watermark);
        let tb = run_vacuum(&b, watermark);
        assert_eq!(ta.versions_reclaimed, tb.versions_reclaimed);
        assert_eq!(ta.chains_dropped, tb.chains_dropped);
        assert_eq!(a.stats().versions, b.stats().versions);
    }

    #[test]
    fn threaded_gc_touches_only_old_versions() {
        // 100 entities * 4 versions; watermark set so only the very first
        // round of installs is reclaimable.
        let cache = populated(100, 4);
        // Timestamps 1..=100 are the oldest version of each entity; the
        // newest visible at watermark 150 is the second round for half the
        // entities.
        let stats = run_threaded(&cache, Timestamp(150));
        assert!(stats.versions_examined <= 150);
        let vacuum_equivalent = populated(100, 4);
        let vstats = run_vacuum(&vacuum_equivalent, Timestamp(150));
        assert_eq!(vstats.versions_examined, 400);
        assert!(stats.versions_examined < vstats.versions_examined);
        assert_eq!(stats.versions_reclaimed, vstats.versions_reclaimed);
    }

    #[test]
    fn gc_with_nothing_to_do_is_cheap_for_threaded_only() {
        let cache = populated(200, 3);
        // Watermark 0: nothing is reclaimable.
        let t = run_threaded(&cache, Timestamp(0));
        assert_eq!(t.versions_examined, 0);
        assert_eq!(t.versions_reclaimed, 0);
        let v = run_vacuum(&cache, Timestamp(0));
        assert_eq!(v.versions_reclaimed, 0);
        // The vacuum still walked every version — the inefficiency the
        // paper calls out.
        assert_eq!(v.versions_examined, 600);
    }

    #[test]
    fn repeated_threaded_runs_are_idempotent() {
        let cache = populated(20, 5);
        let w = Timestamp(u64::MAX - 1);
        let first = run_threaded(&cache, w);
        assert!(first.versions_reclaimed > 0);
        let second = run_threaded(&cache, w);
        assert_eq!(second.versions_reclaimed, 0);
        assert_eq!(second.versions_examined, 0);
    }

    #[test]
    fn readers_behind_the_watermark_keep_their_versions() {
        let cache = Cache::new(4);
        cache.install_committed(1, Timestamp(10), Some(Arc::new(1)));
        cache.install_committed(1, Timestamp(20), Some(Arc::new(2)));
        cache.install_committed(1, Timestamp(30), Some(Arc::new(3)));
        // Oldest active reader started at 20: version 20 must survive, only
        // version 10 may go.
        let stats = run_threaded(&cache, Timestamp(20));
        assert_eq!(stats.versions_reclaimed, 1);
        assert!(matches!(
            cache.read(1, Timestamp(20)),
            crate::cache::CacheRead::Version(v) if *v == 2
        ));
        assert!(matches!(
            cache.read(1, Timestamp(35)),
            crate::cache::CacheRead::Version(v) if *v == 3
        ));
    }

    #[test]
    fn examined_per_reclaimed_metric() {
        let stats = GcRunStats {
            strategy: GcStrategy::Vacuum,
            watermark: Timestamp(1),
            versions_examined: 100,
            chains_visited: 10,
            versions_reclaimed: 20,
            chains_dropped: 0,
            duration: Duration::from_millis(1),
        };
        assert!((stats.examined_per_reclaimed() - 5.0).abs() < f64::EPSILON);
        let zero = GcRunStats {
            versions_reclaimed: 0,
            ..stats
        };
        assert!((zero.examined_per_reclaimed() - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(GcStrategy::Threaded.to_string(), "threaded");
        assert_eq!(GcStrategy::Vacuum.to_string(), "vacuum");
    }
}
