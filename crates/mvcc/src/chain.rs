//! Per-entity version chains.
//!
//! "Each object representing a node or relationship stores a list of
//! versions. In that way, when a transaction reads a node, the right
//! version for the reading transaction can be obtained by traversing the
//! list of versions." (the paper, §4)
//!
//! The chain is kept sorted newest-first; commit timestamps are issued
//! monotonically, so installs are pushes at the front.

use std::sync::Arc;

use graphsi_txn::Timestamp;

use crate::version::{GcHandle, Version};

/// The versions of one entity, newest first.
#[derive(Debug)]
pub struct VersionChain<V> {
    versions: Vec<Version<V>>,
}

/// Result of pruning a chain against a GC watermark.
#[derive(Debug, Default)]
pub struct PruneResult {
    /// GC-list handles of the versions that were removed.
    pub removed_handles: Vec<GcHandle>,
    /// Number of versions removed from the chain.
    pub removed: usize,
    /// `true` if, after pruning, the chain holds no information a reader
    /// could not obtain from the persistent store, and the whole cache
    /// entry can be dropped.
    pub droppable: bool,
}

impl<V> VersionChain<V> {
    /// Creates an empty chain.
    pub fn new() -> Self {
        VersionChain {
            versions: Vec::new(),
        }
    }

    /// Creates a chain seeded with a single base version (the value the
    /// persistent store currently holds).
    pub fn with_base(commit_ts: Timestamp, payload: Arc<V>) -> Self {
        VersionChain {
            versions: vec![Version::alive(commit_ts, payload)],
        }
    }

    /// Number of versions in the chain.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Returns `true` if the chain holds no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Installs a newly committed version. `commit_ts` must be greater than
    /// every timestamp already in the chain (commit timestamps are
    /// monotone); out-of-order installs are inserted at the right position
    /// as a defensive measure.
    pub fn install(&mut self, version: Version<V>) {
        if self
            .versions
            .first()
            .is_none_or(|newest| version.commit_ts > newest.commit_ts)
        {
            self.versions.insert(0, version);
        } else {
            // Defensive slow path: keep the newest-first invariant.
            let pos = self
                .versions
                .iter()
                .position(|v| v.commit_ts < version.commit_ts)
                .unwrap_or(self.versions.len());
            self.versions.insert(pos, version);
        }
    }

    /// The newest version regardless of visibility.
    pub fn newest(&self) -> Option<&Version<V>> {
        self.versions.first()
    }

    /// Commit timestamp of the newest version, if any.
    pub fn newest_commit_ts(&self) -> Option<Timestamp> {
        self.versions.first().map(|v| v.commit_ts)
    }

    /// The newest version visible to a reader that started at `start_ts`
    /// (the paper's read rule).
    pub fn visible_at(&self, start_ts: Timestamp) -> Option<&Version<V>> {
        self.versions.iter().find(|v| v.visible_to(start_ts))
    }

    /// Iterates over the versions, newest first.
    pub fn iter(&self) -> impl Iterator<Item = &Version<V>> {
        self.versions.iter()
    }

    /// Mutable access used when threading versions into the GC list.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Version<V>> {
        self.versions.iter_mut()
    }

    /// Sets the GC handle of the version with the given commit timestamp.
    pub fn set_gc_handle(&mut self, commit_ts: Timestamp, handle: GcHandle) {
        if let Some(v) = self.versions.iter_mut().find(|v| v.commit_ts == commit_ts) {
            v.gc_handle = Some(handle);
        }
    }

    /// GC-list handles of every version currently in the chain.
    pub fn all_handles(&self) -> Vec<GcHandle> {
        self.versions.iter().filter_map(|v| v.gc_handle).collect()
    }

    /// Removes the version installed at exactly `commit_ts`, returning it.
    /// Used by the commit pipeline to roll back a version it installed for
    /// a commit that subsequently aborted (failed store apply) *before*
    /// any snapshot could observe it.
    pub fn remove_at(&mut self, commit_ts: Timestamp) -> Option<Version<V>> {
        let idx = self
            .versions
            .iter()
            .position(|v| v.commit_ts == commit_ts)?;
        Some(self.versions.remove(idx))
    }

    /// Prunes the chain against the GC `watermark` (the start timestamp of
    /// the oldest active transaction).
    ///
    /// * Every version strictly older than the newest version visible at
    ///   the watermark is unreachable ("will never be read by any active
    ///   transaction") and is removed.
    /// * If the newest visible version is a tombstone it is removed too —
    ///   every active or future reader observes the deletion, and the
    ///   persistent store no longer holds the entity.
    /// * The result is marked `droppable` when the chain afterwards holds at
    ///   most one version, that version is alive, and it is visible at the
    ///   watermark — i.e. the persistent store alone can serve every
    ///   current and future reader, so the whole cache entry may be
    ///   released.
    pub fn prune(&mut self, watermark: Timestamp) -> PruneResult {
        let mut result = PruneResult::default();
        let Some(keep_idx) = self.versions.iter().position(|v| v.visible_to(watermark)) else {
            // Nothing is old enough to touch.
            return result;
        };

        // Remove everything strictly older than the newest visible version.
        let removed_tail: Vec<Version<V>> = self.versions.split_off(keep_idx + 1);
        for v in &removed_tail {
            if let Some(h) = v.gc_handle {
                result.removed_handles.push(h);
            }
        }
        result.removed += removed_tail.len();

        // If the newest visible version is a tombstone, drop it as well.
        if self.versions[keep_idx].is_tombstone() {
            let v = self.versions.remove(keep_idx);
            if let Some(h) = v.gc_handle {
                result.removed_handles.push(h);
            }
            result.removed += 1;
        }

        result.droppable = match self.versions.len() {
            0 => true,
            1 => {
                let only = &self.versions[0];
                !only.is_tombstone() && only.visible_to(watermark)
            }
            _ => false,
        };
        result
    }
}

impl<V> Default for VersionChain<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alive(ts: u64, value: i32) -> Version<i32> {
        Version::alive(Timestamp(ts), Arc::new(value))
    }

    fn chain(versions: Vec<Version<i32>>) -> VersionChain<i32> {
        let mut c = VersionChain::new();
        for v in versions {
            c.install(v);
        }
        c
    }

    #[test]
    fn install_keeps_newest_first() {
        let c = chain(vec![alive(1, 10), alive(3, 30), alive(2, 20)]);
        let timestamps: Vec<u64> = c.iter().map(|v| v.commit_ts.raw()).collect();
        assert_eq!(timestamps, vec![3, 2, 1]);
        assert_eq!(c.newest_commit_ts(), Some(Timestamp(3)));
    }

    #[test]
    fn read_rule_selects_newest_visible() {
        let c = chain(vec![alive(40, 1), alive(56, 2), alive(90, 3)]);
        assert_eq!(
            *c.visible_at(Timestamp(100))
                .unwrap()
                .payload
                .as_ref()
                .unwrap()
                .as_ref(),
            3
        );
        assert_eq!(
            *c.visible_at(Timestamp(60))
                .unwrap()
                .payload
                .as_ref()
                .unwrap()
                .as_ref(),
            2
        );
        assert_eq!(
            *c.visible_at(Timestamp(40))
                .unwrap()
                .payload
                .as_ref()
                .unwrap()
                .as_ref(),
            1
        );
        assert!(c.visible_at(Timestamp(39)).is_none());
    }

    #[test]
    fn tombstone_is_visible_as_deletion() {
        let mut c = chain(vec![alive(5, 1)]);
        c.install(Version::tombstone(Timestamp(9)));
        assert!(c.visible_at(Timestamp(10)).unwrap().is_tombstone());
        assert!(!c.visible_at(Timestamp(7)).unwrap().is_tombstone());
    }

    #[test]
    fn prune_removes_unreachable_versions() {
        // The paper's example: versions 40, 56, 90; oldest active start 100.
        let mut c = chain(vec![alive(40, 1), alive(56, 2), alive(90, 3)]);
        let result = c.prune(Timestamp(100));
        assert_eq!(result.removed, 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.newest_commit_ts(), Some(Timestamp(90)));
        // Only one alive visible version left: the cache entry can be
        // dropped because the store holds the same state.
        assert!(result.droppable);
    }

    #[test]
    fn prune_keeps_versions_needed_by_old_readers() {
        let mut c = chain(vec![alive(40, 1), alive(56, 2), alive(90, 3)]);
        let result = c.prune(Timestamp(60));
        // 56 is the newest visible at 60, so only 40 can go; 90 stays for
        // future readers.
        assert_eq!(result.removed, 1);
        assert_eq!(c.len(), 2);
        assert!(!result.droppable);
        assert!(c.visible_at(Timestamp(60)).is_some());
    }

    #[test]
    fn prune_with_no_visible_version_is_a_noop() {
        let mut c = chain(vec![alive(40, 1), alive(56, 2)]);
        let result = c.prune(Timestamp(10));
        assert_eq!(result.removed, 0);
        assert_eq!(c.len(), 2);
        assert!(!result.droppable);
    }

    #[test]
    fn prune_drops_old_tombstones() {
        let mut c = chain(vec![alive(5, 1)]);
        c.install(Version::tombstone(Timestamp(9)));
        let result = c.prune(Timestamp(20));
        // Both the old version and the tombstone go; the chain is empty and
        // droppable.
        assert_eq!(result.removed, 2);
        assert!(c.is_empty());
        assert!(result.droppable);
    }

    #[test]
    fn prune_keeps_tombstone_while_old_reader_exists() {
        let mut c = chain(vec![alive(5, 1)]);
        c.install(Version::tombstone(Timestamp(9)));
        let result = c.prune(Timestamp(7));
        // A reader at 7 must still see the alive version; nothing removable.
        assert_eq!(result.removed, 0);
        assert_eq!(c.len(), 2);
        assert!(!result.droppable);
    }

    #[test]
    fn prune_collects_gc_handles() {
        let mut c = VersionChain::new();
        let mut v1 = alive(1, 1);
        v1.gc_handle = Some(crate::version::GcHandle(11));
        let mut v2 = alive(2, 2);
        v2.gc_handle = Some(crate::version::GcHandle(22));
        c.install(v1);
        c.install(v2);
        let result = c.prune(Timestamp(5));
        assert_eq!(result.removed, 1);
        assert_eq!(result.removed_handles, vec![crate::version::GcHandle(11)]);
        assert_eq!(c.all_handles(), vec![crate::version::GcHandle(22)]);
    }

    #[test]
    fn set_gc_handle_targets_specific_version() {
        let mut c = chain(vec![alive(1, 1), alive(2, 2)]);
        c.set_gc_handle(Timestamp(1), crate::version::GcHandle(5));
        let handles: Vec<Option<_>> = c.iter().map(|v| v.gc_handle).collect();
        assert_eq!(handles, vec![None, Some(crate::version::GcHandle(5))]);
    }

    #[test]
    fn newer_version_not_visible_to_old_snapshot_means_not_yet_created() {
        // Entity created at ts 50; reader started at 10.
        let c = chain(vec![alive(50, 1)]);
        assert!(c.visible_at(Timestamp(10)).is_none());
    }
}
