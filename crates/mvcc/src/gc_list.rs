//! The global garbage-collection list.
//!
//! "In order to make the version garbage collection efficient, they
//! [versions] are threaded with a double linked list sorted by timestamp to
//! enable to perform the garbage collection just traversing those versions
//! that must be garbage collected." (the paper, §4)
//!
//! The list is implemented as a slab-backed doubly linked list: nodes are
//! stored in a `Vec`, links are indices, and freed slots are recycled.
//! Commit timestamps are issued monotonically, so pushing at the tail keeps
//! the list sorted oldest-to-newest; the garbage collector walks from the
//! head and stops at the first version that is still too young to reclaim —
//! it never touches live versions, which is exactly the efficiency argument
//! the paper makes against vacuum-style full scans.

use graphsi_txn::Timestamp;

use crate::version::GcHandle;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    commit_ts: Timestamp,
    prev: Option<usize>,
    next: Option<usize>,
    /// Slot is occupied (not on the free list).
    occupied: bool,
}

/// A doubly linked list of (entity key, commit timestamp) entries sorted by
/// commit timestamp.
#[derive(Debug)]
pub struct GcList<K> {
    slab: Vec<Node<K>>,
    free: Vec<usize>,
    head: Option<usize>,
    tail: Option<usize>,
    len: usize,
}

impl<K: Copy> GcList<K> {
    /// Creates an empty list.
    pub fn new() -> Self {
        GcList {
            slab: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
            len: 0,
        }
    }

    /// Number of entries currently threaded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an entry for a version committed at `commit_ts`.
    ///
    /// `commit_ts` should be `>=` the current tail's timestamp (commit
    /// timestamps are monotone); if not, the entry is inserted at the
    /// correct position to preserve sorting.
    pub fn push(&mut self, key: K, commit_ts: Timestamp) -> GcHandle {
        let idx = self.alloc(Node {
            key,
            commit_ts,
            prev: None,
            next: None,
            occupied: true,
        });
        match self.tail {
            None => {
                self.head = Some(idx);
                self.tail = Some(idx);
            }
            Some(tail_idx) if self.slab[tail_idx].commit_ts <= commit_ts => {
                self.slab[idx].prev = Some(tail_idx);
                self.slab[tail_idx].next = Some(idx);
                self.tail = Some(idx);
            }
            Some(_) => {
                // Defensive slow path: walk backwards to the insertion
                // point.
                let mut cursor = self.tail;
                while let Some(c) = cursor {
                    if self.slab[c].commit_ts <= commit_ts {
                        break;
                    }
                    cursor = self.slab[c].prev;
                }
                match cursor {
                    Some(prev_idx) => {
                        let next_idx = self.slab[prev_idx].next;
                        self.slab[idx].prev = Some(prev_idx);
                        self.slab[idx].next = next_idx;
                        self.slab[prev_idx].next = Some(idx);
                        match next_idx {
                            Some(n) => self.slab[n].prev = Some(idx),
                            None => self.tail = Some(idx),
                        }
                    }
                    None => {
                        // New head.
                        let old_head = self.head;
                        self.slab[idx].next = old_head;
                        if let Some(h) = old_head {
                            self.slab[h].prev = Some(idx);
                        }
                        self.head = Some(idx);
                        if self.tail.is_none() {
                            self.tail = Some(idx);
                        }
                    }
                }
            }
        }
        self.len += 1;
        GcHandle(idx)
    }

    /// Unlinks the entry behind `handle`. Unlinking an already-removed
    /// handle is a no-op (GC and chain pruning may race benignly).
    pub fn remove(&mut self, handle: GcHandle) {
        let idx = handle.0;
        if idx >= self.slab.len() || !self.slab[idx].occupied {
            return;
        }
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            Some(p) => self.slab[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slab[n].prev = prev,
            None => self.tail = prev,
        }
        self.slab[idx].occupied = false;
        self.slab[idx].prev = None;
        self.slab[idx].next = None;
        self.free.push(idx);
        self.len -= 1;
    }

    /// Walks the list from the oldest entry, returning every `(handle, key,
    /// commit_ts)` with `commit_ts < before`. This is the only part of the
    /// version population a threaded GC run ever looks at.
    pub fn entries_older_than(&self, before: Timestamp) -> Vec<(GcHandle, K, Timestamp)> {
        let mut out = Vec::new();
        let mut cursor = self.head;
        while let Some(idx) = cursor {
            let node = &self.slab[idx];
            if node.commit_ts >= before {
                break;
            }
            out.push((GcHandle(idx), node.key, node.commit_ts));
            cursor = node.next;
        }
        out
    }

    /// The oldest entry's commit timestamp, if any.
    pub fn oldest_commit_ts(&self) -> Option<Timestamp> {
        self.head.map(|idx| self.slab[idx].commit_ts)
    }

    /// The newest entry's commit timestamp, if any.
    pub fn newest_commit_ts(&self) -> Option<Timestamp> {
        self.tail.map(|idx| self.slab[idx].commit_ts)
    }

    /// Checks the internal doubly-linked structure; used by property tests.
    pub fn check_invariants(&self) -> bool {
        // Forward walk must visit exactly `len` occupied nodes in
        // non-decreasing timestamp order, and prev pointers must mirror the
        // walk.
        let mut count = 0usize;
        let mut cursor = self.head;
        let mut prev: Option<usize> = None;
        let mut last_ts = Timestamp(0);
        while let Some(idx) = cursor {
            let node = &self.slab[idx];
            if !node.occupied || node.prev != prev || node.commit_ts < last_ts {
                return false;
            }
            last_ts = node.commit_ts;
            prev = Some(idx);
            cursor = node.next;
            count += 1;
            if count > self.slab.len() {
                return false; // cycle
            }
        }
        count == self.len && self.tail == prev
    }

    fn alloc(&mut self, node: Node<K>) -> usize {
        match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = node;
                idx
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        }
    }
}

impl<K: Copy> Default for GcList<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_and_walk_in_timestamp_order() {
        let mut list = GcList::new();
        list.push(1u64, Timestamp(10));
        list.push(2u64, Timestamp(20));
        list.push(3u64, Timestamp(30));
        assert_eq!(list.len(), 3);
        assert_eq!(list.oldest_commit_ts(), Some(Timestamp(10)));
        assert_eq!(list.newest_commit_ts(), Some(Timestamp(30)));
        let old: Vec<u64> = list
            .entries_older_than(Timestamp(25))
            .into_iter()
            .map(|(_, k, _)| k)
            .collect();
        assert_eq!(old, vec![1, 2]);
        assert!(list.check_invariants());
    }

    #[test]
    fn walk_stops_at_watermark_without_touching_young_entries() {
        let mut list = GcList::new();
        for i in 0..100u64 {
            list.push(i, Timestamp(i));
        }
        let touched = list.entries_older_than(Timestamp(10));
        assert_eq!(touched.len(), 10);
    }

    #[test]
    fn remove_middle_head_and_tail() {
        let mut list = GcList::new();
        let h1 = list.push(1u64, Timestamp(1));
        let h2 = list.push(2u64, Timestamp(2));
        let h3 = list.push(3u64, Timestamp(3));
        list.remove(h2);
        assert!(list.check_invariants());
        list.remove(h1);
        assert!(list.check_invariants());
        list.remove(h3);
        assert!(list.check_invariants());
        assert!(list.is_empty());
        assert_eq!(list.oldest_commit_ts(), None);
    }

    #[test]
    fn double_remove_is_a_noop() {
        let mut list = GcList::new();
        let h = list.push(1u64, Timestamp(1));
        list.remove(h);
        list.remove(h);
        assert!(list.is_empty());
        assert!(list.check_invariants());
    }

    #[test]
    fn slots_are_recycled() {
        let mut list = GcList::new();
        let h1 = list.push(1u64, Timestamp(1));
        list.remove(h1);
        let h2 = list.push(2u64, Timestamp(2));
        // The freed slot is reused.
        assert_eq!(h1.raw(), h2.raw());
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn out_of_order_push_keeps_sorting() {
        let mut list = GcList::new();
        list.push(1u64, Timestamp(10));
        list.push(2u64, Timestamp(5));
        list.push(3u64, Timestamp(7));
        assert!(list.check_invariants());
        let keys: Vec<u64> = list
            .entries_older_than(Timestamp(100))
            .into_iter()
            .map(|(_, k, _)| k)
            .collect();
        assert_eq!(keys, vec![2, 3, 1]);
    }

    proptest! {
        #[test]
        fn prop_invariants_hold_under_random_ops(ops in proptest::collection::vec((0u8..2, 0u64..50), 1..200)) {
            let mut list = GcList::new();
            let mut handles: Vec<GcHandle> = Vec::new();
            let mut ts = 0u64;
            for (op, x) in ops {
                match op {
                    0 => {
                        ts += 1;
                        handles.push(list.push(x, Timestamp(ts)));
                    }
                    _ => {
                        if !handles.is_empty() {
                            let idx = (x as usize) % handles.len();
                            list.remove(handles[idx]);
                        }
                    }
                }
                prop_assert!(list.check_invariants());
            }
        }
    }
}
