//! # graphsi-index
//!
//! The versioned index layer described in §4 of *"Snapshot Isolation for
//! Neo4j"* (EDBT 2016): a label index (label → nodes), a node property
//! index and a relationship property index, all with snapshot-visible,
//! commit-timestamp-tagged posting lists.
//!
//! Index entries are never destructively removed on label/property removal
//! or entity deletion; they are tombstoned with the removing transaction's
//! commit timestamp and physically reclaimed later by garbage collection
//! once no active transaction can observe them — exactly mirroring the
//! treatment of node and relationship versions in `graphsi-mvcc`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod label_index;
pub mod posting;
pub mod property_index;

pub use label_index::LabelIndex;
pub use posting::{
    bound_as_ref, IndexStats, PostingCursor, PostingEntry, RangePostingCursor,
    VersionedPostingIndex,
};
pub use property_index::{
    composite_range_bounds, NodePropertyIndex, PropertyIndex, PropertyIndexKey,
    RelationshipPropertyIndex,
};

/// The full set of indexes maintained by a graph database instance: the two
/// node indexes (labels, properties) and the relationship property index
/// that the paper lists in §2.
#[derive(Debug, Default)]
pub struct GraphIndexes {
    /// Label → nodes.
    pub labels: LabelIndex,
    /// (property key, value) → nodes.
    pub node_properties: NodePropertyIndex,
    /// (property key, value) → relationships.
    pub relationship_properties: RelationshipPropertyIndex,
}

impl GraphIndexes {
    /// Creates an empty index set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs garbage collection over all three indexes, returning the total
    /// number of postings reclaimed.
    pub fn gc(&self, watermark: graphsi_txn::Timestamp) -> u64 {
        self.labels.gc(watermark)
            + self.node_properties.gc(watermark)
            + self.relationship_properties.gc(watermark)
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;
    use graphsi_storage::{LabelToken, NodeId, PropertyKeyToken, PropertyValue};
    use graphsi_txn::Timestamp;

    #[test]
    fn graph_indexes_gc_spans_all_indexes() {
        let indexes = GraphIndexes::new();
        let node = NodeId::new(1);
        indexes.labels.add(LabelToken(0), node, Timestamp(1));
        indexes.labels.remove(LabelToken(0), node, Timestamp(2));
        indexes.node_properties.add(
            PropertyKeyToken(0),
            &PropertyValue::Int(1),
            node,
            Timestamp(1),
        );
        indexes.node_properties.remove(
            PropertyKeyToken(0),
            &PropertyValue::Int(1),
            node,
            Timestamp(2),
        );
        assert_eq!(indexes.gc(Timestamp(10)), 2);
    }
}
