//! Versioned posting lists — the building block of every index.
//!
//! The paper (§4): index entries (labels, property values) "are never
//! deleted in Neo4j even if no node/relationship is using them. We version
//! them to know whether they should be considered or not. [...] The
//! nodes/relationships are tagged with the commit timestamp of the
//! transaction that associated the label/property to the
//! node/relationship", so a reader can discard postings that do not belong
//! to its snapshot.
//!
//! [`VersionedPostingIndex`] is generic over the index key `K` (a label
//! token, a `(property key, value)` pair, ...) and the entity ID `E`
//! (node or relationship), and implements exactly that scheme:
//!
//! * every key remembers the commit timestamp at which it was first
//!   created, so a reader older than the key skips the whole entry;
//! * every posting carries an `added_ts` and an optional `removed_ts`;
//!   membership is visible iff `added_ts <= start_ts < removed_ts`;
//! * physically removing postings (and keys) is the job of the garbage
//!   collector, driven by the oldest-active-transaction watermark.
//!
//! Keys live in an **ordered** map (`BTreeMap`), so beyond point lookups
//! the index exposes a sorted key dimension: [`VersionedPostingIndex::range_cursor`]
//! pages the snapshot-visible members of every key inside a bound pair —
//! the substrate for pushing comparison predicates (`age >= 30`,
//! `ts BETWEEN a AND b`) into the index instead of decode-filtering every
//! candidate.

use std::collections::BTreeMap;
use std::ops::Bound;

use parking_lot::RwLock;

use graphsi_txn::Timestamp;

/// One versioned membership entry of an index posting list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PostingEntry<E> {
    /// The entity (node or relationship) the posting refers to.
    pub entity: E,
    /// Commit timestamp of the transaction that added the membership.
    pub added_ts: Timestamp,
    /// Commit timestamp of the transaction that removed it, if any.
    pub removed_ts: Option<Timestamp>,
}

impl<E: Copy> PostingEntry<E> {
    /// Creates a live posting added at `added_ts`.
    pub fn new(entity: E, added_ts: Timestamp) -> Self {
        PostingEntry {
            entity,
            added_ts,
            removed_ts: None,
        }
    }

    /// Is this membership visible to a reader with the given start
    /// timestamp?
    pub fn visible_to(&self, start_ts: Timestamp) -> bool {
        if !self.added_ts.visible_to(start_ts) {
            return false;
        }
        match self.removed_ts {
            None => true,
            Some(removed) => !removed.visible_to(start_ts),
        }
    }

    /// Is this posting dead for every present and future reader given the
    /// GC watermark (oldest active start timestamp)?
    pub fn reclaimable(&self, watermark: Timestamp) -> bool {
        matches!(self.removed_ts, Some(removed) if removed.visible_to(watermark))
    }
}

struct KeyEntry<E> {
    /// Commit timestamp at which the key itself first appeared.
    created_ts: Timestamp,
    postings: Vec<PostingEntry<E>>,
    /// Number of postings with no removal timestamp — the live fraction,
    /// maintained incrementally on add/tombstone so planner cardinality
    /// estimates track churn instead of counting dead postings.
    live: u64,
}

/// Statistics of one versioned index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of distinct keys.
    pub keys: u64,
    /// Total postings (live + dead).
    pub postings: u64,
    /// Postings whose removal is already visible to every active reader.
    pub dead_postings: u64,
    /// Postings with no removal timestamp (the live fraction).
    pub live_postings: u64,
}

/// A snapshot-visible index from keys to posting lists of entities, with
/// an ordered key dimension for range scans.
pub struct VersionedPostingIndex<K, E> {
    entries: RwLock<BTreeMap<K, KeyEntry<E>>>,
}

impl<K, E> VersionedPostingIndex<K, E>
where
    K: Ord + Clone,
    E: Copy + Eq,
{
    /// Creates an empty index.
    pub fn new() -> Self {
        VersionedPostingIndex {
            // Lock-order rank: see the README's lock-rank map.
            entries: RwLock::with_rank(BTreeMap::new(), 2560, "index.postings"),
        }
    }

    /// Records that `entity` gained membership under `key` at commit
    /// timestamp `commit_ts`.
    pub fn add(&self, key: K, entity: E, commit_ts: Timestamp) {
        let mut entries = self.entries.write();
        let entry = entries.entry(key).or_insert_with(|| KeyEntry {
            created_ts: commit_ts,
            postings: Vec::new(),
            live: 0,
        });
        if commit_ts < entry.created_ts {
            entry.created_ts = commit_ts;
        }
        // Re-adding after a removal creates a fresh posting; the old one
        // stays for older snapshots until GC reclaims it.
        entry.postings.push(PostingEntry::new(entity, commit_ts));
        entry.live += 1;
    }

    /// Records that `entity` lost membership under `key` at commit
    /// timestamp `commit_ts`. The posting is kept (tombstoned) so older
    /// snapshots still see it.
    pub fn remove(&self, key: &K, entity: E, commit_ts: Timestamp) {
        let mut entries = self.entries.write();
        if let Some(entry) = entries.get_mut(key) {
            // Tombstone the newest still-live posting for this entity.
            if let Some(p) = entry
                .postings
                .iter_mut()
                .rev()
                .find(|p| p.entity == entity && p.removed_ts.is_none())
            {
                p.removed_ts = Some(commit_ts);
                entry.live = entry.live.saturating_sub(1);
            }
        }
    }

    /// Returns every entity whose membership under `key` is visible to a
    /// reader with start timestamp `start_ts`.
    ///
    /// Following the paper, if the key itself was created after the
    /// reader's snapshot the whole entry is discarded without looking at
    /// its postings.
    pub fn lookup(&self, key: &K, start_ts: Timestamp) -> Vec<E> {
        let mut out = Vec::new();
        self.lookup_with(key, start_ts, |e| out.push(e));
        out
    }

    /// Borrowing variant of [`VersionedPostingIndex::lookup`]: calls `f`
    /// for every visible member instead of allocating a `Vec`. The posting
    /// list's read lock is held for the duration of the walk, so `f` should
    /// be cheap.
    pub fn lookup_with(&self, key: &K, start_ts: Timestamp, mut f: impl FnMut(E)) {
        let entries = self.entries.read();
        let Some(entry) = entries.get(key) else {
            return;
        };
        if !entry.created_ts.visible_to(start_ts) {
            return;
        }
        for p in &entry.postings {
            if p.visible_to(start_ts) {
                f(p.entity);
            }
        }
    }

    /// Opens a chunked, GC-safe cursor over the visible members of `key`.
    ///
    /// The cursor holds no lock between refills and buffers at most
    /// `chunk_size` entities at a time; each refill re-locates its position
    /// in the posting list and re-applies snapshot visibility, so postings
    /// physically reclaimed (or appended) by concurrent GC and commits
    /// cannot be handed out. A posting *visible* to the cursor's snapshot
    /// is never reclaimable while that snapshot's transaction is active
    /// (the GC watermark is at or below every active start timestamp), so
    /// resumption is lossless.
    pub fn cursor(
        &self,
        key: K,
        start_ts: Timestamp,
        chunk_size: usize,
    ) -> PostingCursor<'_, K, E> {
        PostingCursor {
            index: self,
            key,
            start_ts,
            chunk: chunk_size.max(1),
            marker: None,
            pos_hint: 0,
            done: false,
        }
    }

    /// Opens a chunked, GC-safe cursor over the visible members of every
    /// key inside `(lo, hi)`, walking keys in sort order (the index's
    /// sorted key dimension). Same resumption contract as
    /// [`VersionedPostingIndex::cursor`]: no lock is held between refills,
    /// at most `chunk_size` entities are buffered, and the cursor is
    /// lossless across GC compaction and concurrent appends — see
    /// [`RangePostingCursor`].
    pub fn range_cursor(
        &self,
        lo: Bound<K>,
        hi: Bound<K>,
        start_ts: Timestamp,
        chunk_size: usize,
    ) -> RangePostingCursor<'_, K, E> {
        RangePostingCursor {
            index: self,
            lo,
            hi,
            start_ts,
            chunk: chunk_size.max(1),
            marker: None,
            pos_hint: 0,
            descending: false,
            done: false,
        }
    }

    /// Like [`VersionedPostingIndex::range_cursor`], but walks the keys in
    /// **descending** sort order — the substrate for index-streamed
    /// `ORDER BY ... DESC` / descending top-k. Same resumption contract;
    /// on refill the marker key becomes the inclusive *upper* bound of the
    /// walk instead of the lower one, so GC compaction and concurrent
    /// appends remain lossless and phantom-free in either direction.
    pub fn range_cursor_desc(
        &self,
        lo: Bound<K>,
        hi: Bound<K>,
        start_ts: Timestamp,
        chunk_size: usize,
    ) -> RangePostingCursor<'_, K, E> {
        RangePostingCursor {
            index: self,
            lo,
            hi,
            start_ts,
            chunk: chunk_size.max(1),
            marker: None,
            pos_hint: 0,
            descending: true,
            done: false,
        }
    }

    /// Live postings (no removal timestamp) stored under `key` — a cheap
    /// cardinality estimate for the query planner. The counter is
    /// maintained incrementally on add/tombstone, so heavy removal churn
    /// between GC passes no longer inflates the estimate and steers plan
    /// choice wrong.
    pub fn postings_estimate(&self, key: &K) -> u64 {
        self.entries.read().get(key).map_or(0, |e| e.live)
    }

    /// Live postings (no removal timestamp) stored under every key inside
    /// `(lo, hi)`, saturating at `cap` — the planner's range-cardinality
    /// estimate. Walks only the keys in range and stops as soon as the
    /// running total reaches `cap`, so comparing a huge range against a
    /// small competing estimate costs O(keys up to cap), not O(keys in
    /// range).
    pub fn range_postings_estimate(&self, lo: Bound<&K>, hi: Bound<&K>, cap: u64) -> u64 {
        if !bounds_are_ordered(&lo, &hi) {
            return 0;
        }
        let entries = self.entries.read();
        let mut total = 0u64;
        for (_, e) in entries.range((lo, hi)) {
            total = total.saturating_add(e.live);
            if total >= cap {
                return cap;
            }
        }
        total
    }

    /// Returns `true` if `entity` is a visible member of `key` for the
    /// given snapshot.
    pub fn contains(&self, key: &K, entity: E, start_ts: Timestamp) -> bool {
        self.lookup(key, start_ts).contains(&entity)
    }

    /// Every key currently present (regardless of snapshot visibility).
    pub fn keys(&self) -> Vec<K> {
        let mut out = Vec::new();
        self.for_each_key(|k| out.push(k.clone()));
        out
    }

    /// Borrowing variant of [`VersionedPostingIndex::keys`]: calls `f` for
    /// every key without allocating. The index's read lock is held for the
    /// duration of the walk.
    pub fn for_each_key(&self, mut f: impl FnMut(&K)) {
        for key in self.entries.read().keys() {
            f(key);
        }
    }

    /// Physically removes postings that are dead for every active reader
    /// (removed at or before the watermark), and drops keys whose posting
    /// lists become empty. Returns the number of postings reclaimed.
    pub fn gc(&self, watermark: Timestamp) -> u64 {
        let mut entries = self.entries.write();
        let mut reclaimed = 0u64;
        entries.retain(|_, entry| {
            let before = entry.postings.len();
            // Reclaimable postings always carry a removal timestamp, so the
            // live counter is untouched by compaction.
            entry.postings.retain(|p| !p.reclaimable(watermark));
            reclaimed += (before - entry.postings.len()) as u64;
            debug_assert_eq!(
                entry.live as usize,
                entry
                    .postings
                    .iter()
                    .filter(|p| p.removed_ts.is_none())
                    .count(),
                "live-fraction counter out of sync with posting list"
            );
            !entry.postings.is_empty()
        });
        reclaimed
    }

    /// Index statistics.
    pub fn stats(&self) -> IndexStats {
        let entries = self.entries.read();
        let mut stats = IndexStats {
            keys: entries.len() as u64,
            ..Default::default()
        };
        // A conservative watermark of "now" is not known here; dead
        // postings are counted as "has a removal timestamp".
        for entry in entries.values() {
            stats.postings += entry.postings.len() as u64;
            stats.live_postings += entry.live;
            stats.dead_postings += entry
                .postings
                .iter()
                .filter(|p| p.removed_ts.is_some())
                .count() as u64;
        }
        stats
    }
}

/// A resumable, chunked cursor over one posting list, created by
/// [`VersionedPostingIndex::cursor`].
///
/// Between [`PostingCursor::next_chunk`] calls the cursor holds **no lock**
/// and remembers only a resume marker — the `(added_ts, entity)` pair of
/// the last posting it handed out. Each refill re-locates that marker in
/// the (possibly GC-compacted, possibly appended-to) posting list and
/// continues from there:
///
/// * postings removed by GC were dead for every active snapshot, so they
///   were never part of this cursor's result set;
/// * postings appended by concurrent commits carry a commit timestamp above
///   the cursor's snapshot and are filtered by visibility;
/// * the marker posting itself is visible to the snapshot and therefore
///   not reclaimable while the owning transaction is active.
pub struct PostingCursor<'a, K, E> {
    index: &'a VersionedPostingIndex<K, E>,
    key: K,
    start_ts: Timestamp,
    chunk: usize,
    /// `(added_ts, entity)` of the last yielded posting. `(added_ts,
    /// entity)` is unique within one key: a single commit adds at most one
    /// posting per (key, entity), and commit timestamps are distinct.
    marker: Option<(Timestamp, E)>,
    /// Index at which the marker posting was last seen. Checked first on
    /// refill so the common case (no GC compaction in between) resumes in
    /// O(1) instead of rescanning the list.
    pos_hint: usize,
    done: bool,
}

impl<K, E> PostingCursor<'_, K, E>
where
    K: Ord + Clone,
    E: Copy + Eq,
{
    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Clamps the next refills to at most `max` entities (floored at 1) —
    /// the limit-pushdown hook: a consumer that only owes its caller `max`
    /// more rows has no reason to page a full chunk.
    pub fn clamp_chunk(&mut self, max: usize) {
        self.chunk = self.chunk.min(max.max(1));
    }

    /// Refills `buf` (cleared first) with up to `chunk_size` visible
    /// entities, resuming after the last posting handed out. Returns
    /// `false` once the posting list is exhausted and `buf` stayed empty.
    pub fn next_chunk(&mut self, buf: &mut Vec<E>) -> bool {
        buf.clear();
        if self.done {
            return false;
        }
        let entries = self.index.entries.read();
        let Some(entry) = entries.get(&self.key) else {
            // Key never existed — or GC dropped it, which requires every
            // posting to be dead for every active snapshot, ours included.
            self.done = true;
            return false;
        };
        if !entry.created_ts.visible_to(self.start_ts) {
            self.done = true;
            return false;
        }
        let postings = &entry.postings;
        let start = match &self.marker {
            None => 0,
            Some((ts, e)) => {
                let hinted = postings
                    .get(self.pos_hint)
                    .is_some_and(|p| p.added_ts == *ts && p.entity == *e);
                if hinted {
                    self.pos_hint + 1
                } else {
                    match postings
                        .iter()
                        .position(|p| p.added_ts == *ts && p.entity == *e)
                    {
                        Some(i) => i + 1,
                        // Defensive: the marker vanished (only possible when
                        // the cursor outlived its transaction and GC
                        // reclaimed the posting). Resume at the first
                        // posting of the marker's commit — the list is
                        // append-ordered by commit timestamp, and `>=`
                        // rather than `>` so still-live postings added by
                        // the same commit as the lost marker are re-yielded
                        // instead of skipped (duplicates beat lost entries).
                        None => postings
                            .iter()
                            .position(|p| p.added_ts >= *ts)
                            .unwrap_or(postings.len()),
                    }
                }
            }
        };
        for (off, p) in postings[start..].iter().enumerate() {
            if p.visible_to(self.start_ts) {
                buf.push(p.entity);
                self.marker = Some((p.added_ts, p.entity));
                self.pos_hint = start + off;
                if buf.len() >= self.chunk {
                    return true;
                }
            }
        }
        // Walked off the end of the list: whatever was collected is the
        // final chunk.
        self.done = true;
        !buf.is_empty()
    }
}

impl<K, E> std::fmt::Debug for PostingCursor<'_, K, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PostingCursor")
            .field("chunk", &self.chunk)
            .field("start_ts", &self.start_ts)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

/// `true` when `(lo, hi)` describes a range `BTreeMap::range` accepts (it
/// panics on inverted bounds and on an equal, doubly-excluded pair — both
/// of which are simply empty ranges for a cursor).
fn bounds_are_ordered<K: Ord>(lo: &Bound<&K>, hi: &Bound<&K>) -> bool {
    match (lo, hi) {
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => true,
        (Bound::Included(a), Bound::Included(b)) => a <= b,
        (Bound::Included(a), Bound::Excluded(b)) | (Bound::Excluded(a), Bound::Included(b)) => {
            a <= b
        }
        (Bound::Excluded(a), Bound::Excluded(b)) => a < b,
    }
}

/// Borrowing view of an owned bound — what the range APIs of this crate
/// take, so callers can keep ownership of their bound pair.
pub fn bound_as_ref<K>(bound: &Bound<K>) -> Bound<&K> {
    match bound {
        Bound::Included(k) => Bound::Included(k),
        Bound::Excluded(k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// A resumable, chunked cursor over every posting list whose key falls in
/// a bound pair, created by [`VersionedPostingIndex::range_cursor`]. This
/// is the index's *range postings* read path: a comparison predicate
/// compiles to one of these instead of a decode-based filter over every
/// candidate entity.
///
/// Between [`RangePostingCursor::next_chunk`] calls the cursor holds **no
/// lock** and remembers only a resume marker — the key of the posting list
/// it was parked in plus the `(added_ts, entity)` pair of the last posting
/// it handed out. Each refill re-enters the ordered key map at the marker
/// key (or the next surviving key, if GC dropped it — legal only when
/// every posting under it was dead for every active snapshot) and resumes
/// inside that key's posting list exactly like [`PostingCursor`] does:
///
/// * keys created after the snapshot, and postings added after it, are
///   filtered by visibility, so concurrent commits cannot leak phantoms;
/// * postings/keys removed by GC were invisible to every active snapshot,
///   so nothing this cursor still owes its reader can disappear;
/// * within one snapshot an entity holds at most one visible value per
///   property key, so a key-range walk yields each entity at most once.
pub struct RangePostingCursor<'a, K, E> {
    index: &'a VersionedPostingIndex<K, E>,
    lo: Bound<K>,
    hi: Bound<K>,
    start_ts: Timestamp,
    chunk: usize,
    /// Resume marker: the key the cursor is parked in and the
    /// `(added_ts, entity)` of the last posting handed out of it.
    marker: Option<(K, Timestamp, E)>,
    /// Position at which the marker posting was last seen in its list
    /// (O(1) resume in the common no-compaction case).
    pos_hint: usize,
    /// Walk keys in descending sort order. Within one key postings are
    /// still walked in list (commit) order — intra-key order carries no
    /// value ordering, every posting under a key shares the same value.
    descending: bool,
    done: bool,
}

impl<K, E> RangePostingCursor<'_, K, E>
where
    K: Ord + Clone,
    E: Copy + Eq,
{
    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Clamps the next refills to at most `max` entities (floored at 1) —
    /// the limit-pushdown hook: a consumer that only owes its caller `max`
    /// more rows has no reason to page a full chunk.
    pub fn clamp_chunk(&mut self, max: usize) {
        self.chunk = self.chunk.min(max.max(1));
    }

    /// Refills `buf` (cleared first) with up to `chunk_size` visible
    /// entities, resuming after the last posting handed out. Returns
    /// `false` once every key in the range is exhausted and `buf` stayed
    /// empty.
    pub fn next_chunk(&mut self, buf: &mut Vec<E>) -> bool {
        buf.clear();
        if self.done {
            return false;
        }
        let entries = self.index.entries.read();
        // Resume at the marker key (inclusive: its list may hold more
        // postings past the marker), or at the range start on first use.
        // Ascending walks clamp the lower bound to the marker; descending
        // walks clamp the upper bound instead.
        let (lower, upper): (Bound<&K>, Bound<&K>) = match &self.marker {
            None => (bound_as_ref(&self.lo), bound_as_ref(&self.hi)),
            Some((key, _, _)) if self.descending => (bound_as_ref(&self.lo), Bound::Included(key)),
            Some((key, _, _)) => (Bound::Included(key), bound_as_ref(&self.hi)),
        };
        if !bounds_are_ordered(&lower, &upper) {
            self.done = true;
            return false;
        }
        let range = entries.range((lower, upper));
        let keys: Box<dyn Iterator<Item = (&K, &KeyEntry<E>)>> = if self.descending {
            Box::new(range.rev())
        } else {
            Box::new(range)
        };
        for (key, entry) in keys {
            if !entry.created_ts.visible_to(self.start_ts) {
                continue;
            }
            let postings = &entry.postings;
            let start = match &self.marker {
                Some((marker_key, ts, e)) if marker_key == key => {
                    let hinted = postings
                        .get(self.pos_hint)
                        .is_some_and(|p| p.added_ts == *ts && p.entity == *e);
                    if hinted {
                        self.pos_hint + 1
                    } else {
                        match postings
                            .iter()
                            .position(|p| p.added_ts == *ts && p.entity == *e)
                        {
                            Some(i) => i + 1,
                            // Marker posting reclaimed (cursor outlived its
                            // transaction): resume at the marker's commit,
                            // preferring re-yields over lost entries — same
                            // stance as `PostingCursor`.
                            None => postings
                                .iter()
                                .position(|p| p.added_ts >= *ts)
                                .unwrap_or(postings.len()),
                        }
                    }
                }
                _ => 0,
            };
            for (off, p) in postings[start..].iter().enumerate() {
                if p.visible_to(self.start_ts) {
                    buf.push(p.entity);
                    self.marker = Some((key.clone(), p.added_ts, p.entity));
                    self.pos_hint = start + off;
                    if buf.len() >= self.chunk {
                        return true;
                    }
                }
            }
            // Key exhausted: fall through to the next key in range. The
            // marker still names the last *yielded* posting, which may live
            // under an earlier key — resumption re-enters at that key and
            // walks forward, skipping already-delivered postings.
        }
        self.done = true;
        !buf.is_empty()
    }
}

impl<K, E> std::fmt::Debug for RangePostingCursor<'_, K, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RangePostingCursor")
            .field("chunk", &self.chunk)
            .field("start_ts", &self.start_ts)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<K, E> Default for VersionedPostingIndex<K, E>
where
    K: Ord + Clone,
    E: Copy + Eq,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, E> std::fmt::Debug for VersionedPostingIndex<K, E>
where
    K: Ord + Clone,
    E: Copy + Eq,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("VersionedPostingIndex")
            .field("keys", &stats.keys)
            .field("postings", &stats.postings)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Index = VersionedPostingIndex<u32, u64>;

    #[test]
    fn posting_visibility_window() {
        let mut p = PostingEntry::new(1u64, Timestamp(10));
        assert!(!p.visible_to(Timestamp(9)));
        assert!(p.visible_to(Timestamp(10)));
        assert!(p.visible_to(Timestamp(100)));
        p.removed_ts = Some(Timestamp(20));
        assert!(p.visible_to(Timestamp(15)));
        assert!(!p.visible_to(Timestamp(20)));
        assert!(!p.visible_to(Timestamp(25)));
        assert!(!p.reclaimable(Timestamp(19)));
        assert!(p.reclaimable(Timestamp(20)));
    }

    #[test]
    fn lookup_respects_snapshot() {
        let index = Index::new();
        index.add(1, 100, Timestamp(10));
        index.add(1, 200, Timestamp(20));
        assert_eq!(index.lookup(&1, Timestamp(5)), Vec::<u64>::new());
        assert_eq!(index.lookup(&1, Timestamp(15)), vec![100]);
        let mut at_25 = index.lookup(&1, Timestamp(25));
        at_25.sort_unstable();
        assert_eq!(at_25, vec![100, 200]);
    }

    #[test]
    fn key_created_after_snapshot_is_discarded_entirely() {
        let index = Index::new();
        index.add(7, 1, Timestamp(50));
        index.add(7, 2, Timestamp(60));
        // Reader started before the key existed: the paper says it "can
        // simply discard them".
        assert!(index.lookup(&7, Timestamp(40)).is_empty());
        assert!(!index.contains(&7, 1, Timestamp(40)));
        assert!(index.contains(&7, 1, Timestamp(55)));
    }

    #[test]
    fn removal_is_versioned_not_destructive() {
        let index = Index::new();
        index.add(1, 100, Timestamp(10));
        index.remove(&1, 100, Timestamp(30));
        // Old snapshot still sees the membership; new one does not.
        assert_eq!(index.lookup(&1, Timestamp(20)), vec![100]);
        assert!(index.lookup(&1, Timestamp(30)).is_empty());
        assert_eq!(index.stats().dead_postings, 1);
    }

    #[test]
    fn re_adding_after_removal_creates_new_posting() {
        let index = Index::new();
        index.add(1, 100, Timestamp(10));
        index.remove(&1, 100, Timestamp(20));
        index.add(1, 100, Timestamp(30));
        assert_eq!(index.lookup(&1, Timestamp(15)), vec![100]);
        assert!(index.lookup(&1, Timestamp(25)).is_empty());
        assert_eq!(index.lookup(&1, Timestamp(35)), vec![100]);
        assert_eq!(index.stats().postings, 2);
    }

    #[test]
    fn remove_unknown_entity_is_a_noop() {
        let index = Index::new();
        index.add(1, 100, Timestamp(10));
        index.remove(&1, 999, Timestamp(20));
        index.remove(&2, 100, Timestamp(20));
        assert_eq!(index.lookup(&1, Timestamp(25)), vec![100]);
    }

    #[test]
    fn gc_reclaims_dead_postings_and_empty_keys() {
        let index = Index::new();
        index.add(1, 100, Timestamp(10));
        index.add(1, 200, Timestamp(10));
        index.remove(&1, 100, Timestamp(20));
        index.add(2, 300, Timestamp(10));
        index.remove(&2, 300, Timestamp(20));

        // Watermark before the removals: nothing reclaimable.
        assert_eq!(index.gc(Timestamp(15)), 0);
        assert_eq!(index.stats().postings, 3);

        // Watermark after the removals: both dead postings go, key 2
        // becomes empty and is dropped.
        assert_eq!(index.gc(Timestamp(20)), 2);
        let stats = index.stats();
        assert_eq!(stats.postings, 1);
        assert_eq!(stats.keys, 1);
        assert_eq!(index.lookup(&1, Timestamp(30)), vec![200]);
        assert!(index.lookup(&2, Timestamp(30)).is_empty());
    }

    #[test]
    fn keys_lists_all_keys() {
        let index = Index::new();
        index.add(1, 10, Timestamp(1));
        index.add(2, 20, Timestamp(2));
        let mut keys = index.keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn cursor_pages_through_visible_postings() {
        let index = Index::new();
        for e in 0..10u64 {
            index.add(1, e, Timestamp(e + 1));
        }
        // e=3 removed before the snapshot, e=9 added after it.
        index.remove(&1, 3, Timestamp(8));
        let mut cursor = index.cursor(1, Timestamp(8), 3);
        let mut buf = Vec::new();
        let mut out = Vec::new();
        while cursor.next_chunk(&mut buf) {
            assert!(buf.len() <= 3, "chunk bound violated: {}", buf.len());
            out.extend_from_slice(&buf);
        }
        assert_eq!(out, vec![0, 1, 2, 4, 5, 6, 7]);
        // Exhausted cursor stays exhausted.
        assert!(!cursor.next_chunk(&mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn cursor_survives_concurrent_append_and_gc() {
        let index = Index::new();
        for e in 0..6u64 {
            index.add(1, e, Timestamp(e + 1));
        }
        // Dead postings below the future watermark, interleaved.
        index.remove(&1, 0, Timestamp(7));
        index.remove(&1, 2, Timestamp(7));

        let mut cursor = index.cursor(1, Timestamp(10), 2);
        let mut buf = Vec::new();
        assert!(cursor.next_chunk(&mut buf));
        assert_eq!(buf, vec![1, 3]);

        // Concurrent world: GC compacts the list and a new commit appends.
        assert_eq!(index.gc(Timestamp(10)), 2);
        index.add(1, 99, Timestamp(20));

        let mut out = buf.clone();
        while cursor.next_chunk(&mut buf) {
            out.extend_from_slice(&buf);
        }
        // No lost entries (4, 5 still arrive), no phantoms (99 is above the
        // snapshot and never appears).
        assert_eq!(out, vec![1, 3, 4, 5]);
    }

    #[test]
    fn cursor_on_unknown_or_future_key_is_empty() {
        let index = Index::new();
        index.add(5, 1, Timestamp(50));
        let mut buf = Vec::new();
        assert!(!index.cursor(9, Timestamp(100), 4).next_chunk(&mut buf));
        // Key created after the snapshot: discarded wholesale.
        assert!(!index.cursor(5, Timestamp(40), 4).next_chunk(&mut buf));
    }

    #[test]
    fn chunk_size_one_yields_single_entities() {
        let index = Index::new();
        for e in 0..4u64 {
            index.add(1, e, Timestamp(e + 1));
        }
        let mut cursor = index.cursor(1, Timestamp(100), 1);
        assert_eq!(cursor.chunk_size(), 1);
        let mut buf = Vec::new();
        let mut count = 0;
        while cursor.next_chunk(&mut buf) {
            assert_eq!(buf.len(), 1);
            count += 1;
        }
        assert_eq!(count, 4);
    }

    fn drain_range(cursor: &mut RangePostingCursor<'_, u32, u64>) -> Vec<u64> {
        let mut buf = Vec::new();
        let mut out = Vec::new();
        while cursor.next_chunk(&mut buf) {
            assert!(buf.len() <= cursor.chunk_size());
            out.extend_from_slice(&buf);
        }
        out
    }

    #[test]
    fn range_cursor_walks_keys_in_order() {
        let index = Index::new();
        for key in [5u32, 1, 9, 3, 7] {
            for e in 0..3u64 {
                index.add(key, u64::from(key) * 100 + e, Timestamp(1));
            }
        }
        let mut cursor =
            index.range_cursor(Bound::Included(3), Bound::Excluded(8), Timestamp(10), 2);
        assert_eq!(
            drain_range(&mut cursor),
            vec![300, 301, 302, 500, 501, 502, 700, 701, 702],
            "keys 3, 5, 7 in sorted order; 1 and 9 excluded"
        );
        // Unbounded on both sides covers everything.
        let mut all = index.range_cursor(Bound::Unbounded, Bound::Unbounded, Timestamp(10), 4);
        assert_eq!(drain_range(&mut all).len(), 15);
        // Inverted bounds are an empty range, not a panic.
        let mut none = index.range_cursor(Bound::Included(8), Bound::Included(3), Timestamp(10), 4);
        let mut buf = Vec::new();
        assert!(!none.next_chunk(&mut buf));
    }

    #[test]
    fn range_cursor_applies_snapshot_visibility_per_key_and_posting() {
        let index = Index::new();
        index.add(1, 10, Timestamp(5));
        index.add(2, 20, Timestamp(50)); // key created after the snapshot
        index.add(3, 30, Timestamp(5));
        index.add(3, 31, Timestamp(50)); // posting after the snapshot
        index.remove(&3, 30, Timestamp(8)); // removed before the snapshot
        index.add(4, 40, Timestamp(7));
        let mut cursor = index.range_cursor(Bound::Unbounded, Bound::Unbounded, Timestamp(10), 16);
        assert_eq!(drain_range(&mut cursor), vec![10, 40]);
    }

    #[test]
    fn range_cursor_survives_concurrent_append_and_gc_across_keys() {
        let index = Index::new();
        for key in [1u32, 2, 3] {
            for e in 0..4u64 {
                index.add(key, u64::from(key) * 10 + e, Timestamp(e + 1));
            }
        }
        // Dead postings in keys the cursor has not reached yet.
        index.remove(&2, 21, Timestamp(5));
        index.remove(&3, 30, Timestamp(5));

        let mut cursor =
            index.range_cursor(Bound::Included(1), Bound::Included(3), Timestamp(10), 3);
        let mut buf = Vec::new();
        assert!(cursor.next_chunk(&mut buf));
        assert_eq!(buf, vec![10, 11, 12]);

        // Concurrent world: GC compacts (dropping dead postings), a new key
        // inside the range appears, and new postings land in key 2 — all
        // above the snapshot.
        assert_eq!(index.gc(Timestamp(10)), 2);
        index.add(2, 99, Timestamp(20));
        index.add(1, 98, Timestamp(20)); // behind the cursor, too-new anyway

        let mut out = buf.clone();
        while cursor.next_chunk(&mut buf) {
            out.extend_from_slice(&buf);
        }
        // Lossless: 13 and the surviving postings of keys 2 and 3 arrive;
        // no phantoms (98/99 are above the snapshot, 21/30 were removed).
        assert_eq!(out, vec![10, 11, 12, 13, 20, 22, 23, 31, 32, 33]);
    }

    #[test]
    fn range_cursor_resumes_after_its_own_key_is_gc_dropped() {
        let index = Index::new();
        index.add(1, 10, Timestamp(1));
        index.add(2, 20, Timestamp(1));
        index.add(3, 30, Timestamp(1));
        // The cursor's snapshot cannot see key 2 (removed before it).
        index.remove(&2, 20, Timestamp(2));

        let mut cursor =
            index.range_cursor(Bound::Included(1), Bound::Included(3), Timestamp(5), 1);
        let mut buf = Vec::new();
        assert!(cursor.next_chunk(&mut buf));
        assert_eq!(buf, vec![10]);
        // GC drops key 2 entirely while the cursor is parked in key 1.
        assert_eq!(index.gc(Timestamp(5)), 1);
        assert!(cursor.next_chunk(&mut buf));
        assert_eq!(buf, vec![30]);
        assert!(!cursor.next_chunk(&mut buf));
    }

    #[test]
    fn estimates_count_postings_in_range() {
        let index = Index::new();
        for key in [1u32, 2, 3] {
            for e in 0..key as u64 {
                index.add(key, e, Timestamp(1));
            }
        }
        assert_eq!(index.postings_estimate(&2), 2);
        assert_eq!(index.postings_estimate(&9), 0);
        assert_eq!(
            index.range_postings_estimate(Bound::Included(&2), Bound::Unbounded, u64::MAX),
            5
        );
        assert_eq!(
            index.range_postings_estimate(Bound::Included(&3), Bound::Included(&1), u64::MAX),
            0,
            "inverted bounds estimate as empty instead of panicking"
        );
    }

    #[test]
    fn estimates_track_live_fraction_under_churn() {
        let index = Index::new();
        for e in 0..10u64 {
            index.add(1, e, Timestamp(e + 1));
        }
        assert_eq!(index.postings_estimate(&1), 10);
        // Tombstone 7 of them — no GC yet, but the estimate must already
        // reflect the live fraction, not the physical posting count.
        for e in 0..7u64 {
            index.remove(&1, e, Timestamp(20));
        }
        assert_eq!(index.postings_estimate(&1), 3);
        assert_eq!(
            index.range_postings_estimate(Bound::Unbounded, Bound::Unbounded, u64::MAX),
            3
        );
        let stats = index.stats();
        assert_eq!(stats.postings, 10);
        assert_eq!(stats.live_postings, 3);
        assert_eq!(stats.dead_postings, 7);
        // GC compaction does not change the live count.
        assert_eq!(index.gc(Timestamp(20)), 7);
        assert_eq!(index.postings_estimate(&1), 3);
        // Re-adding raises it again.
        index.add(1, 0, Timestamp(30));
        assert_eq!(index.postings_estimate(&1), 4);
    }

    #[test]
    fn range_cursor_desc_walks_keys_in_reverse_order() {
        let index = Index::new();
        for key in [5u32, 1, 9, 3, 7] {
            for e in 0..3u64 {
                index.add(key, u64::from(key) * 100 + e, Timestamp(1));
            }
        }
        let mut cursor =
            index.range_cursor_desc(Bound::Included(3), Bound::Excluded(8), Timestamp(10), 2);
        assert_eq!(
            drain_range(&mut cursor),
            vec![700, 701, 702, 500, 501, 502, 300, 301, 302],
            "keys 7, 5, 3 in descending order; 1 and 9 excluded"
        );
        let mut all = index.range_cursor_desc(Bound::Unbounded, Bound::Unbounded, Timestamp(10), 4);
        let out = drain_range(&mut all);
        assert_eq!(out.len(), 15);
        assert_eq!(out[0], 900, "descending walk starts at the largest key");
        // Inverted bounds are an empty range, not a panic.
        let mut none =
            index.range_cursor_desc(Bound::Included(8), Bound::Included(3), Timestamp(10), 4);
        let mut buf = Vec::new();
        assert!(!none.next_chunk(&mut buf));
    }

    #[test]
    fn range_cursor_desc_survives_concurrent_append_and_gc_across_keys() {
        let index = Index::new();
        for key in [1u32, 2, 3] {
            for e in 0..4u64 {
                index.add(key, u64::from(key) * 10 + e, Timestamp(e + 1));
            }
        }
        // Dead postings in keys the descending cursor has not reached yet.
        index.remove(&2, 21, Timestamp(5));
        index.remove(&1, 10, Timestamp(5));

        let mut cursor =
            index.range_cursor_desc(Bound::Included(1), Bound::Included(3), Timestamp(10), 3);
        let mut buf = Vec::new();
        assert!(cursor.next_chunk(&mut buf));
        assert_eq!(buf, vec![30, 31, 32]);

        // Concurrent world: GC compacts, new postings land above and below
        // the parked key — all invisible to the snapshot.
        assert_eq!(index.gc(Timestamp(10)), 2);
        index.add(2, 99, Timestamp(20));
        index.add(3, 98, Timestamp(20)); // behind the cursor, too-new anyway

        let mut out = buf.clone();
        while cursor.next_chunk(&mut buf) {
            out.extend_from_slice(&buf);
        }
        // Lossless: 33 and the surviving postings of keys 2 and 1 arrive in
        // descending key order; no phantoms.
        assert_eq!(out, vec![30, 31, 32, 33, 20, 22, 23, 11, 12, 13]);
    }

    #[test]
    fn range_cursor_desc_resumes_after_its_own_key_is_gc_dropped() {
        let index = Index::new();
        index.add(1, 10, Timestamp(1));
        index.add(2, 20, Timestamp(1));
        index.add(3, 30, Timestamp(1));
        // The cursor's snapshot cannot see key 2 (removed before it).
        index.remove(&2, 20, Timestamp(2));

        let mut cursor =
            index.range_cursor_desc(Bound::Included(1), Bound::Included(3), Timestamp(5), 1);
        let mut buf = Vec::new();
        assert!(cursor.next_chunk(&mut buf));
        assert_eq!(buf, vec![30]);
        // GC drops key 2 entirely while the cursor is parked in key 3.
        assert_eq!(index.gc(Timestamp(5)), 1);
        assert!(cursor.next_chunk(&mut buf));
        assert_eq!(buf, vec![10]);
        assert!(!cursor.next_chunk(&mut buf));
    }

    #[test]
    fn lookup_with_matches_lookup() {
        let index = Index::new();
        index.add(1, 10, Timestamp(1));
        index.add(1, 20, Timestamp(2));
        index.remove(&1, 10, Timestamp(3));
        let mut streamed = Vec::new();
        index.lookup_with(&1, Timestamp(5), |e| streamed.push(e));
        assert_eq!(streamed, index.lookup(&1, Timestamp(5)));
        let mut keys = Vec::new();
        index.for_each_key(|k| keys.push(*k));
        assert_eq!(keys, vec![1]);
    }

    #[test]
    fn concurrent_adds_and_lookups() {
        use std::sync::Arc;
        let index = Arc::new(Index::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let index = Arc::clone(&index);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    index.add((i % 10) as u32, t * 1000 + i, Timestamp(t * 250 + i + 1));
                    let _ = index.lookup(&((i % 10) as u32), Timestamp(u64::MAX));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(index.stats().postings, 1000);
    }
}
