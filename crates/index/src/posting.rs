//! Versioned posting lists — the building block of every index.
//!
//! The paper (§4): index entries (labels, property values) "are never
//! deleted in Neo4j even if no node/relationship is using them. We version
//! them to know whether they should be considered or not. [...] The
//! nodes/relationships are tagged with the commit timestamp of the
//! transaction that associated the label/property to the
//! node/relationship", so a reader can discard postings that do not belong
//! to its snapshot.
//!
//! [`VersionedPostingIndex`] is generic over the index key `K` (a label
//! token, a `(property key, value)` pair, ...) and the entity ID `E`
//! (node or relationship), and implements exactly that scheme:
//!
//! * every key remembers the commit timestamp at which it was first
//!   created, so a reader older than the key skips the whole entry;
//! * every posting carries an `added_ts` and an optional `removed_ts`;
//!   membership is visible iff `added_ts <= start_ts < removed_ts`;
//! * physically removing postings (and keys) is the job of the garbage
//!   collector, driven by the oldest-active-transaction watermark.

use std::collections::HashMap;
use std::hash::Hash;

use parking_lot::RwLock;

use graphsi_txn::Timestamp;

/// One versioned membership entry of an index posting list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PostingEntry<E> {
    /// The entity (node or relationship) the posting refers to.
    pub entity: E,
    /// Commit timestamp of the transaction that added the membership.
    pub added_ts: Timestamp,
    /// Commit timestamp of the transaction that removed it, if any.
    pub removed_ts: Option<Timestamp>,
}

impl<E: Copy> PostingEntry<E> {
    /// Creates a live posting added at `added_ts`.
    pub fn new(entity: E, added_ts: Timestamp) -> Self {
        PostingEntry {
            entity,
            added_ts,
            removed_ts: None,
        }
    }

    /// Is this membership visible to a reader with the given start
    /// timestamp?
    pub fn visible_to(&self, start_ts: Timestamp) -> bool {
        if !self.added_ts.visible_to(start_ts) {
            return false;
        }
        match self.removed_ts {
            None => true,
            Some(removed) => !removed.visible_to(start_ts),
        }
    }

    /// Is this posting dead for every present and future reader given the
    /// GC watermark (oldest active start timestamp)?
    pub fn reclaimable(&self, watermark: Timestamp) -> bool {
        matches!(self.removed_ts, Some(removed) if removed.visible_to(watermark))
    }
}

struct KeyEntry<E> {
    /// Commit timestamp at which the key itself first appeared.
    created_ts: Timestamp,
    postings: Vec<PostingEntry<E>>,
}

/// Statistics of one versioned index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of distinct keys.
    pub keys: u64,
    /// Total postings (live + dead).
    pub postings: u64,
    /// Postings whose removal is already visible to every active reader.
    pub dead_postings: u64,
}

/// A snapshot-visible index from keys to posting lists of entities.
pub struct VersionedPostingIndex<K, E> {
    entries: RwLock<HashMap<K, KeyEntry<E>>>,
}

impl<K, E> VersionedPostingIndex<K, E>
where
    K: Hash + Eq + Clone,
    E: Copy + Eq,
{
    /// Creates an empty index.
    pub fn new() -> Self {
        VersionedPostingIndex {
            entries: RwLock::new(HashMap::new()),
        }
    }

    /// Records that `entity` gained membership under `key` at commit
    /// timestamp `commit_ts`.
    pub fn add(&self, key: K, entity: E, commit_ts: Timestamp) {
        let mut entries = self.entries.write();
        let entry = entries.entry(key).or_insert_with(|| KeyEntry {
            created_ts: commit_ts,
            postings: Vec::new(),
        });
        if commit_ts < entry.created_ts {
            entry.created_ts = commit_ts;
        }
        // Re-adding after a removal creates a fresh posting; the old one
        // stays for older snapshots until GC reclaims it.
        entry.postings.push(PostingEntry::new(entity, commit_ts));
    }

    /// Records that `entity` lost membership under `key` at commit
    /// timestamp `commit_ts`. The posting is kept (tombstoned) so older
    /// snapshots still see it.
    pub fn remove(&self, key: &K, entity: E, commit_ts: Timestamp) {
        let mut entries = self.entries.write();
        if let Some(entry) = entries.get_mut(key) {
            // Tombstone the newest still-live posting for this entity.
            if let Some(p) = entry
                .postings
                .iter_mut()
                .rev()
                .find(|p| p.entity == entity && p.removed_ts.is_none())
            {
                p.removed_ts = Some(commit_ts);
            }
        }
    }

    /// Returns every entity whose membership under `key` is visible to a
    /// reader with start timestamp `start_ts`.
    ///
    /// Following the paper, if the key itself was created after the
    /// reader's snapshot the whole entry is discarded without looking at
    /// its postings.
    pub fn lookup(&self, key: &K, start_ts: Timestamp) -> Vec<E> {
        let entries = self.entries.read();
        let Some(entry) = entries.get(key) else {
            return Vec::new();
        };
        if !entry.created_ts.visible_to(start_ts) {
            return Vec::new();
        }
        entry
            .postings
            .iter()
            .filter(|p| p.visible_to(start_ts))
            .map(|p| p.entity)
            .collect()
    }

    /// Returns `true` if `entity` is a visible member of `key` for the
    /// given snapshot.
    pub fn contains(&self, key: &K, entity: E, start_ts: Timestamp) -> bool {
        self.lookup(key, start_ts).contains(&entity)
    }

    /// Every key currently present (regardless of snapshot visibility).
    pub fn keys(&self) -> Vec<K> {
        self.entries.read().keys().cloned().collect()
    }

    /// Physically removes postings that are dead for every active reader
    /// (removed at or before the watermark), and drops keys whose posting
    /// lists become empty. Returns the number of postings reclaimed.
    pub fn gc(&self, watermark: Timestamp) -> u64 {
        let mut entries = self.entries.write();
        let mut reclaimed = 0u64;
        entries.retain(|_, entry| {
            let before = entry.postings.len();
            entry.postings.retain(|p| !p.reclaimable(watermark));
            reclaimed += (before - entry.postings.len()) as u64;
            !entry.postings.is_empty()
        });
        reclaimed
    }

    /// Index statistics.
    pub fn stats(&self) -> IndexStats {
        let entries = self.entries.read();
        let mut stats = IndexStats {
            keys: entries.len() as u64,
            ..Default::default()
        };
        // A conservative watermark of "now" is not known here; dead
        // postings are counted as "has a removal timestamp".
        for entry in entries.values() {
            stats.postings += entry.postings.len() as u64;
            stats.dead_postings += entry
                .postings
                .iter()
                .filter(|p| p.removed_ts.is_some())
                .count() as u64;
        }
        stats
    }
}

impl<K, E> Default for VersionedPostingIndex<K, E>
where
    K: Hash + Eq + Clone,
    E: Copy + Eq,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, E> std::fmt::Debug for VersionedPostingIndex<K, E>
where
    K: Hash + Eq + Clone,
    E: Copy + Eq,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("VersionedPostingIndex")
            .field("keys", &stats.keys)
            .field("postings", &stats.postings)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Index = VersionedPostingIndex<u32, u64>;

    #[test]
    fn posting_visibility_window() {
        let mut p = PostingEntry::new(1u64, Timestamp(10));
        assert!(!p.visible_to(Timestamp(9)));
        assert!(p.visible_to(Timestamp(10)));
        assert!(p.visible_to(Timestamp(100)));
        p.removed_ts = Some(Timestamp(20));
        assert!(p.visible_to(Timestamp(15)));
        assert!(!p.visible_to(Timestamp(20)));
        assert!(!p.visible_to(Timestamp(25)));
        assert!(!p.reclaimable(Timestamp(19)));
        assert!(p.reclaimable(Timestamp(20)));
    }

    #[test]
    fn lookup_respects_snapshot() {
        let index = Index::new();
        index.add(1, 100, Timestamp(10));
        index.add(1, 200, Timestamp(20));
        assert_eq!(index.lookup(&1, Timestamp(5)), Vec::<u64>::new());
        assert_eq!(index.lookup(&1, Timestamp(15)), vec![100]);
        let mut at_25 = index.lookup(&1, Timestamp(25));
        at_25.sort_unstable();
        assert_eq!(at_25, vec![100, 200]);
    }

    #[test]
    fn key_created_after_snapshot_is_discarded_entirely() {
        let index = Index::new();
        index.add(7, 1, Timestamp(50));
        index.add(7, 2, Timestamp(60));
        // Reader started before the key existed: the paper says it "can
        // simply discard them".
        assert!(index.lookup(&7, Timestamp(40)).is_empty());
        assert!(!index.contains(&7, 1, Timestamp(40)));
        assert!(index.contains(&7, 1, Timestamp(55)));
    }

    #[test]
    fn removal_is_versioned_not_destructive() {
        let index = Index::new();
        index.add(1, 100, Timestamp(10));
        index.remove(&1, 100, Timestamp(30));
        // Old snapshot still sees the membership; new one does not.
        assert_eq!(index.lookup(&1, Timestamp(20)), vec![100]);
        assert!(index.lookup(&1, Timestamp(30)).is_empty());
        assert_eq!(index.stats().dead_postings, 1);
    }

    #[test]
    fn re_adding_after_removal_creates_new_posting() {
        let index = Index::new();
        index.add(1, 100, Timestamp(10));
        index.remove(&1, 100, Timestamp(20));
        index.add(1, 100, Timestamp(30));
        assert_eq!(index.lookup(&1, Timestamp(15)), vec![100]);
        assert!(index.lookup(&1, Timestamp(25)).is_empty());
        assert_eq!(index.lookup(&1, Timestamp(35)), vec![100]);
        assert_eq!(index.stats().postings, 2);
    }

    #[test]
    fn remove_unknown_entity_is_a_noop() {
        let index = Index::new();
        index.add(1, 100, Timestamp(10));
        index.remove(&1, 999, Timestamp(20));
        index.remove(&2, 100, Timestamp(20));
        assert_eq!(index.lookup(&1, Timestamp(25)), vec![100]);
    }

    #[test]
    fn gc_reclaims_dead_postings_and_empty_keys() {
        let index = Index::new();
        index.add(1, 100, Timestamp(10));
        index.add(1, 200, Timestamp(10));
        index.remove(&1, 100, Timestamp(20));
        index.add(2, 300, Timestamp(10));
        index.remove(&2, 300, Timestamp(20));

        // Watermark before the removals: nothing reclaimable.
        assert_eq!(index.gc(Timestamp(15)), 0);
        assert_eq!(index.stats().postings, 3);

        // Watermark after the removals: both dead postings go, key 2
        // becomes empty and is dropped.
        assert_eq!(index.gc(Timestamp(20)), 2);
        let stats = index.stats();
        assert_eq!(stats.postings, 1);
        assert_eq!(stats.keys, 1);
        assert_eq!(index.lookup(&1, Timestamp(30)), vec![200]);
        assert!(index.lookup(&2, Timestamp(30)).is_empty());
    }

    #[test]
    fn keys_lists_all_keys() {
        let index = Index::new();
        index.add(1, 10, Timestamp(1));
        index.add(2, 20, Timestamp(2));
        let mut keys = index.keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn concurrent_adds_and_lookups() {
        use std::sync::Arc;
        let index = Arc::new(Index::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let index = Arc::clone(&index);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    index.add((i % 10) as u32, t * 1000 + i, Timestamp(t * 250 + i + 1));
                    let _ = index.lookup(&((i % 10) as u32), Timestamp(u64::MAX));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(index.stats().postings, 1000);
    }
}
