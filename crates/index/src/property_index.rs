//! The versioned property indexes.
//!
//! Neo4j keeps a property index for nodes and one for relationships (the
//! paper, §2). Both map a `(property key, value)` pair to the entities
//! holding that value, with the §4 multi-versioning applied: postings are
//! tagged with the commit timestamp that added (and, eventually, removed)
//! them so readers only see the memberships belonging to their snapshot.

use std::ops::Bound;

use graphsi_storage::{NodeId, PropertyKeyToken, PropertyValue, RelationshipId, ValueKey};
use graphsi_txn::Timestamp;

use crate::posting::{IndexStats, PostingCursor, RangePostingCursor, VersionedPostingIndex};

/// Index key: a property key token plus the canonical form of the value.
pub type PropertyIndexKey = (PropertyKeyToken, ValueKey);

/// Maps a value-range over one property key onto bounds of the composite
/// `(token, ValueKey)` key space, confining the range to the key token
/// *and* to the value type of its bounds (range predicates are
/// type-homogeneous: `age >= 30` never matches `age = "thirty"`).
///
/// Returns `None` when the pair cannot be expressed as one contiguous
/// composite range: bounds of two different value types (unsatisfiable —
/// callers should produce an empty scan).
pub fn composite_range_bounds(
    token: PropertyKeyToken,
    lo: Bound<&ValueKey>,
    hi: Bound<&ValueKey>,
) -> Option<(Bound<PropertyIndexKey>, Bound<PropertyIndexKey>)> {
    let typed = |b: &Bound<&ValueKey>| match b {
        Bound::Included(k) | Bound::Excluded(k) => Some((*k).clone()),
        Bound::Unbounded => None,
    };
    let (lo_key, hi_key) = (typed(&lo), typed(&hi));
    if let (Some(a), Some(b)) = (&lo_key, &hi_key) {
        if !a.same_type(b) {
            return None;
        }
    }
    let lower = match lo {
        Bound::Included(k) => Bound::Included((token, k.clone())),
        Bound::Excluded(k) => Bound::Excluded((token, k.clone())),
        // Clamp an open lower end to the hi bound's type floor; with both
        // ends open ("has this property at all"), start at the smallest
        // possible key.
        Bound::Unbounded => Bound::Included((
            token,
            hi_key
                .as_ref()
                .map_or(ValueKey::Bool(false), ValueKey::type_min),
        )),
    };
    let upper = match hi {
        Bound::Included(k) => Bound::Included((token, k.clone())),
        Bound::Excluded(k) => Bound::Excluded((token, k.clone())),
        Bound::Unbounded => match lo_key.as_ref().and_then(ValueKey::successor_type_min) {
            // Clamp an open upper end to the floor of the next value type.
            Some(ceiling) => Bound::Excluded((token, ceiling)),
            // String-typed (or fully open) ranges end at the next token.
            None => match token.0.checked_add(1) {
                Some(next) => Bound::Excluded((PropertyKeyToken(next), ValueKey::Bool(false))),
                None => Bound::Unbounded,
            },
        },
    };
    Some((lower, upper))
}

/// A snapshot-visible property index, generic over the entity kind.
#[derive(Debug)]
pub struct PropertyIndex<E: Copy + Eq> {
    inner: VersionedPostingIndex<PropertyIndexKey, E>,
}

impl<E: Copy + Eq> Default for PropertyIndex<E> {
    fn default() -> Self {
        PropertyIndex {
            inner: VersionedPostingIndex::new(),
        }
    }
}

impl<E: Copy + Eq> PropertyIndex<E> {
    /// Creates an empty property index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `entity` gained property `key = value` at `commit_ts`.
    pub fn add(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        entity: E,
        commit_ts: Timestamp,
    ) {
        self.inner.add((key, value.index_key()), entity, commit_ts);
    }

    /// Records that `entity` lost property `key = value` at `commit_ts`
    /// (value change, property removal or entity deletion).
    pub fn remove(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        entity: E,
        commit_ts: Timestamp,
    ) {
        self.inner
            .remove(&(key, value.index_key()), entity, commit_ts);
    }

    /// Entities whose property `key` equals `value` in the snapshot defined
    /// by `start_ts`.
    pub fn lookup(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        start_ts: Timestamp,
    ) -> Vec<E> {
        self.inner.lookup(&(key, value.index_key()), start_ts)
    }

    /// Borrowing variant of [`PropertyIndex::lookup`]: streams every
    /// visible entity through `f` without allocating a `Vec`.
    pub fn lookup_with(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        start_ts: Timestamp,
        f: impl FnMut(E),
    ) {
        self.inner
            .lookup_with(&(key, value.index_key()), start_ts, f);
    }

    /// Opens a chunked, GC-safe cursor over the entities whose property
    /// `key` equals `value` in the snapshot defined by `start_ts` (see
    /// [`crate::posting::PostingCursor`]).
    pub fn cursor(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        start_ts: Timestamp,
        chunk_size: usize,
    ) -> PostingCursor<'_, PropertyIndexKey, E> {
        self.inner
            .cursor((key, value.index_key()), start_ts, chunk_size)
    }

    /// Opens a chunked, GC-safe **range cursor** over the entities whose
    /// property `key` holds a value inside `(lo, hi)` in the snapshot
    /// defined by `start_ts` — the index-side execution of a comparison
    /// predicate (see [`crate::posting::RangePostingCursor`]). Bounds are
    /// type-homogeneous ([`composite_range_bounds`]); an unsatisfiable
    /// pair yields an immediately-exhausted cursor.
    pub fn range_cursor(
        &self,
        key: PropertyKeyToken,
        lo: Bound<&ValueKey>,
        hi: Bound<&ValueKey>,
        start_ts: Timestamp,
        chunk_size: usize,
    ) -> RangePostingCursor<'_, PropertyIndexKey, E> {
        let (lower, upper) = composite_range_bounds(key, lo, hi).unwrap_or((
            // Unsatisfiable: an inverted composite pair the cursor treats
            // as empty without panicking.
            Bound::Included((key, ValueKey::Int(0))),
            Bound::Excluded((key, ValueKey::Int(0))),
        ));
        self.inner.range_cursor(lower, upper, start_ts, chunk_size)
    }

    /// Like [`PropertyIndex::range_cursor`], but walks the value keys in
    /// **descending** sort order — index-streamed `ORDER BY ... DESC`
    /// (see [`VersionedPostingIndex::range_cursor_desc`]).
    pub fn range_cursor_desc(
        &self,
        key: PropertyKeyToken,
        lo: Bound<&ValueKey>,
        hi: Bound<&ValueKey>,
        start_ts: Timestamp,
        chunk_size: usize,
    ) -> RangePostingCursor<'_, PropertyIndexKey, E> {
        let (lower, upper) = composite_range_bounds(key, lo, hi).unwrap_or((
            Bound::Included((key, ValueKey::Int(0))),
            Bound::Excluded((key, ValueKey::Int(0))),
        ));
        self.inner
            .range_cursor_desc(lower, upper, start_ts, chunk_size)
    }

    /// Live postings stored under `key = value` — the planner's
    /// point-cardinality estimate (dead churn excluded, see
    /// [`VersionedPostingIndex::postings_estimate`]).
    pub fn postings_estimate(&self, key: PropertyKeyToken, value: &PropertyValue) -> u64 {
        self.inner.postings_estimate(&(key, value.index_key()))
    }

    /// Live postings stored under property `key` inside the value range
    /// `(lo, hi)`, saturating at `cap` — the planner's range-cardinality
    /// estimate (see
    /// [`VersionedPostingIndex::range_postings_estimate`]).
    pub fn range_postings_estimate(
        &self,
        key: PropertyKeyToken,
        lo: Bound<&ValueKey>,
        hi: Bound<&ValueKey>,
        cap: u64,
    ) -> u64 {
        let Some((lower, upper)) = composite_range_bounds(key, lo, hi) else {
            return 0;
        };
        self.inner.range_postings_estimate(
            crate::posting::bound_as_ref(&lower),
            crate::posting::bound_as_ref(&upper),
            cap,
        )
    }

    /// Returns `true` if `entity` has `key = value` in the given snapshot.
    pub fn contains(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        entity: E,
        start_ts: Timestamp,
    ) -> bool {
        self.inner
            .contains(&(key, value.index_key()), entity, start_ts)
    }

    /// Reclaims postings that no active or future reader can see.
    pub fn gc(&self, watermark: Timestamp) -> u64 {
        self.inner.gc(watermark)
    }

    /// Index statistics.
    pub fn stats(&self) -> IndexStats {
        self.inner.stats()
    }
}

/// Property index over nodes.
pub type NodePropertyIndex = PropertyIndex<NodeId>;
/// Property index over relationships.
pub type RelationshipPropertyIndex = PropertyIndex<RelationshipId>;

#[cfg(test)]
mod tests {
    use super::*;

    const AGE: PropertyKeyToken = PropertyKeyToken(1);
    const NAME: PropertyKeyToken = PropertyKeyToken(2);

    #[test]
    fn lookup_by_value_and_snapshot() {
        let index = NodePropertyIndex::new();
        index.add(AGE, &PropertyValue::Int(30), NodeId::new(1), Timestamp(10));
        index.add(AGE, &PropertyValue::Int(30), NodeId::new(2), Timestamp(20));
        index.add(AGE, &PropertyValue::Int(40), NodeId::new(3), Timestamp(10));

        assert_eq!(
            index.lookup(AGE, &PropertyValue::Int(30), Timestamp(15)),
            vec![NodeId::new(1)]
        );
        let mut all = index.lookup(AGE, &PropertyValue::Int(30), Timestamp(25));
        all.sort();
        assert_eq!(all, vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(
            index.lookup(AGE, &PropertyValue::Int(40), Timestamp(25)),
            vec![NodeId::new(3)]
        );
        assert!(index
            .lookup(AGE, &PropertyValue::Int(99), Timestamp(25))
            .is_empty());
    }

    #[test]
    fn value_update_moves_the_posting() {
        let index = NodePropertyIndex::new();
        let node = NodeId::new(7);
        index.add(AGE, &PropertyValue::Int(30), node, Timestamp(10));
        // At ts 20 the value changes from 30 to 31.
        index.remove(AGE, &PropertyValue::Int(30), node, Timestamp(20));
        index.add(AGE, &PropertyValue::Int(31), node, Timestamp(20));

        assert!(index.contains(AGE, &PropertyValue::Int(30), node, Timestamp(15)));
        assert!(!index.contains(AGE, &PropertyValue::Int(31), node, Timestamp(15)));
        assert!(!index.contains(AGE, &PropertyValue::Int(30), node, Timestamp(20)));
        assert!(index.contains(AGE, &PropertyValue::Int(31), node, Timestamp(20)));
    }

    #[test]
    fn string_and_float_values_are_indexable() {
        let index = NodePropertyIndex::new();
        index.add(
            NAME,
            &PropertyValue::String("ada".into()),
            NodeId::new(1),
            Timestamp(5),
        );
        index.add(
            NAME,
            &PropertyValue::Float(1.5),
            NodeId::new(2),
            Timestamp(5),
        );
        assert_eq!(
            index.lookup(NAME, &PropertyValue::String("ada".into()), Timestamp(10)),
            vec![NodeId::new(1)]
        );
        assert_eq!(
            index.lookup(NAME, &PropertyValue::Float(1.5), Timestamp(10)),
            vec![NodeId::new(2)]
        );
    }

    #[test]
    fn relationship_index_works_the_same_way() {
        let index = RelationshipPropertyIndex::new();
        index.add(
            NAME,
            &PropertyValue::String("follows".into()),
            RelationshipId::new(4),
            Timestamp(8),
        );
        assert_eq!(
            index.lookup(NAME, &PropertyValue::String("follows".into()), Timestamp(9)),
            vec![RelationshipId::new(4)]
        );
        assert!(index
            .lookup(NAME, &PropertyValue::String("follows".into()), Timestamp(7))
            .is_empty());
    }

    fn drain<E: Copy + Eq + Ord>(
        cursor: &mut RangePostingCursor<'_, PropertyIndexKey, E>,
    ) -> Vec<E> {
        let mut buf = Vec::new();
        let mut out = Vec::new();
        while cursor.next_chunk(&mut buf) {
            out.extend_from_slice(&buf);
        }
        out.sort();
        out
    }

    #[test]
    fn range_cursor_selects_value_interval() {
        let index = NodePropertyIndex::new();
        for i in 0..10i64 {
            index.add(
                AGE,
                &PropertyValue::Int(20 + i),
                NodeId::new(i as u64),
                Timestamp(5),
            );
        }
        // Another key the range must never leak into.
        index.add(NAME, &PropertyValue::Int(23), NodeId::new(99), Timestamp(5));

        let lo = PropertyValue::Int(22).index_key();
        let hi = PropertyValue::Int(25).index_key();
        let mut cursor = index.range_cursor(
            AGE,
            Bound::Included(&lo),
            Bound::Included(&hi),
            Timestamp(10),
            2,
        );
        assert_eq!(
            drain(&mut cursor),
            (2..=5).map(NodeId::new).collect::<Vec<_>>()
        );
        // Exclusive upper bound drops age 25.
        let mut cursor = index.range_cursor(
            AGE,
            Bound::Included(&lo),
            Bound::Excluded(&hi),
            Timestamp(10),
            16,
        );
        assert_eq!(
            drain(&mut cursor),
            (2..=4).map(NodeId::new).collect::<Vec<_>>()
        );
    }

    #[test]
    fn half_open_ranges_stay_within_the_bound_type() {
        let index = NodePropertyIndex::new();
        index.add(AGE, &PropertyValue::Int(30), NodeId::new(1), Timestamp(1));
        index.add(AGE, &PropertyValue::Int(50), NodeId::new(2), Timestamp(1));
        index.add(
            AGE,
            &PropertyValue::Bool(true),
            NodeId::new(3),
            Timestamp(1),
        );
        index.add(
            AGE,
            &PropertyValue::Float(40.0),
            NodeId::new(4),
            Timestamp(1),
        );
        index.add(
            AGE,
            &PropertyValue::String("a".into()),
            NodeId::new(5),
            Timestamp(1),
        );

        let lo = PropertyValue::Int(40).index_key();
        // age >= 40: only Int values qualify — not the float 40.0, not the
        // string (type-homogeneous comparison semantics).
        let mut ge = index.range_cursor(
            AGE,
            Bound::Included(&lo),
            Bound::Unbounded,
            Timestamp(10),
            16,
        );
        assert_eq!(drain(&mut ge), vec![NodeId::new(2)]);
        // age <= 40: Ints only again — the Bool below Int's key space is
        // clamped out.
        let mut le = index.range_cursor(
            AGE,
            Bound::Unbounded,
            Bound::Included(&lo),
            Timestamp(10),
            16,
        );
        assert_eq!(drain(&mut le), vec![NodeId::new(1)]);
        // Fully open = "has the property at all", every type.
        let mut any =
            index.range_cursor(AGE, Bound::Unbounded, Bound::Unbounded, Timestamp(10), 16);
        assert_eq!(drain(&mut any).len(), 5);
        // Mixed-type bounds are unsatisfiable, not a panic.
        let s = PropertyValue::String("z".into()).index_key();
        let mut none = index.range_cursor(
            AGE,
            Bound::Included(&lo),
            Bound::Included(&s),
            Timestamp(10),
            16,
        );
        assert_eq!(drain(&mut none), Vec::<NodeId>::new());
        assert_eq!(
            index.range_postings_estimate(AGE, Bound::Included(&lo), Bound::Included(&s), u64::MAX),
            0
        );
        assert_eq!(
            index.range_postings_estimate(AGE, Bound::Included(&lo), Bound::Unbounded, u64::MAX),
            1
        );
        assert_eq!(index.postings_estimate(AGE, &PropertyValue::Int(30)), 1);
    }

    #[test]
    fn float_ranges_order_numerically() {
        let index = NodePropertyIndex::new();
        for (i, x) in [-10.5f64, -1.0, 0.0, 2.5, 100.0].iter().enumerate() {
            index.add(
                AGE,
                &PropertyValue::Float(*x),
                NodeId::new(i as u64),
                Timestamp(1),
            );
        }
        let lo = PropertyValue::Float(-2.0).index_key();
        let hi = PropertyValue::Float(3.0).index_key();
        let mut cursor = index.range_cursor(
            AGE,
            Bound::Included(&lo),
            Bound::Included(&hi),
            Timestamp(10),
            16,
        );
        assert_eq!(
            drain(&mut cursor),
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            "-1.0, 0.0 and 2.5 fall in [-2.0, 3.0]; negatives sort correctly"
        );
    }

    #[test]
    fn range_respects_snapshots_and_value_moves() {
        let index = NodePropertyIndex::new();
        let node = NodeId::new(1);
        index.add(AGE, &PropertyValue::Int(10), node, Timestamp(10));
        // Value moves 10 -> 20 at ts 20; both values inside the range.
        index.remove(AGE, &PropertyValue::Int(10), node, Timestamp(20));
        index.add(AGE, &PropertyValue::Int(20), node, Timestamp(20));

        let lo = PropertyValue::Int(0).index_key();
        let hi = PropertyValue::Int(100).index_key();
        for ts in [15u64, 25] {
            let mut cursor = index.range_cursor(
                AGE,
                Bound::Included(&lo),
                Bound::Included(&hi),
                Timestamp(ts),
                16,
            );
            assert_eq!(
                drain(&mut cursor),
                vec![node],
                "at ts {ts} exactly one visible value lies in range — the \
                 entity is yielded once, never twice"
            );
        }
    }

    #[test]
    fn gc_reclaims_replaced_values() {
        let index = NodePropertyIndex::new();
        let node = NodeId::new(1);
        for (i, v) in (0..10).enumerate() {
            let ts = Timestamp((i as u64) * 10 + 10);
            if i > 0 {
                index.remove(AGE, &PropertyValue::Int(v - 1), node, ts);
            }
            index.add(AGE, &PropertyValue::Int(v), node, ts);
        }
        let before = index.stats();
        assert_eq!(before.postings, 10);
        let reclaimed = index.gc(Timestamp(1000));
        assert_eq!(reclaimed, 9);
        assert_eq!(index.stats().postings, 1);
        assert!(index.contains(AGE, &PropertyValue::Int(9), node, Timestamp(1000)));
    }
}
