//! The versioned property indexes.
//!
//! Neo4j keeps a property index for nodes and one for relationships (the
//! paper, §2). Both map a `(property key, value)` pair to the entities
//! holding that value, with the §4 multi-versioning applied: postings are
//! tagged with the commit timestamp that added (and, eventually, removed)
//! them so readers only see the memberships belonging to their snapshot.

use graphsi_storage::{NodeId, PropertyKeyToken, PropertyValue, RelationshipId, ValueKey};
use graphsi_txn::Timestamp;

use crate::posting::{IndexStats, PostingCursor, VersionedPostingIndex};

/// Index key: a property key token plus the canonical form of the value.
pub type PropertyIndexKey = (PropertyKeyToken, ValueKey);

/// A snapshot-visible property index, generic over the entity kind.
#[derive(Debug)]
pub struct PropertyIndex<E: Copy + Eq> {
    inner: VersionedPostingIndex<PropertyIndexKey, E>,
}

impl<E: Copy + Eq> Default for PropertyIndex<E> {
    fn default() -> Self {
        PropertyIndex {
            inner: VersionedPostingIndex::new(),
        }
    }
}

impl<E: Copy + Eq> PropertyIndex<E> {
    /// Creates an empty property index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `entity` gained property `key = value` at `commit_ts`.
    pub fn add(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        entity: E,
        commit_ts: Timestamp,
    ) {
        self.inner.add((key, value.index_key()), entity, commit_ts);
    }

    /// Records that `entity` lost property `key = value` at `commit_ts`
    /// (value change, property removal or entity deletion).
    pub fn remove(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        entity: E,
        commit_ts: Timestamp,
    ) {
        self.inner
            .remove(&(key, value.index_key()), entity, commit_ts);
    }

    /// Entities whose property `key` equals `value` in the snapshot defined
    /// by `start_ts`.
    pub fn lookup(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        start_ts: Timestamp,
    ) -> Vec<E> {
        self.inner.lookup(&(key, value.index_key()), start_ts)
    }

    /// Borrowing variant of [`PropertyIndex::lookup`]: streams every
    /// visible entity through `f` without allocating a `Vec`.
    pub fn lookup_with(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        start_ts: Timestamp,
        f: impl FnMut(E),
    ) {
        self.inner
            .lookup_with(&(key, value.index_key()), start_ts, f);
    }

    /// Opens a chunked, GC-safe cursor over the entities whose property
    /// `key` equals `value` in the snapshot defined by `start_ts` (see
    /// [`crate::posting::PostingCursor`]).
    pub fn cursor(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        start_ts: Timestamp,
        chunk_size: usize,
    ) -> PostingCursor<'_, PropertyIndexKey, E> {
        self.inner
            .cursor((key, value.index_key()), start_ts, chunk_size)
    }

    /// Returns `true` if `entity` has `key = value` in the given snapshot.
    pub fn contains(
        &self,
        key: PropertyKeyToken,
        value: &PropertyValue,
        entity: E,
        start_ts: Timestamp,
    ) -> bool {
        self.inner
            .contains(&(key, value.index_key()), entity, start_ts)
    }

    /// Reclaims postings that no active or future reader can see.
    pub fn gc(&self, watermark: Timestamp) -> u64 {
        self.inner.gc(watermark)
    }

    /// Index statistics.
    pub fn stats(&self) -> IndexStats {
        self.inner.stats()
    }
}

/// Property index over nodes.
pub type NodePropertyIndex = PropertyIndex<NodeId>;
/// Property index over relationships.
pub type RelationshipPropertyIndex = PropertyIndex<RelationshipId>;

#[cfg(test)]
mod tests {
    use super::*;

    const AGE: PropertyKeyToken = PropertyKeyToken(1);
    const NAME: PropertyKeyToken = PropertyKeyToken(2);

    #[test]
    fn lookup_by_value_and_snapshot() {
        let index = NodePropertyIndex::new();
        index.add(AGE, &PropertyValue::Int(30), NodeId::new(1), Timestamp(10));
        index.add(AGE, &PropertyValue::Int(30), NodeId::new(2), Timestamp(20));
        index.add(AGE, &PropertyValue::Int(40), NodeId::new(3), Timestamp(10));

        assert_eq!(
            index.lookup(AGE, &PropertyValue::Int(30), Timestamp(15)),
            vec![NodeId::new(1)]
        );
        let mut all = index.lookup(AGE, &PropertyValue::Int(30), Timestamp(25));
        all.sort();
        assert_eq!(all, vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(
            index.lookup(AGE, &PropertyValue::Int(40), Timestamp(25)),
            vec![NodeId::new(3)]
        );
        assert!(index
            .lookup(AGE, &PropertyValue::Int(99), Timestamp(25))
            .is_empty());
    }

    #[test]
    fn value_update_moves_the_posting() {
        let index = NodePropertyIndex::new();
        let node = NodeId::new(7);
        index.add(AGE, &PropertyValue::Int(30), node, Timestamp(10));
        // At ts 20 the value changes from 30 to 31.
        index.remove(AGE, &PropertyValue::Int(30), node, Timestamp(20));
        index.add(AGE, &PropertyValue::Int(31), node, Timestamp(20));

        assert!(index.contains(AGE, &PropertyValue::Int(30), node, Timestamp(15)));
        assert!(!index.contains(AGE, &PropertyValue::Int(31), node, Timestamp(15)));
        assert!(!index.contains(AGE, &PropertyValue::Int(30), node, Timestamp(20)));
        assert!(index.contains(AGE, &PropertyValue::Int(31), node, Timestamp(20)));
    }

    #[test]
    fn string_and_float_values_are_indexable() {
        let index = NodePropertyIndex::new();
        index.add(
            NAME,
            &PropertyValue::String("ada".into()),
            NodeId::new(1),
            Timestamp(5),
        );
        index.add(
            NAME,
            &PropertyValue::Float(1.5),
            NodeId::new(2),
            Timestamp(5),
        );
        assert_eq!(
            index.lookup(NAME, &PropertyValue::String("ada".into()), Timestamp(10)),
            vec![NodeId::new(1)]
        );
        assert_eq!(
            index.lookup(NAME, &PropertyValue::Float(1.5), Timestamp(10)),
            vec![NodeId::new(2)]
        );
    }

    #[test]
    fn relationship_index_works_the_same_way() {
        let index = RelationshipPropertyIndex::new();
        index.add(
            NAME,
            &PropertyValue::String("follows".into()),
            RelationshipId::new(4),
            Timestamp(8),
        );
        assert_eq!(
            index.lookup(NAME, &PropertyValue::String("follows".into()), Timestamp(9)),
            vec![RelationshipId::new(4)]
        );
        assert!(index
            .lookup(NAME, &PropertyValue::String("follows".into()), Timestamp(7))
            .is_empty());
    }

    #[test]
    fn gc_reclaims_replaced_values() {
        let index = NodePropertyIndex::new();
        let node = NodeId::new(1);
        for (i, v) in (0..10).enumerate() {
            let ts = Timestamp((i as u64) * 10 + 10);
            if i > 0 {
                index.remove(AGE, &PropertyValue::Int(v - 1), node, ts);
            }
            index.add(AGE, &PropertyValue::Int(v), node, ts);
        }
        let before = index.stats();
        assert_eq!(before.postings, 10);
        let reclaimed = index.gc(Timestamp(1000));
        assert_eq!(reclaimed, 9);
        assert_eq!(index.stats().postings, 1);
        assert!(index.contains(AGE, &PropertyValue::Int(9), node, Timestamp(1000)));
    }
}
