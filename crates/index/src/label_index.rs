//! The versioned label index: label token → nodes carrying that label.
//!
//! Neo4j keeps "two indexes for nodes, one for labels and another one for
//! properties" (the paper, §2); this is the former, with the
//! multi-versioning of §4 applied so that a reader only sees label
//! memberships that belong to its snapshot.

use graphsi_storage::{LabelToken, NodeId};
use graphsi_txn::Timestamp;

use crate::posting::{IndexStats, PostingCursor, VersionedPostingIndex};

/// Snapshot-visible index from label tokens to node IDs.
#[derive(Debug, Default)]
pub struct LabelIndex {
    inner: VersionedPostingIndex<LabelToken, NodeId>,
}

impl LabelIndex {
    /// Creates an empty label index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` gained `label` at commit timestamp `commit_ts`.
    pub fn add(&self, label: LabelToken, node: NodeId, commit_ts: Timestamp) {
        self.inner.add(label, node, commit_ts);
    }

    /// Records that `node` lost `label` (label removal or node deletion) at
    /// commit timestamp `commit_ts`.
    pub fn remove(&self, label: LabelToken, node: NodeId, commit_ts: Timestamp) {
        self.inner.remove(&label, node, commit_ts);
    }

    /// Nodes carrying `label` in the snapshot defined by `start_ts`.
    pub fn nodes_with_label(&self, label: LabelToken, start_ts: Timestamp) -> Vec<NodeId> {
        self.inner.lookup(&label, start_ts)
    }

    /// Opens a chunked, GC-safe cursor over the nodes carrying `label` in
    /// the snapshot defined by `start_ts` (see
    /// [`crate::posting::PostingCursor`]).
    pub fn cursor(
        &self,
        label: LabelToken,
        start_ts: Timestamp,
        chunk_size: usize,
    ) -> PostingCursor<'_, LabelToken, NodeId> {
        self.inner.cursor(label, start_ts, chunk_size)
    }

    /// Returns `true` if `node` carries `label` in the given snapshot.
    pub fn has_label(&self, label: LabelToken, node: NodeId, start_ts: Timestamp) -> bool {
        self.inner.contains(&label, node, start_ts)
    }

    /// Live postings stored under `label` — the query planner's
    /// cardinality estimate for a label scan (dead churn excluded).
    pub fn postings_estimate(&self, label: LabelToken) -> u64 {
        self.inner.postings_estimate(&label)
    }

    /// All label tokens ever indexed (labels are never deleted; the paper,
    /// §4).
    pub fn labels(&self) -> Vec<LabelToken> {
        self.inner.keys()
    }

    /// Reclaims postings that no active or future reader can see.
    pub fn gc(&self, watermark: Timestamp) -> u64 {
        self.inner.gc(watermark)
    }

    /// Index statistics.
    pub fn stats(&self) -> IndexStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERSON: LabelToken = LabelToken(1);
    const COMPANY: LabelToken = LabelToken(2);

    #[test]
    fn label_membership_follows_snapshots() {
        let index = LabelIndex::new();
        index.add(PERSON, NodeId::new(1), Timestamp(10));
        index.add(PERSON, NodeId::new(2), Timestamp(20));
        index.add(COMPANY, NodeId::new(3), Timestamp(15));

        assert_eq!(
            index.nodes_with_label(PERSON, Timestamp(12)),
            vec![NodeId::new(1)]
        );
        let mut later = index.nodes_with_label(PERSON, Timestamp(25));
        later.sort();
        assert_eq!(later, vec![NodeId::new(1), NodeId::new(2)]);
        assert!(index.has_label(COMPANY, NodeId::new(3), Timestamp(15)));
        assert!(!index.has_label(COMPANY, NodeId::new(3), Timestamp(14)));
    }

    #[test]
    fn label_removal_is_snapshot_visible() {
        let index = LabelIndex::new();
        index.add(PERSON, NodeId::new(1), Timestamp(10));
        index.remove(PERSON, NodeId::new(1), Timestamp(30));
        assert!(index.has_label(PERSON, NodeId::new(1), Timestamp(29)));
        assert!(!index.has_label(PERSON, NodeId::new(1), Timestamp(30)));
    }

    #[test]
    fn labels_are_never_dropped_only_postings() {
        let index = LabelIndex::new();
        index.add(PERSON, NodeId::new(1), Timestamp(10));
        index.remove(PERSON, NodeId::new(1), Timestamp(20));
        assert_eq!(index.labels(), vec![PERSON]);
        // After GC the now-empty key disappears from the posting structure,
        // which is our stand-in for Neo4j's "kept but unused" tokens — the
        // token itself still exists in the token store.
        let reclaimed = index.gc(Timestamp(25));
        assert_eq!(reclaimed, 1);
        assert!(index.nodes_with_label(PERSON, Timestamp(30)).is_empty());
    }

    #[test]
    fn stats_count_postings() {
        let index = LabelIndex::new();
        for i in 0..5 {
            index.add(PERSON, NodeId::new(i), Timestamp(i + 1));
        }
        index.remove(PERSON, NodeId::new(0), Timestamp(10));
        let stats = index.stats();
        assert_eq!(stats.keys, 1);
        assert_eq!(stats.postings, 5);
        assert_eq!(stats.dead_postings, 1);
    }
}
