//! Criterion benchmark backing experiment E7: raw record-store operations
//! (the substrate the paper's "only newest committed version is persisted"
//! rule writes through to), plus the version-chain read path of the MVCC
//! cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use graphsi_mvcc::VersionedCache;
use graphsi_storage::test_util::TempDir;
use graphsi_storage::{GraphStore, GraphStoreConfig, LabelToken, PropertyKeyToken, PropertyValue};
use graphsi_txn::Timestamp;

fn bench_record_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_store");
    group.bench_function("create_node_record", |b| {
        let dir = TempDir::new("bench_store_create");
        let store = GraphStore::open(dir.path(), GraphStoreConfig::default()).unwrap();
        b.iter(|| {
            let id = store.allocate_node_id();
            store
                .create_node(
                    id,
                    &[LabelToken(0)],
                    &[(PropertyKeyToken(0), PropertyValue::Int(42))],
                )
                .unwrap();
            id
        })
    });
    group.bench_function("read_node_record", |b| {
        let dir = TempDir::new("bench_store_read");
        let store = GraphStore::open(dir.path(), GraphStoreConfig::default()).unwrap();
        let ids: Vec<_> = (0..10_000)
            .map(|i| {
                let id = store.allocate_node_id();
                store
                    .create_node(id, &[], &[(PropertyKeyToken(0), PropertyValue::Int(i))])
                    .unwrap();
                id
            })
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let id = ids[i % ids.len()];
            i += 1;
            store.read_node(id).unwrap()
        })
    });
    group.bench_function("update_node_record_in_place", |b| {
        let dir = TempDir::new("bench_store_update");
        let store = GraphStore::open(dir.path(), GraphStoreConfig::default()).unwrap();
        let id = store.allocate_node_id();
        store.create_node(id, &[], &[]).unwrap();
        let mut v = 0i64;
        b.iter(|| {
            v += 1;
            store
                .update_node(id, &[], &[(PropertyKeyToken(0), PropertyValue::Int(v))])
                .unwrap()
        })
    });
    group.finish();
}

fn bench_version_chain_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("version_chain_read");
    for chain_len in [1u64, 4, 16, 64] {
        let cache: VersionedCache<u64, i64> = VersionedCache::new(16);
        for ts in 1..=chain_len {
            cache.install_committed(1, Timestamp(ts), Some(Arc::new(ts as i64)));
        }
        group.bench_with_input(
            BenchmarkId::new("newest_visible", chain_len),
            &chain_len,
            |b, &chain_len| b.iter(|| cache.read(1, Timestamp(chain_len))),
        );
        group.bench_with_input(
            BenchmarkId::new("oldest_visible", chain_len),
            &chain_len,
            |b, _| b.iter(|| cache.read(1, Timestamp(1))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_record_store, bench_version_chain_reads);
criterion_main!(benches);
