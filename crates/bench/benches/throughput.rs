//! Criterion benchmark backing experiment E8: single-operation latency of
//! reads and writes under read committed (short read locks) vs snapshot
//! isolation (lock-free versioned reads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, Direction, GraphDb, IsolationLevel, NodeId, PropertyValue};
use graphsi_workload::{build_graph, GraphSpec};

fn setup() -> (TempDir, Arc<GraphDb>, Vec<NodeId>) {
    let dir = TempDir::new("bench_throughput");
    let db = Arc::new(GraphDb::open(dir.path(), DbConfig::default()).unwrap());
    let graph = build_graph(&db, &GraphSpec::random(1_000, 2_000)).unwrap();
    (dir, db, graph.nodes)
}

fn bench_reads(c: &mut Criterion) {
    let (_dir, db, nodes) = setup();
    let mut group = c.benchmark_group("read_latency");
    for isolation in [IsolationLevel::ReadCommitted, IsolationLevel::SnapshotIsolation] {
        group.bench_with_input(
            BenchmarkId::new("point_read", isolation),
            &isolation,
            |b, &isolation| {
                let mut i = 0usize;
                b.iter(|| {
                    let tx = db.begin_with_isolation(isolation);
                    let node = nodes[i % nodes.len()];
                    i += 1;
                    let v = tx.node_property(node, "balance").unwrap();
                    tx.commit().unwrap();
                    v
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("one_hop_expand", isolation),
            &isolation,
            |b, &isolation| {
                let mut i = 0usize;
                b.iter(|| {
                    let tx = db.begin_with_isolation(isolation);
                    let node = nodes[i % nodes.len()];
                    i += 1;
                    let n = tx.relationships(node, Direction::Both).unwrap().len();
                    tx.commit().unwrap();
                    n
                })
            },
        );
    }
    group.finish();
}

fn bench_writes(c: &mut Criterion) {
    let (_dir, db, nodes) = setup();
    let mut group = c.benchmark_group("write_latency");
    for isolation in [IsolationLevel::ReadCommitted, IsolationLevel::SnapshotIsolation] {
        group.bench_with_input(
            BenchmarkId::new("property_update", isolation),
            &isolation,
            |b, &isolation| {
                let mut i = 0usize;
                b.iter(|| {
                    let mut tx = db.begin_with_isolation(isolation);
                    let node = nodes[i % nodes.len()];
                    i += 1;
                    tx.set_node_property(node, "balance", PropertyValue::Int(i as i64))
                        .unwrap();
                    tx.commit().unwrap()
                })
            },
        );
    }
    group.bench_function("create_node", |b| {
        b.iter(|| {
            let mut tx = db.begin();
            let id = tx
                .create_node(&["Bench"], &[("x", PropertyValue::Int(1))])
                .unwrap();
            tx.commit().unwrap();
            id
        })
    });
    group.finish();
    // Keep version chains bounded over long benchmark runs.
    db.run_gc();
}

criterion_group!(benches, bench_reads, bench_writes);
criterion_main!(benches);
