//! Criterion benchmark backing experiment E8: single-operation latency of
//! reads and writes under read committed (short read locks) vs snapshot
//! isolation (lock-free versioned reads), plus a multi-threaded scaling
//! axis — committed transactions per second as real OS threads are added,
//! possible since transactions became `Send`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, Direction, GraphDb, IsolationLevel, NodeId, PropertyValue};
use graphsi_workload::{build_graph, run_mix, GraphSpec, MixSpec};

fn setup() -> (TempDir, GraphDb, Vec<NodeId>) {
    let dir = TempDir::new("bench_throughput");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
    let graph = build_graph(&db, &GraphSpec::random(1_000, 2_000)).unwrap();
    (dir, db, graph.nodes)
}

fn bench_reads(c: &mut Criterion) {
    let (_dir, db, nodes) = setup();
    let mut group = c.benchmark_group("read_latency");
    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        group.bench_with_input(
            BenchmarkId::new("point_read", isolation),
            &isolation,
            |b, &isolation| {
                let mut i = 0usize;
                b.iter(|| {
                    let tx = db.txn().isolation(isolation).begin();
                    let node = nodes[i % nodes.len()];
                    i += 1;
                    let v = tx.node_property(node, "balance").unwrap();
                    tx.commit().unwrap();
                    v
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("one_hop_expand", isolation),
            &isolation,
            |b, &isolation| {
                let mut i = 0usize;
                b.iter(|| {
                    let tx = db.txn().isolation(isolation).begin();
                    let node = nodes[i % nodes.len()];
                    i += 1;
                    let n = tx.degree(node, Direction::Both).unwrap();
                    tx.commit().unwrap();
                    n
                })
            },
        );
    }
    // The read-only fast path: snapshot reads with no write set and zero
    // lock-manager interaction.
    group.bench_function("point_read/read_only_fast_path", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let tx = db.txn().read_only().begin();
            let node = nodes[i % nodes.len()];
            i += 1;
            let v = tx.node_property(node, "balance").unwrap();
            tx.commit().unwrap();
            v
        })
    });
    group.finish();
}

fn bench_writes(c: &mut Criterion) {
    let (_dir, db, nodes) = setup();
    let mut group = c.benchmark_group("write_latency");
    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        group.bench_with_input(
            BenchmarkId::new("property_update", isolation),
            &isolation,
            |b, &isolation| {
                let mut i = 0usize;
                b.iter(|| {
                    let mut tx = db.txn().isolation(isolation).begin();
                    let node = nodes[i % nodes.len()];
                    i += 1;
                    tx.set_node_property(node, "balance", PropertyValue::Int(i as i64))
                        .unwrap();
                    tx.commit().unwrap()
                })
            },
        );
    }
    group.bench_function("create_node", |b| {
        b.iter(|| {
            let mut tx = db.begin();
            let id = tx
                .create_node(&["Bench"], &[("x", PropertyValue::Int(1))])
                .unwrap();
            tx.commit().unwrap();
            id
        })
    });
    group.bench_function("property_update/write_with_retry", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let node = nodes[i % nodes.len()];
            i += 1;
            db.write_with_retry(|tx| {
                tx.set_node_property(node, "balance", PropertyValue::Int(i as i64))
            })
            .unwrap()
        })
    });
    group.finish();
    // Keep version chains bounded over long benchmark runs.
    db.run_gc();
}

/// The threads axis: the same 90/10 mixed workload at 1, 2, 4 and 8 OS
/// threads for both isolation levels. Combined with the fixed per-run
/// transaction count, the mean run time is the SI-vs-RC scaling
/// measurement of the paper's evaluation across real OS threads.
fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_scaling");
    group.sample_size(10);
    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("mix_{isolation}"), threads),
                &threads,
                |b, &threads| {
                    let (_dir, db, nodes) = setup();
                    let spec = MixSpec {
                        threads,
                        transactions_per_thread: 200,
                        read_fraction: 0.9,
                        skew: 0.6,
                        isolation,
                        retry_aborts: false,
                        ..Default::default()
                    };
                    b.iter(|| run_mix(&db, &nodes, &spec).committed)
                },
            );
        }
    }
    group.finish();
}

/// The commit-throughput axis: pure write-commit workloads (one node per
/// thread, no conflicts) at 1..=8 OS threads, comparing the staged
/// group-commit pipeline (`SyncPolicy::OnDemand`, batched leader syncs)
/// against sync-per-append (`SyncPolicy::Always`). The per-run mean is the
/// commits-per-second scaling measurement behind experiment E12.
fn bench_commit_throughput(c: &mut Criterion) {
    use std::time::Duration;
    let mut group = c.benchmark_group("commit_throughput");
    group.sample_size(10);
    for group_commit in [false, true] {
        let label = if group_commit {
            "group_commit"
        } else {
            "sync_per_append"
        };
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                let config = if group_commit {
                    DbConfig::default()
                        .with_sync_policy(graphsi_core::SyncPolicy::OnDemand)
                        .with_group_commit_max_batch(64)
                        .with_group_commit_max_delay(Duration::from_micros(200))
                } else {
                    DbConfig::default().with_sync_policy(graphsi_core::SyncPolicy::Always)
                };
                let dir = TempDir::new("bench_commit_throughput");
                let db = GraphDb::open(dir.path(), config).unwrap();
                let mut tx = db.begin();
                let nodes: Vec<NodeId> = (0..threads)
                    .map(|_| {
                        tx.create_node(&["W"], &[("v", PropertyValue::Int(0))])
                            .unwrap()
                    })
                    .collect();
                tx.commit().unwrap();
                b.iter(|| {
                    let handles: Vec<_> = nodes
                        .iter()
                        .map(|&node| {
                            let db = db.clone();
                            std::thread::spawn(move || {
                                for i in 0..50i64 {
                                    let mut tx = db.begin();
                                    tx.set_node_property(node, "v", PropertyValue::Int(i))
                                        .unwrap();
                                    tx.commit().unwrap();
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            });
        }
    }
    group.finish();
}

/// The store-apply-shards axis behind experiment E13: 4 writers on
/// disjoint 16-node keyspaces, with stage C either serialised on one
/// global apply lock (`shards = 1`) or sharded by footprint
/// (`shards = 64`). Multi-node write sets make the flush-through long
/// enough that the per-shard overlap shows up in the per-run mean.
fn bench_store_apply_shards(c: &mut Criterion) {
    use std::time::Duration;
    let mut group = c.benchmark_group("store_apply_shards");
    group.sample_size(10);
    const THREADS: usize = 4;
    const NODES_PER_THREAD: usize = 16;
    for shards in [1usize, DbConfig::DEFAULT_STORE_APPLY_SHARDS] {
        group.bench_with_input(
            BenchmarkId::new("disjoint_committers", shards),
            &shards,
            |b, &shards| {
                let config = DbConfig::default()
                    .with_sync_policy(graphsi_core::SyncPolicy::OnDemand)
                    .with_group_commit_max_batch(64)
                    .with_group_commit_max_delay(Duration::from_micros(200))
                    .with_store_apply_shards(shards);
                let dir = TempDir::new("bench_store_apply_shards");
                let db = GraphDb::open(dir.path(), config).unwrap();
                let mut tx = db.begin();
                let groups: Vec<Vec<NodeId>> = (0..THREADS)
                    .map(|_| {
                        (0..NODES_PER_THREAD)
                            .map(|_| {
                                tx.create_node(&["W"], &[("v", PropertyValue::Int(0))])
                                    .unwrap()
                            })
                            .collect()
                    })
                    .collect();
                tx.commit().unwrap();
                b.iter(|| {
                    let handles: Vec<_> = groups
                        .iter()
                        .map(|nodes| {
                            let db = db.clone();
                            let nodes = nodes.clone();
                            std::thread::spawn(move || {
                                for i in 0..20i64 {
                                    let mut tx = db.begin();
                                    for &node in &nodes {
                                        tx.set_node_property(node, "v", PropertyValue::Int(i))
                                            .unwrap();
                                    }
                                    tx.commit().unwrap();
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reads,
    bench_writes,
    bench_thread_scaling,
    bench_commit_throughput,
    bench_store_apply_shards
);
criterion_main!(benches);
