//! Criterion benchmark backing experiment E6: threaded GC (walks only the
//! reclaimable prefix of the GC list) vs vacuum-style GC (walks every
//! cached chain), on caches with different garbage ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use graphsi_mvcc::{run_threaded, run_vacuum, VersionedCache};
use graphsi_txn::Timestamp;

/// Builds a cache of `entities` entities with `versions` versions each.
fn build_cache(entities: u64, versions: u64) -> VersionedCache<u64, u64> {
    let cache = VersionedCache::new(16);
    let mut ts = 0u64;
    for v in 0..versions {
        for e in 0..entities {
            ts += 1;
            cache.install_committed(e, Timestamp(ts), Some(Arc::new(v)));
        }
    }
    cache
}

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc");
    group.sample_size(20);
    // `garbage_fraction` controls how much of the version population is
    // reclaimable: the watermark is placed that far through the commits.
    for garbage_fraction in [0.1f64, 0.5, 1.0] {
        let entities = 2_000u64;
        let versions = 5u64;
        let total = entities * versions;
        let watermark = Timestamp((total as f64 * garbage_fraction) as u64);
        group.bench_with_input(
            BenchmarkId::new("threaded", format!("{garbage_fraction}")),
            &watermark,
            |b, &watermark| {
                b.iter_batched(
                    || build_cache(entities, versions),
                    |cache| run_threaded(&cache, watermark),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("vacuum", format!("{garbage_fraction}")),
            &watermark,
            |b, &watermark| {
                b.iter_batched(
                    || build_cache(entities, versions),
                    |cache| run_vacuum(&cache, watermark),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    // The idle case the paper highlights: nothing to collect. The threaded
    // GC does O(1) work; the vacuum still walks everything.
    group.bench_function("threaded_idle", |b| {
        let cache = build_cache(2_000, 5);
        b.iter(|| run_threaded(&cache, Timestamp(0)))
    });
    group.bench_function("vacuum_idle", |b| {
        let cache = build_cache(2_000, 5);
        b.iter(|| run_vacuum(&cache, Timestamp(0)))
    });
    group.finish();
}

criterion_group!(benches, bench_gc);
criterion_main!(benches);
