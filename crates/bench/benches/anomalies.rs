//! Criterion benchmark backing experiments E1/E2: the cost of running the
//! anomaly probes under read committed vs snapshot isolation (the SI reads
//! go through the versioned cache; the RC reads take short read locks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, GraphDb, IsolationLevel};
use graphsi_workload::{phantom_read_probe, unrepeatable_read_probe};

fn bench_probes(c: &mut Criterion) {
    let mut group = c.benchmark_group("anomaly_probes");
    group.sample_size(10);
    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        group.bench_with_input(
            BenchmarkId::new("unrepeatable_read_probe", isolation),
            &isolation,
            |b, &isolation| {
                b.iter_batched(
                    || {
                        let dir = TempDir::new("bench_e1");
                        let db = Arc::new(GraphDb::open(dir.path(), DbConfig::default()).unwrap());
                        (dir, db)
                    },
                    |(_dir, db)| unrepeatable_read_probe(&db, isolation, 10).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("phantom_read_probe", isolation),
            &isolation,
            |b, &isolation| {
                b.iter_batched(
                    || {
                        let dir = TempDir::new("bench_e2");
                        let db = Arc::new(GraphDb::open(dir.path(), DbConfig::default()).unwrap());
                        (dir, db)
                    },
                    |(_dir, db)| phantom_read_probe(&db, isolation, 10).unwrap(),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_probes);
criterion_main!(benches);
