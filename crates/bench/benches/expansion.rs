//! Criterion benchmark backing experiment E11: k-hop expansion cost of
//! the chunked cursor pipeline (`tx.query().expand(..)`) against the eager
//! `*_vec` traversal path, across tree fanout and depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, Direction, GraphDb};
use graphsi_workload::build_tree;

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("khop_expansion");
    group.sample_size(20);
    for &(fanout, depth) in &[(4usize, 3usize), (8, 3), (16, 2)] {
        let dir = TempDir::new("bench_expansion");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let root = build_tree(&db, fanout, depth).unwrap();
        let label = format!("f{fanout}_d{depth}");

        group.bench_with_input(BenchmarkId::new("cursor_stream", &label), &(), |b, ()| {
            b.iter(|| {
                let tx = db.txn().read_only().begin();
                let mut query = tx.query().start_nodes([root]);
                for _ in 0..depth {
                    query = query.expand(Direction::Outgoing, Some("CHILD"));
                }
                query.distinct().count().unwrap()
            })
        });

        // Tighter chunks trade refill overhead for a smaller memory bound.
        group.bench_with_input(
            BenchmarkId::new("cursor_stream_chunk8", &label),
            &(),
            |b, ()| {
                b.iter(|| {
                    let tx = db.txn().read_only().scan_chunk_size(8).begin();
                    let mut query = tx.query().start_nodes([root]);
                    for _ in 0..depth {
                        query = query.expand(Direction::Outgoing, Some("CHILD"));
                    }
                    query.distinct().count().unwrap()
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("vec_frontier", &label), &(), |b, ()| {
            b.iter(|| {
                let tx = db.txn().read_only().begin();
                let mut frontier = vec![root];
                for _ in 0..depth {
                    let mut next = Vec::new();
                    for &node in &frontier {
                        next.extend(tx.neighbors_vec(node, Direction::Outgoing).unwrap());
                    }
                    frontier = next;
                }
                frontier.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
