//! Criterion benchmark backing experiment E4: cost of a hotspot update
//! workload under the two write-write conflict strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use graphsi_core::test_support::TempDir;
use graphsi_core::{ConflictStrategy, DbConfig, GraphDb};
use graphsi_workload::{build_graph, run_mix, GraphSpec, MixSpec};

fn bench_conflict_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_strategies");
    group.sample_size(10);
    for strategy in [
        ConflictStrategy::FirstUpdaterWins,
        ConflictStrategy::FirstCommitterWins,
    ] {
        for hot_nodes in [1usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(strategy.to_string(), hot_nodes),
                &hot_nodes,
                |b, &hot_nodes| {
                    b.iter_batched(
                        || {
                            let dir = TempDir::new("bench_conflicts");
                            let db = Arc::new(
                                GraphDb::open(
                                    dir.path(),
                                    DbConfig::default().with_conflict_strategy(strategy),
                                )
                                .unwrap(),
                            );
                            let graph = build_graph(&db, &GraphSpec::random(64, 0)).unwrap();
                            (dir, db, graph.nodes)
                        },
                        |(_dir, db, nodes)| {
                            run_mix(
                                &db,
                                &nodes[..hot_nodes],
                                &MixSpec {
                                    threads: 2,
                                    transactions_per_thread: 50,
                                    read_fraction: 0.0,
                                    writes_per_txn: 1,
                                    skew: 0.9,
                                    retry_aborts: true,
                                    ..Default::default()
                                },
                            )
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_conflict_strategies);
criterion_main!(benches);
