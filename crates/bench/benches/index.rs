//! Criterion benchmark backing experiment E9: versioned index lookups as a
//! function of how many superseded (stale) postings the index carries, and
//! the effect of garbage collection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, GraphDb, PropertyValue};

/// Builds a database with `nodes` indexed nodes whose `group` property has
/// been rewritten `churn` times (each rewrite leaves a dead posting until
/// GC runs).
fn setup(nodes: usize, churn: usize, gc: bool) -> (TempDir, GraphDb) {
    let dir = TempDir::new("bench_index");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
    let mut tx = db.begin();
    let ids: Vec<_> = (0..nodes)
        .map(|i| {
            tx.create_node(
                &["Person"],
                &[("group", PropertyValue::Int((i % 8) as i64))],
            )
            .unwrap()
        })
        .collect();
    tx.commit().unwrap();
    for round in 0..churn {
        for &id in &ids {
            let mut tx = db.begin();
            tx.set_node_property(id, "group", PropertyValue::Int((round % 8) as i64))
                .unwrap();
            tx.commit().unwrap();
        }
    }
    if gc {
        db.run_gc();
    }
    (dir, db)
}

fn bench_index_lookups(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_lookup");
    group.sample_size(20);
    for churn in [0usize, 4] {
        for gc in [false, true] {
            let (_dir, db) = setup(500, churn, gc);
            let label = format!("churn{churn}_gc{gc}");
            group.bench_with_input(
                BenchmarkId::new("nodes_with_property", &label),
                &db,
                |b, db| {
                    b.iter(|| {
                        let tx = db.begin();
                        tx.nodes_with_property("group", &PropertyValue::Int(3))
                            .unwrap()
                            .count()
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("nodes_with_label", &label),
                &db,
                |b, db| {
                    b.iter(|| {
                        let tx = db.begin();
                        tx.nodes_with_label("Person").unwrap().count()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_index_lookups);
criterion_main!(benches);
