//! Criterion benchmark backing experiment E14: a range predicate executed
//! inside the versioned index (range-postings pushdown) against the
//! decode-based filter path, across selectivity, plus the row-projection
//! terminal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use graphsi_core::test_support::TempDir;
use graphsi_core::{DbConfig, GraphDb, PropertyValue};

const NODES: i64 = 2_000;
const DOMAIN: i64 = 1_000;

fn bench_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicate_pushdown");
    group.sample_size(20);

    let dir = TempDir::new("bench_pushdown");
    let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
    let mut tx = db.begin();
    for i in 0..NODES {
        tx.create_node(
            &["Bench"],
            &[("score", PropertyValue::Int((i * 7919) % DOMAIN))],
        )
        .unwrap();
    }
    tx.commit().unwrap();
    db.run_gc();

    for selectivity in [1i64, 10, 50] {
        let hi = DOMAIN * selectivity / 100 - 1;
        let label = format!("sel{selectivity}pct");

        group.bench_with_input(BenchmarkId::new("index_range", &label), &(), |b, ()| {
            b.iter(|| {
                let tx = db.txn().read_only().begin();
                tx.query()
                    .filter_property_range("score", PropertyValue::Int(0)..=PropertyValue::Int(hi))
                    .count()
                    .unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("decode_filter", &label), &(), |b, ()| {
            b.iter(|| {
                let tx = db.txn().read_only().begin();
                tx.query()
                    .filter_property_range("score", PropertyValue::Int(0)..=PropertyValue::Int(hi))
                    .pushdown(false)
                    .count()
                    .unwrap()
            })
        });

        // The row terminal: pushdown source + single-walk projection.
        group.bench_with_input(BenchmarkId::new("rows_projected", &label), &(), |b, ()| {
            b.iter(|| {
                let tx = db.txn().read_only().begin();
                tx.query()
                    .filter_property_range("score", PropertyValue::Int(0)..=PropertyValue::Int(hi))
                    .project(["score"])
                    .rows()
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pushdown);
criterion_main!(benches);
