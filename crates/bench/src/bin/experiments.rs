//! Experiment harness: regenerates one table per experiment (E1–E17) from
//! DESIGN.md / EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run -p graphsi-bench --release --bin experiments            # all experiments
//! cargo run -p graphsi-bench --release --bin experiments -- --exp e6
//! cargo run -p graphsi-bench --release --bin experiments -- --quick # smaller parameters
//! cargo run -p graphsi-bench --release --bin experiments -- --exp e14 --json BENCH_e14.json
//! cargo run -p graphsi-bench --release --bin experiments -- --exp e15 --json BENCH_e15.json
//! cargo run -p graphsi-bench --release --bin experiments -- --exp e16 --json BENCH_e16.json
//! cargo run -p graphsi-bench --release --bin experiments -- --exp e17 --json BENCH_e17.json
//! ```
//!
//! `--json <path>` makes E14/E15/E16/E17 additionally write their rows as
//! a JSON bench artifact (`BENCH_e14.json` / `BENCH_e15.json` /
//! `BENCH_e16.json` / `BENCH_e17.json` seed the repo's perf trajectory).

use std::time::Instant;

use graphsi_core::test_support::TempDir;
use graphsi_core::{
    traversal, ConflictStrategy, DbConfig, Direction, GraphDb, IsolationLevel, PropertyValue,
};
use graphsi_workload::report::{f1, f3, Table};
use graphsi_workload::{
    build_graph, build_tree, phantom_read_probe, run_mix, unrepeatable_read_probe,
    write_skew_probe, GraphSpec, MixSpec,
};

struct Scale {
    probe_rounds: u64,
    mix_nodes: usize,
    mix_txns_per_thread: usize,
    gc_nodes: usize,
    gc_rounds: usize,
    threads: usize,
    /// (fanout, depth) tree shapes for the E11 expansion experiment.
    expansion_shapes: &'static [(usize, usize)],
}

const FULL: Scale = Scale {
    probe_rounds: 100,
    mix_nodes: 2_000,
    mix_txns_per_thread: 300,
    gc_nodes: 500,
    gc_rounds: 20,
    threads: 4,
    expansion_shapes: &[(4, 2), (4, 3), (8, 2), (8, 3), (16, 2)],
};

const QUICK: Scale = Scale {
    probe_rounds: 20,
    mix_nodes: 300,
    mix_txns_per_thread: 50,
    gc_nodes: 100,
    gc_rounds: 5,
    threads: 2,
    expansion_shapes: &[(3, 2), (4, 2)],
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { QUICK } else { FULL };
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let all = exp.is_none();
    let want = |name: &str| all || exp.as_deref() == Some(name);

    println!(
        "# graphsi experiment harness (scale: {})",
        if quick { "quick" } else { "full" }
    );
    println!();
    if want("e1") {
        e1_unrepeatable_reads(&scale);
    }
    if want("e2") {
        e2_phantom_reads(&scale);
    }
    if want("e3") {
        e3_write_skew(&scale);
    }
    if want("e4") {
        e4_conflict_strategies(&scale);
    }
    if want("e5") {
        e5_read_your_own_writes();
    }
    if want("e6") {
        e6_garbage_collection(&scale);
    }
    if want("e7") {
        e7_write_amplification(&scale);
    }
    if want("e8") {
        e8_read_write_mix(&scale);
    }
    if want("e9") {
        e9_versioned_indexes(&scale);
    }
    if want("e10") {
        e10_thread_scaling(&scale);
    }
    if want("e11") {
        e11_expansion_scaling(&scale);
    }
    if want("e12") {
        e12_group_commit(&scale);
    }
    if want("e13") {
        e13_shard_apply(&scale);
    }
    if want("e14") {
        e14_predicate_pushdown(&scale, json_path.as_deref());
    }
    if want("e15") {
        e15_segmented_recovery(&scale, json_path.as_deref());
    }
    if want("e16") {
        e16_server_saturation(&scale, json_path.as_deref());
    }
    if want("e17") {
        e17_ordered_query_planner(&scale, json_path.as_deref());
    }
}

fn open(dir: &TempDir, config: DbConfig) -> GraphDb {
    GraphDb::open(dir.path(), config).expect("open db")
}

/// Experiments panic on any error; `must` keeps the panic annotated with
/// what the harness was doing when it died.
fn must<T, E: std::fmt::Debug>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("{what}: {e:?}"),
    }
}

fn e1_unrepeatable_reads(scale: &Scale) {
    println!("## E1 — unrepeatable reads during a two-step traversal (paper §1)");
    let mut table = Table::new(&["isolation", "rounds", "anomalous rounds", "anomaly rate"]);
    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        let dir = TempDir::new("e1");
        let db = open(&dir, DbConfig::default());
        let report = unrepeatable_read_probe(&db, isolation, scale.probe_rounds).unwrap();
        table.row(&[
            isolation.to_string(),
            report.rounds.to_string(),
            report.anomalies.to_string(),
            f3(report.anomaly_rate()),
        ]);
    }
    println!("{}", table.render());
}

fn e2_phantom_reads(scale: &Scale) {
    println!("## E2 — phantom reads on a predicate selection (paper §1)");
    let mut table = Table::new(&["isolation", "rounds", "anomalous rounds", "anomaly rate"]);
    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        let dir = TempDir::new("e2");
        let db = open(&dir, DbConfig::default());
        let report = phantom_read_probe(&db, isolation, scale.probe_rounds).unwrap();
        table.row(&[
            isolation.to_string(),
            report.rounds.to_string(),
            report.anomalies.to_string(),
            f3(report.anomaly_rate()),
        ]);
    }
    println!("{}", table.render());
}

fn e3_write_skew(scale: &Scale) {
    println!(
        "## E3 — write skew is admitted by SI, removed by materialising the conflict (paper §1/§3)"
    );
    let mut table = Table::new(&["variant", "rounds", "constraint violations", "rate"]);
    for (name, materialize) in [
        ("snapshot isolation (plain)", false),
        ("materialised conflict", true),
    ] {
        let dir = TempDir::new("e3");
        let db = open(&dir, DbConfig::default());
        let report = write_skew_probe(&db, scale.probe_rounds, materialize).unwrap();
        table.row(&[
            name.to_string(),
            report.rounds.to_string(),
            report.anomalies.to_string(),
            f3(report.anomaly_rate()),
        ]);
    }
    println!("{}", table.render());
}

fn e4_conflict_strategies(scale: &Scale) {
    println!("## E4 — first-updater-wins vs first-committer-wins under contention (paper §3/§4)");
    let mut table = Table::new(&[
        "strategy",
        "hot nodes",
        "committed",
        "aborted",
        "abort rate",
        "throughput (txn/s)",
    ]);
    for strategy in [
        ConflictStrategy::FirstUpdaterWins,
        ConflictStrategy::FirstCommitterWins,
    ] {
        for hot in [1usize, 8, 64] {
            let dir = TempDir::new("e4");
            let db = open(&dir, DbConfig::default().with_conflict_strategy(strategy));
            let graph = build_graph(&db, &GraphSpec::random(scale.mix_nodes.min(512), 0)).unwrap();
            let hot_nodes = &graph.nodes[..hot.min(graph.nodes.len())];
            let spec = MixSpec {
                threads: scale.threads,
                transactions_per_thread: scale.mix_txns_per_thread,
                read_fraction: 0.0,
                skew: 0.8,
                writes_per_txn: 1,
                retry_aborts: false,
                ..Default::default()
            };
            let report = run_mix(&db, hot_nodes, &spec);
            table.row(&[
                strategy.to_string(),
                hot.to_string(),
                report.committed.to_string(),
                report.aborted.to_string(),
                f3(report.abort_rate()),
                f1(report.throughput()),
            ]);
        }
    }
    println!("{}", table.render());
}

fn e5_read_your_own_writes() {
    println!("## E5 — read-your-own-writes through the enriched iterators (paper §3/§4)");
    let dir = TempDir::new("e5");
    let db = open(&dir, DbConfig::default());
    let mut table = Table::new(&["check", "result"]);

    let mut tx = db.begin();
    let a = tx
        .create_node(&["Draft"], &[("v", PropertyValue::Int(1))])
        .unwrap();
    let b = tx.create_node(&["Draft"], &[]).unwrap();
    let rel = tx.create_relationship(a, b, "LINK", &[]).unwrap();
    tx.set_node_property(a, "v", PropertyValue::Int(2)).unwrap();

    table.row(&[
        "own created node visible pre-commit".to_string(),
        tx.node_exists(a).unwrap().to_string(),
    ]);
    table.row(&[
        "own updated property visible pre-commit".to_string(),
        (tx.node_property(a, "v").unwrap() == Some(PropertyValue::Int(2))).to_string(),
    ]);
    table.row(&[
        "own relationship visible in traversal pre-commit".to_string(),
        (tx.neighbors_vec(a, Direction::Both).unwrap() == vec![b]).to_string(),
    ]);
    table.row(&[
        "own writes visible in label scan pre-commit".to_string(),
        (tx.nodes_with_label("Draft").unwrap().count() == 2).to_string(),
    ]);

    let other = db.begin();
    table.row(&[
        "other transaction sees none of it".to_string(),
        (!other.node_exists(a).unwrap()
            && other.nodes_with_label("Draft").unwrap().next().is_none())
        .to_string(),
    ]);
    drop(other);
    tx.commit().unwrap();
    let after = db.begin();
    table.row(&[
        "everything visible after commit".to_string(),
        (after.node_exists(a).unwrap() && after.get_relationship(rel).unwrap().is_some())
            .to_string(),
    ]);
    println!("{}", table.render());
}

fn e6_garbage_collection(scale: &Scale) {
    println!("## E6 — threaded GC vs vacuum-style GC (paper §4)");
    let mut table = Table::new(&[
        "strategy",
        "versions resident",
        "versions examined",
        "versions reclaimed",
        "examined/reclaimed",
        "pause (us)",
    ]);
    for threaded in [true, false] {
        let dir = TempDir::new("e6");
        let db = open(&dir, DbConfig::default());
        let graph = build_graph(&db, &GraphSpec::random(scale.gc_nodes, 0)).unwrap();
        // A long-running reader pins the watermark while every node is
        // updated `gc_rounds` times, building long version chains.
        {
            let pin = db.begin();
            for round in 0..scale.gc_rounds {
                for &node in &graph.nodes {
                    let mut tx = db.begin();
                    tx.set_node_property(node, "balance", PropertyValue::Int(round as i64))
                        .unwrap();
                    tx.commit().unwrap();
                }
            }
            drop(pin);
        }
        let resident = db.node_cache_stats().versions;
        let summary = if threaded {
            db.run_gc()
        } else {
            db.run_gc_vacuum()
        };
        table.row(&[
            summary.strategy.to_string(),
            resident.to_string(),
            summary.versions_examined.to_string(),
            summary.versions_reclaimed.to_string(),
            f3(summary.versions_examined as f64 / summary.versions_reclaimed.max(1) as f64),
            f1(summary.duration.as_micros() as f64),
        ]);
        // Second run: nothing left to collect — the cost of an idle GC pass.
        let resident2 = db.node_cache_stats().versions;
        let summary2 = if threaded {
            db.run_gc()
        } else {
            db.run_gc_vacuum()
        };
        table.row(&[
            format!("{} (idle pass)", summary2.strategy),
            resident2.to_string(),
            summary2.versions_examined.to_string(),
            summary2.versions_reclaimed.to_string(),
            f3(summary2.versions_examined as f64 / summary2.versions_reclaimed.max(1) as f64),
            f1(summary2.duration.as_micros() as f64),
        ]);
    }
    println!("{}", table.render());
}

fn e7_write_amplification(scale: &Scale) {
    println!("## E7 — only the newest committed version reaches the persistent store (paper §4)");
    let dir = TempDir::new("e7");
    let db = open(&dir, DbConfig::default());
    let graph = build_graph(&db, &GraphSpec::random(scale.gc_nodes, 0)).unwrap();
    let baseline_writes = db.store_stats().total_record_writes();

    let pin = db.begin(); // keep every superseded version alive in memory
    let updates = scale.gc_rounds * graph.nodes.len();
    for round in 0..scale.gc_rounds {
        for &node in &graph.nodes {
            let mut tx = db.begin();
            tx.set_node_property(node, "balance", PropertyValue::Int(round as i64))
                .unwrap();
            tx.commit().unwrap();
        }
    }
    let store_writes = db.store_stats().total_record_writes() - baseline_writes;
    let versions_in_memory = db.node_cache_stats().versions;
    drop(pin);

    let mut table = Table::new(&["metric", "value"]);
    table.row(&["logical updates".to_string(), updates.to_string()]);
    table.row(&[
        "store record writes (newest-version-only)".to_string(),
        store_writes.to_string(),
    ]);
    table.row(&[
        "store record writes per update".to_string(),
        f3(store_writes as f64 / updates as f64),
    ]);
    table.row(&[
        "hypothetical store writes if every version were persisted".to_string(),
        // every superseded version would need at least one extra record
        // write instead of staying memory-only.
        (store_writes + versions_in_memory).to_string(),
    ]);
    table.row(&[
        "older versions kept in memory instead".to_string(),
        versions_in_memory.to_string(),
    ]);
    println!("{}", table.render());
}

fn e8_read_write_mix(scale: &Scale) {
    println!("## E8 — removing short read locks: RC vs SI under mixed workloads (paper §4)");
    let mut table = Table::new(&[
        "isolation",
        "read fraction",
        "throughput (txn/s)",
        "abort rate",
        "mean latency (us)",
        "read lock acquisitions",
    ]);
    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        for read_fraction in [0.5, 0.9, 0.99] {
            let dir = TempDir::new("e8");
            let db = open(&dir, DbConfig::default().with_isolation(isolation));
            let graph =
                build_graph(&db, &GraphSpec::random(scale.mix_nodes, scale.mix_nodes)).unwrap();
            let locks_before = db.lock_stats().shared_acquired;
            let spec = MixSpec {
                threads: scale.threads,
                transactions_per_thread: scale.mix_txns_per_thread,
                read_fraction,
                skew: 0.6,
                isolation,
                retry_aborts: false,
                ..Default::default()
            };
            let report = run_mix(&db, &graph.nodes, &spec);
            let read_locks = db.lock_stats().shared_acquired - locks_before;
            table.row(&[
                isolation.to_string(),
                f3(read_fraction),
                f1(report.throughput()),
                f3(report.abort_rate()),
                f1(report.mean_latency_us()),
                read_locks.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}

/// E10 — SI-vs-RC throughput scaling across real OS threads, enabled by
/// the `Send` owned-handle transactions: the same mixed workload at 1..=N
/// worker threads, read transactions using the read-only snapshot fast
/// path under SI.
fn e10_thread_scaling(scale: &Scale) {
    println!("## E10 — throughput scaling across OS threads (no read locks => readers scale)");
    let mut table = Table::new(&[
        "isolation",
        "threads",
        "committed",
        "aborted",
        "throughput (txn/s)",
        "mean latency (us)",
    ]);
    let max_threads = scale.threads.max(4) * 2;
    for isolation in [
        IsolationLevel::ReadCommitted,
        IsolationLevel::SnapshotIsolation,
    ] {
        let mut threads = 1usize;
        while threads <= max_threads {
            let dir = TempDir::new("e10");
            let db = open(&dir, DbConfig::default().with_isolation(isolation));
            let graph =
                build_graph(&db, &GraphSpec::random(scale.mix_nodes, scale.mix_nodes)).unwrap();
            let spec = MixSpec {
                threads,
                transactions_per_thread: scale.mix_txns_per_thread,
                read_fraction: 0.9,
                skew: 0.6,
                isolation,
                retry_aborts: true,
                ..Default::default()
            };
            let report = run_mix(&db, &graph.nodes, &spec);
            table.row(&[
                isolation.to_string(),
                threads.to_string(),
                report.committed.to_string(),
                report.aborted.to_string(),
                f1(report.throughput()),
                f1(report.mean_latency_us()),
            ]);
            threads *= 2;
        }
    }
    println!("{}", table.render());
}

/// E11 — depth × fanout traversal cost of the chunked cursor expansion
/// (`tx.query().expand(..)`) against the eager `*_vec` path
/// (`neighbors_vec` per frontier node), plus the bounded-buffering
/// evidence: the peak number of candidate IDs any cursor refill buffered.
fn e11_expansion_scaling(scale: &Scale) {
    println!("## E11 — streaming cursor expansion vs eager *_vec traversal (depth x fanout)");
    let mut table = Table::new(&[
        "fanout",
        "depth",
        "leaves reached",
        "cursor expand (us)",
        "*_vec expand (us)",
        "peak buffered ids (chunk=16)",
    ]);
    const CHUNK: usize = 16;
    for &(fanout, depth) in scale.expansion_shapes {
        // Streaming run in its own database so the peak-buffer gauge only
        // reflects this query.
        let dir = TempDir::new("e11_cursor");
        let db = open(&dir, DbConfig::default());
        let root = build_tree(&db, fanout, depth).unwrap();
        let tx = db.txn().read_only().scan_chunk_size(CHUNK).begin();
        let start = Instant::now();
        let mut query = tx.query().start_nodes([root]);
        for _ in 0..depth {
            query = query.expand(Direction::Outgoing, Some("CHILD"));
        }
        let cursor_count = query.distinct().count().unwrap();
        let cursor_time = start.elapsed();
        let peak = db.metrics().candidate_buffer_peak;
        drop(tx);

        // Eager run: collect every frontier node's full neighbour Vec.
        let dir = TempDir::new("e11_vec");
        let db = open(&dir, DbConfig::default());
        let root = build_tree(&db, fanout, depth).unwrap();
        let tx = db.txn().read_only().begin();
        let start = Instant::now();
        let mut frontier = vec![root];
        for _ in 0..depth {
            let mut next = Vec::new();
            for &node in &frontier {
                next.extend(tx.neighbors_vec(node, Direction::Outgoing).unwrap());
            }
            frontier = next;
        }
        let vec_time = start.elapsed();
        assert_eq!(cursor_count, frontier.len(), "both paths agree");

        table.row(&[
            fanout.to_string(),
            depth.to_string(),
            cursor_count.to_string(),
            f1(cursor_time.as_micros() as f64),
            f1(vec_time.as_micros() as f64),
            peak.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// E12 — the staged commit pipeline's WAL group commit: as writer threads
/// are added, concurrent committers share one fsync per batch, so the sync
/// count falls far below the commit count while the per-commit durability
/// guarantee is unchanged. `sync-per-append` is the baseline
/// (`SyncPolicy::Always`, every commit pays its own fsync).
fn e12_group_commit(scale: &Scale) {
    use std::time::Duration;
    println!("## E12 — WAL group commit: fsyncs amortised across concurrent committers");
    let mut table = Table::new(&[
        "variant",
        "threads",
        "committed",
        "wal syncs",
        "commits/sync",
        "batches",
        "max batch",
        "throughput (txn/s)",
    ]);
    let commits_per_thread = scale.mix_txns_per_thread;
    let max_threads = scale.threads.max(4);
    for group_commit in [false, true] {
        let mut threads = 1usize;
        while threads <= max_threads {
            let config = if group_commit {
                DbConfig::default()
                    .with_sync_policy(graphsi_core::SyncPolicy::OnDemand)
                    .with_group_commit_max_batch(64)
                    .with_group_commit_max_delay(Duration::from_micros(500))
            } else {
                DbConfig::default().with_sync_policy(graphsi_core::SyncPolicy::Always)
            };
            let dir = TempDir::new("e12");
            let db = open(&dir, config);
            // One node per thread: pure commit-pipeline contention, no
            // write-write conflicts.
            let mut tx = db.begin();
            let nodes: Vec<_> = (0..threads)
                .map(|_| {
                    tx.create_node(&["W"], &[("v", PropertyValue::Int(0))])
                        .unwrap()
                })
                .collect();
            tx.commit().unwrap();
            let before = db.metrics();
            let start = Instant::now();
            let handles: Vec<_> = nodes
                .iter()
                .map(|&node| {
                    let db = db.clone();
                    std::thread::spawn(move || {
                        for i in 0..commits_per_thread {
                            let mut tx = db.begin();
                            tx.set_node_property(node, "v", PropertyValue::Int(i as i64))
                                .unwrap();
                            tx.commit().unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let elapsed = start.elapsed();
            let m = db.metrics();
            let committed = (m.commits - m.read_only_commits) - 1; // minus setup
            let syncs = m.wal_syncs - before.wal_syncs;
            if group_commit && threads >= 4 {
                assert!(
                    syncs < committed,
                    "group commit must batch syncs under contention \
                     ({syncs} syncs for {committed} commits)"
                );
            }
            table.row(&[
                if group_commit {
                    "group commit".to_string()
                } else {
                    "sync-per-append".to_string()
                },
                threads.to_string(),
                committed.to_string(),
                syncs.to_string(),
                f1(committed as f64 / syncs.max(1) as f64),
                (m.group_commit_batches - before.group_commit_batches).to_string(),
                m.group_commit_batch_size_max.to_string(),
                f1(committed as f64 / elapsed.as_secs_f64()),
            ]);
            threads *= 2;
        }
    }
    println!("{}", table.render());
}

/// E13 — per-shard stage-C store apply: multi-writer commits on disjoint
/// keyspaces flush through to the persistent store concurrently instead of
/// serialising on one apply lock (the E12 bottleneck once syncs were
/// batched). `shards=1` is the old single-lock stage C. Each commit
/// updates a 16-node private keyspace so the flush-through is long enough
/// for the overlap to be observable.
fn e13_shard_apply(scale: &Scale) {
    use std::time::Duration;
    println!("## E13 — per-shard store apply: disjoint commits overlap in stage C");
    let mut table = Table::new(&[
        "store-apply shards",
        "threads",
        "committed",
        "throughput (txn/s)",
        "apply concurrency peak",
        "shard conflicts",
    ]);
    let commits_per_thread = scale.mix_txns_per_thread.max(50);
    let max_threads = scale.threads.max(4);
    let multicore = std::thread::available_parallelism()
        .map(|p| p.get() >= 2)
        .unwrap_or(false);
    // One measured run: returns (committed, elapsed, metrics snapshot).
    let run = |shards: usize, threads: usize| {
        let config = DbConfig::default()
            .with_sync_policy(graphsi_core::SyncPolicy::OnDemand)
            .with_group_commit_max_batch(64)
            .with_group_commit_max_delay(Duration::from_micros(500))
            .with_store_apply_shards(shards);
        let dir = TempDir::new("e13");
        let db = open(&dir, config);
        // A private 16-node keyspace per thread: disjoint footprints,
        // zero write-write conflicts — pure stage-C behaviour.
        let mut tx = db.begin();
        let groups: Vec<Vec<_>> = (0..threads)
            .map(|_| {
                (0..16)
                    .map(|_| {
                        tx.create_node(&["W"], &[("v", PropertyValue::Int(0))])
                            .unwrap()
                    })
                    .collect()
            })
            .collect();
        tx.commit().unwrap();
        let start = Instant::now();
        let handles: Vec<_> = groups
            .into_iter()
            .map(|nodes| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..commits_per_thread {
                        let mut tx = db.begin();
                        for &node in &nodes {
                            tx.set_node_property(node, "v", PropertyValue::Int(i as i64))
                                .unwrap();
                        }
                        tx.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = start.elapsed();
        let m = db.metrics();
        ((m.commits - m.read_only_commits) - 1, elapsed, m) // minus setup
    };
    for shards in [1usize, DbConfig::DEFAULT_STORE_APPLY_SHARDS] {
        let mut threads = 1usize;
        while threads <= max_threads {
            let assert_overlap = shards > 1 && threads >= 4 && multicore;
            let (mut committed, mut elapsed, mut m) = run(shards, threads);
            if assert_overlap {
                // Stage-C overlap is a scheduling race; give it a few
                // fresh rounds before failing the harness.
                for _ in 0..4 {
                    if m.store_apply_concurrency_peak > 1 {
                        break;
                    }
                    (committed, elapsed, m) = run(shards, threads);
                }
                assert!(
                    m.store_apply_concurrency_peak > 1,
                    "sharded stage C must let disjoint commits overlap \
                     (peak {})",
                    m.store_apply_concurrency_peak
                );
            }
            table.row(&[
                shards.to_string(),
                threads.to_string(),
                committed.to_string(),
                f1(committed as f64 / elapsed.as_secs_f64()),
                m.store_apply_concurrency_peak.to_string(),
                m.store_apply_shard_conflicts.to_string(),
            ]);
            threads *= 2;
        }
    }
    println!("{}", table.render());
    if !multicore {
        println!("(single-CPU host: the concurrency-peak assertion was skipped)");
        println!();
    }
}

/// E14 — predicate pushdown vs decode filtering on a filtered scan, across
/// selectivity × graph size. The same range query (`lo <= score <= hi`)
/// runs twice per cell: pushed into the versioned index's range postings
/// (`predicate_pushdowns` proves the path) and forced onto the decode
/// filter (`decode_filter_fallbacks` + `property_decodes` prove that one).
/// Acceptance gates (full graph, 10% selectivity): the pushdown performs
/// ≥ 5× fewer property decodes than the decode baseline and finishes in
/// less wall-clock time.
fn e14_predicate_pushdown(scale: &Scale, json_path: Option<&str>) {
    println!("## E14 — range predicate pushdown vs decode filter (selectivity x graph size)");
    let mut table = Table::new(&[
        "nodes",
        "selectivity",
        "rows",
        "pushdown (us)",
        "decode (us)",
        "speedup",
        "pushdown decodes",
        "decode decodes",
        "pushdowns",
        "fallbacks",
    ]);
    let sizes = [scale.mix_nodes / 4, scale.mix_nodes];
    let selectivities = [0.01f64, 0.10, 0.50];
    const DOMAIN: i64 = 1_000;
    const REPS: u32 = 5;
    let mut json_rows = Vec::new();
    for &nodes in &sizes {
        let dir = TempDir::new("e14");
        let db = open(&dir, DbConfig::default());
        // Bench graph: `score` uniform over 0..DOMAIN, committed in one
        // batch, then GC'd so reads come from a settled index.
        let mut tx = db.begin();
        for i in 0..nodes {
            tx.create_node(
                &["Bench"],
                &[("score", PropertyValue::Int((i as i64 * 7919) % DOMAIN))],
            )
            .unwrap();
        }
        tx.commit().unwrap();
        db.run_gc();

        for &selectivity in &selectivities {
            let hi = (DOMAIN as f64 * selectivity) as i64 - 1;
            let range = || PropertyValue::Int(0)..=PropertyValue::Int(hi);
            let tx = db.txn().read_only().begin();

            // Pushdown path: best-of-REPS wall clock, metrics deltas.
            let before = db.metrics();
            let mut pushdown_us = f64::MAX;
            let mut rows = 0usize;
            for _ in 0..REPS {
                let start = Instant::now();
                rows = tx
                    .query()
                    .filter_property_range("score", range())
                    .pushdown(true)
                    .count()
                    .unwrap();
                pushdown_us = pushdown_us.min(start.elapsed().as_micros() as f64);
            }
            let mid = db.metrics();
            let mut decode_us = f64::MAX;
            for _ in 0..REPS {
                let start = Instant::now();
                let decoded = tx
                    .query()
                    .filter_property_range("score", range())
                    .pushdown(false)
                    .count()
                    .unwrap();
                assert_eq!(decoded, rows, "both paths must agree");
                decode_us = decode_us.min(start.elapsed().as_micros() as f64);
            }
            let after = db.metrics();

            let pushdown_decodes = mid.property_decodes - before.property_decodes;
            let decode_decodes = after.property_decodes - mid.property_decodes;
            let pushdowns = mid.predicate_pushdowns - before.predicate_pushdowns;
            let fallbacks = after.decode_filter_fallbacks - mid.decode_filter_fallbacks;
            assert!(
                pushdowns >= REPS as u64,
                "every pushdown run used the index"
            );
            assert!(
                fallbacks >= REPS as u64,
                "every decode run used the fallback"
            );
            assert_eq!(pushdown_decodes, 0, "pushdown never decodes candidates");
            // Acceptance: the headline cell (full graph, 10% selectivity)
            // must beat the decode baseline on both gauges.
            if nodes == scale.mix_nodes && (selectivity - 0.10).abs() < 1e-9 {
                assert!(
                    decode_decodes >= 5 * pushdown_decodes.max(1),
                    "pushdown must save >= 5x property decodes \
                     ({decode_decodes} vs {pushdown_decodes})"
                );
                assert!(
                    pushdown_us < decode_us,
                    "pushdown must be faster at 10% selectivity \
                     ({pushdown_us}us vs {decode_us}us)"
                );
            }
            table.row(&[
                nodes.to_string(),
                f3(selectivity),
                rows.to_string(),
                f1(pushdown_us),
                f1(decode_us),
                f3(decode_us / pushdown_us.max(1.0)),
                pushdown_decodes.to_string(),
                decode_decodes.to_string(),
                pushdowns.to_string(),
                fallbacks.to_string(),
            ]);
            json_rows.push(format!(
                "    {{\"nodes\": {nodes}, \"selectivity\": {selectivity}, \"rows\": {rows}, \
                 \"pushdown_us\": {pushdown_us:.1}, \"decode_us\": {decode_us:.1}, \
                 \"speedup\": {:.3}, \"pushdown_decodes\": {pushdown_decodes}, \
                 \"decode_decodes\": {decode_decodes}}}",
                decode_us / pushdown_us.max(1.0)
            ));
        }
    }
    println!("{}", table.render());
    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"experiment\": \"e14_predicate_pushdown\",\n  \
             \"description\": \"filtered-scan latency and property-decode counts: \
             range predicate executed inside the versioned index (pushdown) vs \
             decode-based filtering, across selectivity x graph size\",\n  \
             \"unit\": {{\"latency\": \"us (best of {REPS})\", \"decodes\": \
             \"property materialisations per full query\"}},\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write(path, json).expect("write bench json");
        println!("(wrote {path})");
        println!();
    }
}

/// E15 — segmented WAL: recovery time and checkpoint stall vs log size.
/// Per log size N (commits over 32 KiB segments), four reopen/checkpoint
/// measurements:
///
/// * **full replay** — reopen over an un-checkpointed log of N commits;
/// * **after checkpoint** — reopen right after a fuzzy checkpoint, whose
///   retention watermark released the covered segments: replay work drops
///   to (almost) nothing while the index rebuild stays the same, so this
///   isolates what the checkpoint saves;
/// * **suffix replay** — reopen after an N/8-commit suffix on top of the
///   checkpoint: recovery scales with the retained suffix, not history;
/// * **checkpoint under load** — writers keep committing through a timed
///   checkpoint; the fuzzy design must let commits complete *inside* the
///   checkpoint window and must not stall any single commit for the
///   checkpoint's whole duration (the old quiesce cliff).
///
/// Acceptance gates (largest full-scale cell): after-checkpoint reopen is
/// faster than full replay, `checkpoint_concurrent_commits > 0`, segments
/// were really released, and the worst stall stays under the cliff bound.
fn e15_segmented_recovery(scale: &Scale, json_path: Option<&str>) {
    use graphsi_core::SyncPolicy;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    println!("## E15 — segmented WAL: recovery time + checkpoint stall vs log size");
    let mut table = Table::new(&[
        "commits",
        "wal KiB",
        "full replay (ms)",
        "after ckpt (ms)",
        "suffix N/8 (ms)",
        "ckpt (ms)",
        "max stall (ms)",
        "ckpt commits",
        "segs freed",
    ]);
    let config = || {
        DbConfig::default()
            .with_sync_policy(SyncPolicy::OnDemand)
            .with_group_commit_max_batch(16)
            .with_group_commit_max_delay(Duration::from_millis(1))
            .with_wal_segment_bytes(32 * 1024)
    };
    let sizes = [scale.mix_txns_per_thread * 2, scale.mix_txns_per_thread * 8];
    let mut json_rows = Vec::new();
    for &commits in &sizes {
        let dir = TempDir::new("e15");
        let fill = |db: &GraphDb, n: usize| {
            for i in 0..n {
                let mut tx = db.begin();
                must(
                    tx.create_node(&["Bulk"], &[("i", PropertyValue::Int(i as i64))]),
                    "e15 create",
                );
                must(tx.commit(), "e15 commit");
            }
        };
        {
            let db = open(&dir, config());
            fill(&db, commits);
            // Crash-style drop: no checkpoint, no flush.
        }
        // (a) Full replay of the whole log.
        let start = Instant::now();
        let db = open(&dir, config());
        let full_ms = start.elapsed().as_secs_f64() * 1e3;
        let wal_kib = db.metrics().wal_retained_bytes as f64 / 1024.0;
        // (b) Reopen right after a checkpoint: replay shrinks to the
        // marker suffix, the index rebuild cost stays.
        must(db.checkpoint(), "e15 checkpoint");
        let segs_freed = db.metrics().wal_segments_deleted;
        drop(db);
        let start = Instant::now();
        let db = open(&dir, config());
        let after_ckpt_ms = start.elapsed().as_secs_f64() * 1e3;
        // (c) An N/8 suffix on top of the checkpoint.
        fill(&db, commits / 8);
        drop(db);
        let start = Instant::now();
        let db = open(&dir, config());
        let suffix_ms = start.elapsed().as_secs_f64() * 1e3;
        // (d) Checkpoint under sustained load: stall + overlap.
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..scale.threads.min(4))
            .map(|w| {
                let db = db.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rounds = 0i64;
                    let mut max_stall = Duration::ZERO;
                    while !stop.load(Ordering::Relaxed) {
                        rounds += 1;
                        let mut tx = db.begin();
                        must(
                            tx.create_node(
                                &["Load"],
                                &[("w", PropertyValue::Int(w as i64 * 1_000_000 + rounds))],
                            ),
                            "e15 load create",
                        );
                        let started = Instant::now();
                        must(tx.commit(), "e15 load commit");
                        max_stall = max_stall.max(started.elapsed());
                    }
                    max_stall
                })
            })
            .collect();
        let before = db.metrics();
        let ckpt_started = Instant::now();
        must(db.checkpoint(), "e15 checkpoint under load");
        let ckpt_ms = ckpt_started.elapsed().as_secs_f64() * 1e3;
        let after = db.metrics();
        stop.store(true, Ordering::Relaxed);
        let max_stall_ms = writers
            .into_iter()
            .map(|w| must(w.join(), "e15 writer").as_secs_f64() * 1e3)
            .fold(0.0f64, f64::max);
        let concurrent = after.checkpoint_concurrent_commits - before.checkpoint_concurrent_commits;

        // Gates on the largest full-scale cell, where the timing gap is
        // far above measurement noise.
        if commits >= 1_000 {
            assert!(
                after_ckpt_ms < full_ms,
                "a checkpointed log must reopen faster than a full replay \
                 ({after_ckpt_ms:.1}ms vs {full_ms:.1}ms)"
            );
            assert!(segs_freed > 0, "the checkpoint must release segments");
            assert!(
                concurrent > 0,
                "commits must complete inside the checkpoint window"
            );
            let cliff_ms = ckpt_ms.max(250.0);
            assert!(
                max_stall_ms < cliff_ms,
                "a commit stalled {max_stall_ms:.1}ms behind a {ckpt_ms:.1}ms checkpoint"
            );
        }
        table.row(&[
            commits.to_string(),
            f1(wal_kib),
            f1(full_ms),
            f1(after_ckpt_ms),
            f1(suffix_ms),
            f1(ckpt_ms),
            f1(max_stall_ms),
            concurrent.to_string(),
            segs_freed.to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"commits\": {commits}, \"wal_kib\": {wal_kib:.1}, \
             \"full_replay_ms\": {full_ms:.2}, \"after_checkpoint_ms\": {after_ckpt_ms:.2}, \
             \"suffix_replay_ms\": {suffix_ms:.2}, \"checkpoint_ms\": {ckpt_ms:.2}, \
             \"max_commit_stall_ms\": {max_stall_ms:.2}, \
             \"checkpoint_concurrent_commits\": {concurrent}, \
             \"segments_released\": {segs_freed}}}"
        ));
    }
    println!("{}", table.render());
    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"experiment\": \"e15_segmented_recovery\",\n  \
             \"description\": \"segmented WAL with fuzzy checkpoints: reopen/recovery \
             time for full replay vs checkpoint-bounded suffix replay, and checkpoint \
             duration + worst single-commit stall under sustained writer load\",\n  \
             \"unit\": {{\"latency\": \"ms wall clock\", \"wal\": \"KiB retained\"}},\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        must(std::fs::write(path, json), "write bench json");
        println!("(wrote {path})");
        println!();
    }
}

/// E17 — ordered & multi-predicate query planner, two axes over
/// selectivity × graph size:
///
/// * **ordered/top-k** — `top_k("score", 10)` served straight off the
///   index walk (early-exiting the range cursor) vs the sort-all-take-n
///   fallback (decode every candidate, buffer, sort, truncate). Gates at
///   the full-graph 1% cell: the served path decodes nothing, allocates no
///   sort buffer (`candidate_buffer_peak` ≤ chunk size) and is ≥ 5× faster.
/// * **multi-predicate** — `score ∧ flag` compiled to a sorted-posting
///   merge-intersect vs single-pushdown + decode-filter chain
///   (`.intersect(false)`). Gate: the intersection performs strictly fewer
///   `property_decodes` on every cell.
fn e17_ordered_query_planner(scale: &Scale, json_path: Option<&str>) {
    println!("## E17 — ordered & multi-predicate planner (index-streamed top-k + intersection)");
    let mut table = Table::new(&[
        "axis",
        "nodes",
        "selectivity",
        "rows",
        "planner (us)",
        "baseline (us)",
        "speedup",
        "planner decodes",
        "baseline decodes",
    ]);
    let sizes = [scale.mix_nodes / 4, scale.mix_nodes];
    let selectivities = [0.01f64, 0.10, 0.50];
    const DOMAIN: i64 = 1_000;
    const K: usize = 10;
    const REPS: u32 = 5;
    let mut json_rows = Vec::new();

    // ---- Axis 1: ordered streaming / top-k ----------------------------
    for &nodes in &sizes {
        let dir = TempDir::new("e17_topk");
        let db = open(&dir, DbConfig::default());
        let mut tx = db.begin();
        for i in 0..nodes {
            must(
                tx.create_node(
                    &["Bench"],
                    &[("score", PropertyValue::Int((i as i64 * 7919) % DOMAIN))],
                ),
                "seed topk node",
            );
        }
        must(tx.commit(), "commit topk seed");
        db.run_gc();
        let chunk = DbConfig::DEFAULT_SCAN_CHUNK_SIZE as u64;

        // Served pass first: until a sort fallback runs, the lifetime-max
        // `candidate_buffer_peak` can only reflect chunk refills, so the
        // no-sort-buffer claim is checkable per database.
        let mut served: Vec<(f64, usize, u64, u64)> = Vec::new();
        for &selectivity in &selectivities {
            let hi = (DOMAIN as f64 * selectivity) as i64 - 1;
            let range = || PropertyValue::Int(0)..=PropertyValue::Int(hi);
            let tx = db.txn().read_only().begin();
            let before = db.metrics();
            let mut served_us = f64::MAX;
            let mut rows = Vec::new();
            for _ in 0..REPS {
                let start = Instant::now();
                rows = must(
                    tx.query()
                        .filter_property_range("score", range())
                        .top_k("score", K)
                        .ids(),
                    "served top-k",
                );
                served_us = served_us.min(start.elapsed().as_micros() as f64);
            }
            let after = db.metrics();
            let decodes = after.property_decodes - before.property_decodes;
            assert!(
                after.ordered_index_streams >= before.ordered_index_streams + REPS as u64,
                "every run must serve the order off the index"
            );
            assert_eq!(decodes, 0, "served top-k never decodes");
            served.push((served_us, rows.len(), decodes, after.candidate_buffer_peak));
        }
        assert!(
            served.iter().all(|&(_, _, _, peak)| peak <= chunk),
            "served top-k allocates no sort buffer: peak candidate buffer \
             must stay within one chunk"
        );

        // Baseline pass: the same query forced onto the decode path, where
        // the order can only be a buffered sort-all-take-n.
        for (i, &selectivity) in selectivities.iter().enumerate() {
            let hi = (DOMAIN as f64 * selectivity) as i64 - 1;
            let range = || PropertyValue::Int(0)..=PropertyValue::Int(hi);
            let tx = db.txn().read_only().begin();
            let before = db.metrics();
            let mut baseline_us = f64::MAX;
            let mut baseline_rows = 0usize;
            for _ in 0..REPS {
                let start = Instant::now();
                baseline_rows = must(
                    tx.query()
                        .filter_property_range("score", range())
                        .top_k("score", K)
                        .pushdown(false)
                        .count(),
                    "sort-all-take-n baseline",
                );
                baseline_us = baseline_us.min(start.elapsed().as_micros() as f64);
            }
            let after = db.metrics();
            let (served_us, served_rows, served_decodes, _) = served[i];
            let baseline_decodes = (after.property_decodes - before.property_decodes) / REPS as u64;
            assert_eq!(baseline_rows, served_rows, "both paths agree on top-k");
            // Gated to the full-scale headline cell: quick graphs finish
            // both paths in a handful of microseconds, where timer
            // resolution would make the ratio meaningless.
            if scale.mix_nodes >= 1_000
                && nodes == scale.mix_nodes
                && (selectivity - 0.01).abs() < 1e-9
            {
                assert!(
                    baseline_us >= 5.0 * served_us.max(1.0),
                    "index-streamed top-k must be >= 5x faster than \
                     sort-all-take-n at 1% selectivity \
                     ({served_us}us vs {baseline_us}us)"
                );
            }
            table.row(&[
                "topk".into(),
                nodes.to_string(),
                f3(selectivity),
                served_rows.to_string(),
                f1(served_us),
                f1(baseline_us),
                f3(baseline_us / served_us.max(1.0)),
                served_decodes.to_string(),
                baseline_decodes.to_string(),
            ]);
            json_rows.push(format!(
                "    {{\"axis\": \"topk\", \"nodes\": {nodes}, \"selectivity\": {selectivity}, \
                 \"rows\": {served_rows}, \"planner_us\": {served_us:.1}, \
                 \"baseline_us\": {baseline_us:.1}, \"speedup\": {:.3}, \
                 \"planner_decodes\": {served_decodes}, \"baseline_decodes\": {baseline_decodes}}}",
                baseline_us / served_us.max(1.0)
            ));
        }
    }

    // ---- Axis 2: multi-predicate intersection -------------------------
    for &nodes in &sizes {
        let dir = TempDir::new("e17_isect");
        let db = open(&dir, DbConfig::default());
        let mut tx = db.begin();
        let mut scores = Vec::with_capacity(nodes);
        let mut flags = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let score = (i as i64 * 7919) % DOMAIN;
            let flag = (i as i64 * 4801) % DOMAIN;
            scores.push(score);
            flags.push(flag);
            must(
                tx.create_node(
                    &["Bench"],
                    &[
                        ("score", PropertyValue::Int(score)),
                        ("flag", PropertyValue::Int(flag)),
                    ],
                ),
                "seed intersection node",
            );
        }
        must(tx.commit(), "commit intersection seed");
        db.run_gc();
        scores.sort_unstable();
        flags.sort_unstable();

        for &selectivity in &selectivities {
            // Quantile bounds give both predicates the same selectivity,
            // keeping each inside the planner's leg-cardinality gate, with
            // a one-row floor so the chained baseline always decodes.
            let cut = ((nodes as f64 * selectivity) as usize).clamp(1, nodes) - 1;
            let hi = scores[cut];
            let hi2 = flags[cut];
            let q = |tx: &graphsi_core::Transaction, intersect: bool| {
                must(
                    tx.query()
                        .filter_property_range(
                            "score",
                            PropertyValue::Int(0)..=PropertyValue::Int(hi),
                        )
                        .filter_property_range(
                            "flag",
                            PropertyValue::Int(0)..=PropertyValue::Int(hi2),
                        )
                        .intersect(intersect)
                        .count(),
                    "two-predicate count",
                )
            };
            let tx = db.txn().read_only().begin();
            let before = db.metrics();
            let mut merged_us = f64::MAX;
            let mut rows = 0usize;
            for _ in 0..REPS {
                let start = Instant::now();
                rows = q(&tx, true);
                merged_us = merged_us.min(start.elapsed().as_micros() as f64);
            }
            let mid = db.metrics();
            let mut chained_us = f64::MAX;
            for _ in 0..REPS {
                let start = Instant::now();
                let chained = q(&tx, false);
                assert_eq!(chained, rows, "both paths must agree");
                chained_us = chained_us.min(start.elapsed().as_micros() as f64);
            }
            let after = db.metrics();

            let merged_decodes = mid.property_decodes - before.property_decodes;
            let chained_decodes = after.property_decodes - mid.property_decodes;
            assert!(
                mid.intersection_pushdowns >= before.intersection_pushdowns + REPS as u64,
                "every merged run compiled to a sorted-posting intersection"
            );
            assert!(
                merged_decodes < chained_decodes,
                "intersection must perform strictly fewer property decodes \
                 than single-pushdown + filter ({merged_decodes} vs {chained_decodes})"
            );
            table.row(&[
                "intersect".into(),
                nodes.to_string(),
                f3(selectivity),
                rows.to_string(),
                f1(merged_us),
                f1(chained_us),
                f3(chained_us / merged_us.max(1.0)),
                merged_decodes.to_string(),
                chained_decodes.to_string(),
            ]);
            json_rows.push(format!(
                "    {{\"axis\": \"intersect\", \"nodes\": {nodes}, \
                 \"selectivity\": {selectivity}, \"rows\": {rows}, \
                 \"planner_us\": {merged_us:.1}, \"baseline_us\": {chained_us:.1}, \
                 \"speedup\": {:.3}, \"planner_decodes\": {merged_decodes}, \
                 \"baseline_decodes\": {chained_decodes}}}",
                chained_us / merged_us.max(1.0)
            ));
        }
    }

    println!("{}", table.render());
    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"experiment\": \"e17_ordered_query_planner\",\n  \
             \"description\": \"ordered & multi-predicate planner: index-streamed \
             top-k (no sort buffer, cursor early-exit) vs sort-all-take-n, and \
             sorted-posting intersection vs single-pushdown + decode-filter, \
             across selectivity x graph size\",\n  \
             \"unit\": {{\"latency\": \"us (best of {REPS})\", \"decodes\": \
             \"property materialisations per query (baseline: per run)\"}},\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        must(std::fs::write(path, json), "write bench json");
        println!("(wrote {path})");
        println!();
    }
}

fn e9_versioned_indexes(scale: &Scale) {
    println!("## E9 — versioned indexes serve every snapshot correctly (paper §4)");
    let dir = TempDir::new("e9");
    let db = open(&dir, DbConfig::default());
    let mut tx = db.begin();
    let nodes: Vec<_> = (0..scale.gc_nodes)
        .map(|i| {
            tx.create_node(
                &["Person"],
                &[("group", PropertyValue::Int((i % 10) as i64))],
            )
            .unwrap()
        })
        .collect();
    tx.commit().unwrap();

    let old_reader = db.begin();
    let old_count = old_reader
        .nodes_with_property("group", &PropertyValue::Int(0))
        .unwrap()
        .count();

    // Churn: move every node to a new group several times.
    for round in 1..=5i64 {
        for &node in &nodes {
            let mut tx = db.begin();
            tx.set_node_property(node, "group", PropertyValue::Int(round % 10))
                .unwrap();
            tx.commit().unwrap();
        }
    }

    let start = Instant::now();
    let old_again = old_reader
        .nodes_with_property("group", &PropertyValue::Int(0))
        .unwrap()
        .count();
    let old_lookup = start.elapsed();

    let fresh = db.begin();
    let start = Instant::now();
    let fresh_count = fresh
        .nodes_with_property("group", &PropertyValue::Int(5))
        .unwrap()
        .count();
    let fresh_lookup = start.elapsed();

    drop(old_reader);
    drop(fresh);
    let gc = db.run_gc();

    let mut table = Table::new(&["metric", "value"]);
    table.row(&[
        "old snapshot lookup (group=0), before churn".to_string(),
        old_count.to_string(),
    ]);
    table.row(&[
        "old snapshot lookup (group=0), after churn (must match)".to_string(),
        old_again.to_string(),
    ]);
    table.row(&[
        "fresh snapshot lookup (group=5)".to_string(),
        fresh_count.to_string(),
    ]);
    table.row(&[
        "old-snapshot lookup latency (us)".to_string(),
        f1(old_lookup.as_micros() as f64),
    ]);
    table.row(&[
        "fresh-snapshot lookup latency (us)".to_string(),
        f1(fresh_lookup.as_micros() as f64),
    ]);
    table.row(&[
        "index postings reclaimed by GC once snapshots closed".to_string(),
        gc.index_postings_reclaimed.to_string(),
    ]);
    table.row(&[
        "entity versions reclaimed by the same GC run".to_string(),
        gc.versions_reclaimed.to_string(),
    ]);
    println!("{}", table.render());

    // Structural check for F1 (architecture figure): every layer is
    // reachable through the public API.
    let tour = db.begin();
    let _ = traversal::bfs(&tour, nodes[0], 1).unwrap();
}

/// E16 — serving-layer saturation: sustained request throughput and tail
/// latency against a live TCP server across connection counts, with
/// admission control (bounded pool queues) turned on. Each round starts
/// a fresh server over a seeded graph and drives it with N client
/// threads running an 80/20 read/write mix for a fixed wall-clock
/// window; shed requests come back as typed `OVERLOADED` (counted, then
/// retried after a short backoff — never hung, never queued invisibly).
///
/// Acceptance gates:
/// - every connection count sustains ≥ 50% of the knee throughput (the
///   conservative floor for this 1-CPU container; the per-row
///   `knee_fraction` in BENCH_e16.json records the exact degradation,
///   which the graceful-degradation criterion reads against its 20%
///   window on multi-core hardware);
/// - queue depth stays bounded by the configured limit plus the
///   submitters in flight (no unbounded queueing);
/// - overload rejections, when they happen, are typed (the client mix
///   only ever observes `OVERLOADED`, conflicts are absorbed by the
///   autocommit retry loop server-side).
fn e16_server_saturation(scale: &Scale, json_path: Option<&str>) {
    use graphsi_server::{Client, ClientError, Server, ServerConfig};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    println!("## E16 — server saturation: throughput + tail latency vs connection count");
    let quick = scale.mix_nodes < 1_000;
    let (accounts, window_ms, conn_counts): (usize, u64, &[usize]) = if quick {
        (128, 150, &[1, 2, 4])
    } else {
        (512, 400, &[2, 8, 32])
    };
    const QUEUE_DEPTH: usize = 8;

    let mut table = Table::new(&[
        "connections",
        "requests ok",
        "rejected",
        "req/s",
        "p50 (us)",
        "p99 (us)",
        "queue peak",
    ]);

    struct Round {
        conns: usize,
        ok: u64,
        rejected: u64,
        rps: f64,
        p50_us: u64,
        p99_us: u64,
        queue_peak: u64,
    }
    let mut rounds: Vec<Round> = Vec::new();

    for &conns in conn_counts {
        // A fresh server per round keeps the latency histogram and the
        // saturation counters scoped to this connection count.
        let dir = TempDir::new("e16");
        let db = open(&dir, DbConfig::default());
        let mut seed_tx = db.begin();
        let node_ids: Vec<u64> = (0..accounts)
            .map(|i| {
                seed_tx
                    .create_node(&["Acct"], &[("balance", PropertyValue::Int(i as i64))])
                    .unwrap()
                    .raw()
            })
            .collect();
        seed_tx.commit().unwrap();
        db.run_gc();

        let config = ServerConfig {
            read_workers: 2,
            write_workers: 2,
            queue_depth: QUEUE_DEPTH,
            ..ServerConfig::default()
        };
        let mut server = Server::bind(db, "127.0.0.1:0", config).expect("bind server");
        let addr = server.local_addr().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let node_ids = Arc::new(node_ids);

        let start = Instant::now();
        let clients: Vec<_> = (0..conns)
            .map(|t| {
                let addr = addr.clone();
                let stop = Arc::clone(&stop);
                let node_ids = Arc::clone(&node_ids);
                std::thread::spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    let mut rng = StdRng::seed_from_u64(0xE16 + t as u64);
                    let mut ok = 0u64;
                    let mut rejected = 0u64;
                    let mut latencies_us: Vec<u64> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let id = node_ids[rng.gen_range(0..node_ids.len())];
                        let began = Instant::now();
                        // 80/20 read/write autocommit mix.
                        let result = if rng.gen_bool(0.8) {
                            c.node_property(id, "balance").map(|_| ())
                        } else {
                            c.set_node_property(
                                id,
                                "balance",
                                PropertyValue::Int(rng.gen_range(0..1_000_i64)),
                            )
                        };
                        match result {
                            Ok(()) => {
                                ok += 1;
                                latencies_us.push(began.elapsed().as_micros() as u64);
                            }
                            // Typed load shedding: back off briefly and
                            // keep going. Anything else is a bug.
                            Err(ClientError::Overloaded(_)) => {
                                rejected += 1;
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            Err(e) => panic!("client saw unexpected error: {e:?}"),
                        }
                    }
                    (ok, rejected, latencies_us)
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(window_ms));
        stop.store(true, Ordering::Relaxed);

        let mut ok = 0u64;
        let mut rejected = 0u64;
        let mut latencies_us: Vec<u64> = Vec::new();
        for t in clients {
            let (o, r, l) = t.join().expect("client thread");
            ok += o;
            rejected += r;
            latencies_us.extend(l);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let metrics = server.metrics();
        server.shutdown();

        assert!(ok > 0, "round with {conns} connections made no progress");
        // Bounded queueing: the peak can transiently overshoot the
        // configured depth by at most the submitters in flight.
        assert!(
            metrics.queue_depth_peak <= (QUEUE_DEPTH + conns) as u64,
            "queue depth {} exceeded its bound with {conns} connections",
            metrics.queue_depth_peak
        );
        // Every shed request produced a typed OVERLOADED response the
        // client observed (accepted-then-hung would show up as a panic
        // in the client mix instead).
        assert_eq!(metrics.rejected_overload, rejected, "rejection accounting");

        latencies_us.sort_unstable();
        let pct = |p: f64| -> u64 {
            if latencies_us.is_empty() {
                return 0;
            }
            let rank = ((latencies_us.len() as f64) * p).ceil() as usize;
            latencies_us[rank.clamp(1, latencies_us.len()) - 1]
        };
        let (p50_us, p99_us) = (pct(0.50), pct(0.99));
        let rps = ok as f64 / elapsed;
        table.row(&[
            conns.to_string(),
            ok.to_string(),
            rejected.to_string(),
            f1(rps),
            p50_us.to_string(),
            p99_us.to_string(),
            metrics.queue_depth_peak.to_string(),
        ]);
        rounds.push(Round {
            conns,
            ok,
            rejected,
            rps,
            p50_us,
            p99_us,
            queue_peak: metrics.queue_depth_peak,
        });
    }
    println!("{}", table.render());

    // Graceful degradation: past the knee, admission control must hold
    // throughput up instead of letting it collapse. The hard floor is
    // conservative (50%) because this container schedules every client
    // and worker thread on one CPU; knee_fraction in the JSON records
    // the exact number for the 20% criterion on real hardware.
    let knee = rounds.iter().map(|r| r.rps).fold(0.0f64, f64::max);
    for r in &rounds {
        assert!(
            r.rps >= 0.5 * knee,
            "throughput collapsed past the knee: {} conns at {:.0} req/s vs knee {:.0}",
            r.conns,
            r.rps,
            knee
        );
    }

    if let Some(path) = json_path {
        let json_rows: Vec<String> = rounds
            .iter()
            .map(|r| {
                format!(
                    "    {{\"connections\": {}, \"requests_ok\": {}, \
                     \"rejected_overload\": {}, \"throughput_rps\": {:.1}, \
                     \"p50_us\": {}, \"p99_us\": {}, \"queue_depth_peak\": {}, \
                     \"knee_fraction\": {:.3}}}",
                    r.conns,
                    r.ok,
                    r.rejected,
                    r.rps,
                    r.p50_us,
                    r.p99_us,
                    r.queue_peak,
                    r.rps / knee.max(1.0)
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"experiment\": \"e16_server_saturation\",\n  \
             \"description\": \"sustained request throughput and tail latency \
             against the TCP serving layer across connection counts, 80/20 \
             read/write autocommit mix, bounded worker-pool queues shedding \
             with typed OVERLOADED\",\n  \
             \"unit\": {{\"throughput\": \"requests/s over the wall-clock window\", \
             \"latency\": \"client-observed us\", \"knee_fraction\": \
             \"round throughput / best round throughput\"}},\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write(path, json).expect("write bench json");
        println!("(wrote {path})");
        println!();
    }
}
