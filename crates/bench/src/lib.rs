//! # graphsi-bench
//!
//! Benchmark and experiment harness for the graphsi reproduction of
//! *"Snapshot Isolation for Neo4j"* (EDBT 2016).
//!
//! * `src/bin/experiments.rs` — prints one table per experiment (E1–E9 in
//!   DESIGN.md / EXPERIMENTS.md): anomaly counts, conflict-strategy abort
//!   rates, GC cost, write amplification, read/write-mix throughput and
//!   versioned-index behaviour.
//! * `benches/` — Criterion microbenchmarks backing the same experiments
//!   (`anomalies`, `conflicts`, `gc`, `throughput`, `index`, `storage`).
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p graphsi-bench --release --bin experiments
//! cargo bench -p graphsi-bench
//! ```

#![warn(missing_docs)]
