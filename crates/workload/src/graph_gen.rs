//! Synthetic graph generators.
//!
//! The paper's evaluation context (CoherentPaaS workloads, production
//! graphs) is not available, so these generators produce the synthetic
//! equivalents used by the experiments: a power-law "social network" graph
//! (preferential attachment), a uniform random graph, and a ring/path graph
//! for traversal probes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graphsi_core::{GraphDb, NodeId, PropertyValue, Result};

/// Shape of a generated graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphShape {
    /// Preferential-attachment (power-law degree) graph with `edges_per_node`
    /// edges added per joining node — a synthetic social network.
    PowerLaw {
        /// Edges attached by every new node.
        edges_per_node: usize,
    },
    /// Uniform random graph with the given total number of edges.
    Random {
        /// Total number of edges.
        edges: usize,
    },
    /// A ring (cycle) where node *i* connects to node *i + 1*.
    Ring,
}

/// Parameters of a generated graph.
#[derive(Clone, Copy, Debug)]
pub struct GraphSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Shape / edge structure.
    pub shape: GraphShape,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
    /// How many nodes to create per committing transaction.
    pub batch_size: usize,
}

impl GraphSpec {
    /// A small social-network-shaped graph.
    pub fn social(nodes: usize) -> Self {
        GraphSpec {
            nodes,
            shape: GraphShape::PowerLaw { edges_per_node: 4 },
            seed: 42,
            batch_size: 128,
        }
    }

    /// A uniform random graph.
    pub fn random(nodes: usize, edges: usize) -> Self {
        GraphSpec {
            nodes,
            shape: GraphShape::Random { edges },
            seed: 42,
            batch_size: 128,
        }
    }

    /// A ring graph (used by traversal probes).
    pub fn ring(nodes: usize) -> Self {
        GraphSpec {
            nodes,
            shape: GraphShape::Ring,
            seed: 42,
            batch_size: 128,
        }
    }
}

/// A generated graph: the node IDs in creation order.
#[derive(Clone, Debug)]
pub struct GeneratedGraph {
    /// All node IDs, index = creation order.
    pub nodes: Vec<NodeId>,
    /// Number of relationships created.
    pub relationships: usize,
}

/// Builds a complete `fanout`-ary tree of the given `depth` in one
/// transaction, returning the root. Every node carries the label `Tree`
/// and every edge is a `CHILD` relationship pointing away from the root.
/// Used by the E11 expansion experiment and the `expansion` bench so both
/// measure the same graph shape.
pub fn build_tree(db: &GraphDb, fanout: usize, depth: usize) -> Result<NodeId> {
    let mut tx = db.begin();
    let root = tx.create_node(&["Tree"], &[])?;
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * fanout);
        for &parent in &frontier {
            for _ in 0..fanout {
                let child = tx.create_node(&["Tree"], &[])?;
                tx.create_relationship(parent, child, "CHILD", &[])?;
                next.push(child);
            }
        }
        frontier = next;
    }
    tx.commit()?;
    Ok(root)
}

/// Builds the graph described by `spec` inside `db`. Every node gets the
/// label `Person` and properties `uid` (its creation index) and `balance`
/// (initial 100); every relationship has type `KNOWS`.
pub fn build_graph(db: &GraphDb, spec: &GraphSpec) -> Result<GeneratedGraph> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut nodes: Vec<NodeId> = Vec::with_capacity(spec.nodes);
    let batch = spec.batch_size.max(1);

    // Create the nodes in batches.
    let mut created = 0usize;
    while created < spec.nodes {
        let mut tx = db.begin();
        let upper = (created + batch).min(spec.nodes);
        for i in created..upper {
            let id = tx.create_node(
                &["Person"],
                &[
                    ("uid", PropertyValue::Int(i as i64)),
                    ("balance", PropertyValue::Int(100)),
                ],
            )?;
            nodes.push(id);
        }
        tx.commit()?;
        created = upper;
    }

    // Create the relationships.
    let mut relationships = 0usize;
    match spec.shape {
        GraphShape::Ring => {
            let mut tx = db.begin();
            for i in 0..spec.nodes {
                let next = (i + 1) % spec.nodes;
                if spec.nodes > 1 {
                    tx.create_relationship(nodes[i], nodes[next], "KNOWS", &[])?;
                    relationships += 1;
                }
                if relationships.is_multiple_of(batch) {
                    let full = std::mem::replace(&mut tx, db.begin());
                    full.commit()?;
                }
            }
            tx.commit()?;
        }
        GraphShape::Random { edges } => {
            let mut remaining = edges;
            while remaining > 0 {
                let mut tx = db.begin();
                let in_this_tx = remaining.min(batch);
                for _ in 0..in_this_tx {
                    let a = rng.gen_range(0..spec.nodes);
                    let mut b = rng.gen_range(0..spec.nodes);
                    if spec.nodes > 1 {
                        while b == a {
                            b = rng.gen_range(0..spec.nodes);
                        }
                    }
                    tx.create_relationship(nodes[a], nodes[b], "KNOWS", &[])?;
                    relationships += 1;
                }
                tx.commit()?;
                remaining -= in_this_tx;
            }
        }
        GraphShape::PowerLaw { edges_per_node } => {
            // Preferential attachment: targets are sampled from the list of
            // previous edge endpoints, which biases towards high-degree
            // nodes.
            let mut endpoints: Vec<usize> = vec![0];
            for i in 1..spec.nodes {
                let mut tx = db.begin();
                let m = edges_per_node.min(i);
                let mut chosen = Vec::with_capacity(m);
                while chosen.len() < m {
                    let target = endpoints[rng.gen_range(0..endpoints.len())];
                    if target != i && !chosen.contains(&target) {
                        chosen.push(target);
                    }
                }
                for &target in &chosen {
                    tx.create_relationship(nodes[i], nodes[target], "KNOWS", &[])?;
                    relationships += 1;
                }
                tx.commit()?;
                for &target in &chosen {
                    endpoints.push(target);
                    endpoints.push(i);
                }
            }
        }
    }

    Ok(GeneratedGraph {
        nodes,
        relationships,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsi_core::test_support::TempDir;
    use graphsi_core::{DbConfig, Direction};

    fn db(dir: &TempDir) -> GraphDb {
        GraphDb::open(dir.path(), DbConfig::default()).unwrap()
    }

    #[test]
    fn ring_graph_has_expected_shape() {
        let dir = TempDir::new("wl_ring");
        let db = db(&dir);
        let graph = build_graph(&db, &GraphSpec::ring(10)).unwrap();
        assert_eq!(graph.nodes.len(), 10);
        assert_eq!(graph.relationships, 10);
        let tx = db.begin();
        for &node in &graph.nodes {
            assert_eq!(tx.degree(node, Direction::Both).unwrap(), 2);
        }
    }

    #[test]
    fn random_graph_has_requested_edges() {
        let dir = TempDir::new("wl_random");
        let db = db(&dir);
        let graph = build_graph(&db, &GraphSpec::random(20, 50)).unwrap();
        assert_eq!(graph.relationships, 50);
        let tx = db.begin();
        assert_eq!(tx.nodes_with_label("Person").unwrap().count(), 20);
        let total_degree: usize = graph
            .nodes
            .iter()
            .map(|&n| tx.degree(n, Direction::Both).unwrap())
            .sum();
        assert_eq!(total_degree, 100, "every edge contributes two endpoints");
    }

    #[test]
    fn power_law_graph_is_skewed() {
        let dir = TempDir::new("wl_powerlaw");
        let db = db(&dir);
        let graph = build_graph(&db, &GraphSpec::social(60)).unwrap();
        let tx = db.begin();
        let degrees: Vec<usize> = graph
            .nodes
            .iter()
            .map(|&n| tx.degree(n, Direction::Both).unwrap())
            .collect();
        let max = *degrees.iter().max().unwrap();
        let avg = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(
            max as f64 > 2.0 * avg,
            "power-law graphs have hubs: max={max} avg={avg}"
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let build = |seed| {
            let dir = TempDir::new("wl_seeded");
            let db = db(&dir);
            let spec = GraphSpec {
                seed,
                ..GraphSpec::random(15, 30)
            };
            let graph = build_graph(&db, &spec).unwrap();
            let tx = db.begin();
            graph
                .nodes
                .iter()
                .map(|&n| tx.degree(n, Direction::Both).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(build(7), build(7));
    }
}
