//! A small Zipfian sampler used to generate skewed (hotspot) access
//! patterns without pulling in an extra dependency.

use rand::Rng;

/// Samples indices in `0..n` with a Zipfian distribution of exponent
/// `theta` (0.0 = uniform, ~0.99 = heavily skewed, as in YCSB).
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: usize,
    /// Cumulative probability table.
    cdf: Vec<f64>,
}

impl Zipfian {
    /// Builds a sampler over `n` items with skew `theta`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipfian over zero items");
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            let w = 1.0 / ((i + 1) as f64).powf(theta);
            total += w;
            weights.push(w);
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating point drift on the last bucket.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipfian { n, cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the sampler covers no items (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Samples one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|p| p.partial_cmp(&x).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.n - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipfian::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1300, "roughly uniform, got {counts:?}");
        }
    }

    #[test]
    fn skewed_when_theta_high() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // The hottest item dominates the coldest by a wide margin.
        assert!(counts[0] > 10 * counts[99].max(1));
        assert!(counts[0] > 1_000);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(3, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_items_panics() {
        let _ = Zipfian::new(0, 0.5);
    }
}
