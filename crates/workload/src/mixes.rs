//! Mixed read/write workload runner: drives a [`GraphDb`] with a
//! configurable operation mix from multiple threads and reports throughput,
//! latency and abort statistics. Used by experiments E4 (contention sweep)
//! and E8 (read/write mix sweep).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graphsi_core::{Direction, GraphDb, IsolationLevel, NodeId, PropertyValue};

use crate::zipf::Zipfian;

/// Parameters of a mixed workload run.
#[derive(Clone, Debug)]
pub struct MixSpec {
    /// Worker threads.
    pub threads: usize,
    /// Transactions executed per thread.
    pub transactions_per_thread: usize,
    /// Fraction of transactions that are read-only (0.0 ..= 1.0).
    pub read_fraction: f64,
    /// Zipfian skew of entity selection (0.0 uniform, ~0.99 hotspot).
    pub skew: f64,
    /// Number of property reads performed by a read transaction.
    pub reads_per_txn: usize,
    /// Number of property writes performed by a write transaction.
    pub writes_per_txn: usize,
    /// Isolation level the transactions run at.
    pub isolation: IsolationLevel,
    /// Whether aborted write transactions are retried until they succeed.
    pub retry_aborts: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MixSpec {
    fn default() -> Self {
        MixSpec {
            threads: 4,
            transactions_per_thread: 200,
            read_fraction: 0.9,
            skew: 0.0,
            reads_per_txn: 4,
            writes_per_txn: 2,
            isolation: IsolationLevel::SnapshotIsolation,
            retry_aborts: false,
            seed: 42,
        }
    }
}

/// Outcome of a mixed workload run.
#[derive(Clone, Copy, Debug, Default)]
pub struct MixReport {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that aborted due to conflicts/deadlocks/timeouts.
    pub aborted: u64,
    /// Read operations performed.
    pub reads: u64,
    /// Write operations performed (including those later aborted).
    pub writes: u64,
    /// Total wall-clock duration of the run.
    pub duration: Duration,
    /// Sum of per-transaction latencies (successful ones), in nanoseconds.
    pub total_latency_nanos: u64,
}

impl MixReport {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.duration.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.committed as f64 / self.duration.as_secs_f64()
        }
    }

    /// Fraction of transaction attempts that aborted.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// Mean latency of committed transactions in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.total_latency_nanos as f64 / self.committed as f64 / 1_000.0
        }
    }
}

/// Runs the mixed workload against `db` over the given `nodes`, one
/// owned [`GraphDb`] handle (and one `Send` transaction at a time) per
/// worker thread.
pub fn run_mix(db: &GraphDb, nodes: &[NodeId], spec: &MixSpec) -> MixReport {
    assert!(!nodes.is_empty(), "workload needs at least one node");
    let committed = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));
    let latency = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..spec.threads {
        let db = db.clone();
        let nodes = nodes.to_vec();
        let spec = spec.clone();
        let committed = Arc::clone(&committed);
        let aborted = Arc::clone(&aborted);
        let reads = Arc::clone(&reads);
        let writes = Arc::clone(&writes);
        let latency = Arc::clone(&latency);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(spec.seed ^ (t as u64) << 32);
            let zipf = Zipfian::new(nodes.len(), spec.skew);
            for _ in 0..spec.transactions_per_thread {
                let is_read = rng.gen_bool(spec.read_fraction.clamp(0.0, 1.0));
                loop {
                    let txn_start = Instant::now();
                    let outcome = if is_read {
                        run_read_txn(&db, &nodes, &zipf, &spec, &mut rng, &reads)
                    } else {
                        run_write_txn(&db, &nodes, &zipf, &spec, &mut rng, &writes)
                    };
                    match outcome {
                        Ok(()) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                            latency.fetch_add(
                                txn_start.elapsed().as_nanos() as u64,
                                Ordering::Relaxed,
                            );
                            break;
                        }
                        Err(retryable) => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                            if !(retryable && spec.retry_aborts) {
                                break;
                            }
                        }
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker thread");
    }

    MixReport {
        committed: committed.load(Ordering::Relaxed),
        aborted: aborted.load(Ordering::Relaxed),
        reads: reads.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        duration: start.elapsed(),
        total_latency_nanos: latency.load(Ordering::Relaxed),
    }
}

/// Returns `Err(retryable)` on failure.
fn run_read_txn(
    db: &GraphDb,
    nodes: &[NodeId],
    zipf: &Zipfian,
    spec: &MixSpec,
    rng: &mut StdRng,
    reads: &AtomicU64,
) -> std::result::Result<(), bool> {
    // Under snapshot isolation read transactions use the read-only fast
    // path (no write set, zero lock-manager calls). The read-committed
    // baseline keeps ordinary transactions so its short read locks — the
    // behaviour the paper removes — stay observable.
    let tx = if spec.isolation == IsolationLevel::SnapshotIsolation {
        db.txn().read_only().begin()
    } else {
        db.txn().isolation(spec.isolation).begin()
    };
    for _ in 0..spec.reads_per_txn {
        let node = nodes[zipf.sample(rng)];
        match tx.node_property(node, "balance") {
            Ok(_) => {
                reads.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => return Err(e.is_conflict()),
        }
        // One neighbourhood expansion per read transaction keeps the
        // workload graph-shaped rather than key-value-shaped; the lazy
        // iterator is drained so every relationship is actually resolved.
        match tx.relationships(node, Direction::Both) {
            Ok(rels) => {
                for rel in rels {
                    if rel.is_err() {
                        return Err(false);
                    }
                }
            }
            Err(_) => return Err(false),
        }
    }
    tx.commit().map(|_| ()).map_err(|e| e.is_conflict())
}

fn run_write_txn(
    db: &GraphDb,
    nodes: &[NodeId],
    zipf: &Zipfian,
    spec: &MixSpec,
    rng: &mut StdRng,
    writes: &AtomicU64,
) -> std::result::Result<(), bool> {
    let mut tx = db.txn().isolation(spec.isolation).begin();
    for _ in 0..spec.writes_per_txn {
        let node = nodes[zipf.sample(rng)];
        let value = PropertyValue::Int(rng.gen_range(0..1_000_000));
        match tx.set_node_property(node, "balance", value) {
            Ok(()) => {
                writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => return Err(e.is_conflict()),
        }
    }
    tx.commit().map(|_| ()).map_err(|e| e.is_conflict())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_gen::{build_graph, GraphSpec};
    use graphsi_core::test_support::TempDir;
    use graphsi_core::DbConfig;

    fn setup(nodes: usize) -> (TempDir, GraphDb, Vec<NodeId>) {
        let dir = TempDir::new("mixes");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        let graph = build_graph(&db, &GraphSpec::random(nodes, nodes * 2)).unwrap();
        (dir, db, graph.nodes)
    }

    #[test]
    fn read_only_mix_never_aborts_under_si() {
        let (_dir, db, nodes) = setup(50);
        let spec = MixSpec {
            threads: 2,
            transactions_per_thread: 50,
            read_fraction: 1.0,
            ..Default::default()
        };
        let report = run_mix(&db, &nodes, &spec);
        assert_eq!(report.committed, 100);
        assert_eq!(report.aborted, 0);
        assert!(report.reads > 0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn hotspot_writes_abort_more_than_uniform_writes() {
        let (_dir, db, nodes) = setup(200);
        let base = MixSpec {
            threads: 4,
            transactions_per_thread: 50,
            read_fraction: 0.0,
            retry_aborts: false,
            ..Default::default()
        };
        let uniform = run_mix(
            &db,
            &nodes,
            &MixSpec {
                skew: 0.0,
                ..base.clone()
            },
        );
        let hotspot = run_mix(&db, &nodes[..4], &MixSpec { skew: 0.99, ..base });
        assert!(
            hotspot.abort_rate() >= uniform.abort_rate(),
            "hotspot {:.3} vs uniform {:.3}",
            hotspot.abort_rate(),
            uniform.abort_rate()
        );
        assert!(hotspot.abort_rate() > 0.0);
    }

    #[test]
    fn retries_drive_all_transactions_to_commit() {
        let (_dir, db, nodes) = setup(20);
        let spec = MixSpec {
            threads: 3,
            transactions_per_thread: 30,
            read_fraction: 0.2,
            skew: 0.9,
            retry_aborts: true,
            ..Default::default()
        };
        let report = run_mix(&db, &nodes, &spec);
        assert_eq!(report.committed, 90);
        assert!(report.mean_latency_us() > 0.0);
    }

    #[test]
    fn report_metrics_are_consistent() {
        let report = MixReport {
            committed: 10,
            aborted: 10,
            duration: Duration::from_secs(2),
            total_latency_nanos: 10_000_000,
            ..Default::default()
        };
        assert!((report.throughput() - 5.0).abs() < 1e-9);
        assert!((report.abort_rate() - 0.5).abs() < 1e-9);
        assert!((report.mean_latency_us() - 1_000.0).abs() < 1e-9);
    }
}
