//! Tiny plain-text table formatter used by the experiment harness to print
//! paper-style result tables without extra dependencies.

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:width$} | ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with one decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["isolation", "anomalies"]);
        t.row(&["read-committed".to_string(), "9".to_string()]);
        t.row(&["snapshot-isolation".to_string(), "0".to_string()]);
        let s = t.render();
        assert!(s.contains("| isolation"));
        assert!(s.contains("| snapshot-isolation | 0"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".to_string()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
    }
}
