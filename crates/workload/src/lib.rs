//! # graphsi-workload
//!
//! Synthetic workload generators and anomaly probes for the graphsi
//! experiments. The paper evaluated its Neo4j modification inside the
//! CoherentPaaS project with workloads that are not publicly available, so
//! this crate provides the synthetic equivalents that exercise the same
//! code paths:
//!
//! * [`graph_gen`] — power-law (social network), uniform random and ring
//!   graph generators;
//! * [`zipf`] — skewed (hotspot) access sampling;
//! * [`mixes`] — multi-threaded read/write transaction mixes with
//!   throughput, latency and abort-rate reporting;
//! * [`probes`] — controlled interleavings that count unrepeatable reads,
//!   phantoms and write skew per isolation level;
//! * [`report`] — plain-text result tables for the experiment harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph_gen;
pub mod mixes;
pub mod probes;
pub mod report;
pub mod zipf;

pub use graph_gen::{build_graph, build_tree, GeneratedGraph, GraphShape, GraphSpec};
pub use mixes::{run_mix, MixReport, MixSpec};
pub use probes::{phantom_read_probe, unrepeatable_read_probe, write_skew_probe, ProbeReport};
pub use report::Table;
pub use zipf::Zipfian;
