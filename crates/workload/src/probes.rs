//! Anomaly probes: controlled interleavings that count how often the
//! read-committed anomalies (unrepeatable reads, phantoms) and the one
//! snapshot-isolation anomaly (write skew) actually occur.
//!
//! Each probe runs the *same* workload under a given isolation level and
//! reports the number of anomalous observations, so experiments E1–E3 can
//! print an "anomalies observed" table per isolation level.

use graphsi_core::traversal;
use graphsi_core::{Direction, GraphDb, IsolationLevel, NodeId, PropertyValue, Result};

/// Result of an anomaly probe.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProbeReport {
    /// Number of probe rounds executed.
    pub rounds: u64,
    /// Number of rounds in which the anomaly was observed.
    pub anomalies: u64,
}

impl ProbeReport {
    /// Fraction of rounds exhibiting the anomaly.
    pub fn anomaly_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.anomalies as f64 / self.rounds as f64
        }
    }
}

/// E1 — unrepeatable reads during a two-step graph algorithm.
///
/// Every round a reader walks the two-hop neighbourhood of `hub` twice
/// inside one transaction while a concurrent writer rewires one spoke in
/// between. A round counts as anomalous if the two walks differ.
pub fn unrepeatable_read_probe(
    db: &GraphDb,
    isolation: IsolationLevel,
    rounds: u64,
) -> Result<ProbeReport> {
    // Build a private hub-and-spoke subgraph for the probe.
    let mut tx = db.begin();
    let hub = tx.create_node(&["ProbeHub"], &[])?;
    let mut spokes = Vec::new();
    for _ in 0..8 {
        let spoke = tx.create_node(&["ProbeSpoke"], &[])?;
        tx.create_relationship(hub, spoke, "SPOKE", &[])?;
        spokes.push(spoke);
    }
    tx.commit()?;

    // The two-step read, expressed through the streaming query builder:
    // one sorted hub expansion per step.
    let hub_neighbors = |tx: &graphsi_core::Transaction| -> Result<Vec<NodeId>> {
        let mut out = tx
            .query()
            .start_nodes([hub])
            .expand(Direction::Both, Some("SPOKE"))
            .distinct()
            .ids()?;
        out.sort();
        Ok(out)
    };

    let mut report = ProbeReport::default();
    for round in 0..rounds {
        let reader = db.txn().isolation(isolation).begin();
        let first = hub_neighbors(&reader)?;

        // Concurrent writer: detach one spoke and attach a fresh one.
        let victim_idx = (round % spokes.len() as u64) as usize;
        let victim = spokes[victim_idx];
        let mut writer = db.begin();
        for rel in writer.relationships_vec(victim, Direction::Both)? {
            writer.delete_relationship(rel.id)?;
        }
        let fresh = writer.create_node(&["ProbeSpoke"], &[])?;
        writer.create_relationship(hub, fresh, "SPOKE", &[])?;
        writer.commit()?;
        spokes[victim_idx] = fresh;

        let second = hub_neighbors(&reader)?;
        report.rounds += 1;
        if first != second {
            report.anomalies += 1;
        }
        drop(reader);
    }
    Ok(report)
}

/// E2 — phantom reads on a predicate (label) selection.
///
/// Every round a reader evaluates `MATCH (n:ProbePerson)` twice while a
/// concurrent writer inserts a new matching node in between. A round counts
/// as anomalous if the two result sets differ in size.
pub fn phantom_read_probe(
    db: &GraphDb,
    isolation: IsolationLevel,
    rounds: u64,
) -> Result<ProbeReport> {
    let mut tx = db.begin();
    for _ in 0..5 {
        tx.create_node(&["ProbePerson"], &[])?;
    }
    tx.commit()?;

    let mut report = ProbeReport::default();
    for _ in 0..rounds {
        let reader = db.txn().isolation(isolation).begin();
        let first = reader.query().nodes_with_label("ProbePerson").count()?;

        let mut writer = db.begin();
        writer.create_node(&["ProbePerson"], &[])?;
        writer.commit()?;

        let second = reader.query().nodes_with_label("ProbePerson").count()?;
        report.rounds += 1;
        if first != second {
            report.anomalies += 1;
        }
        drop(reader);
    }
    Ok(report)
}

/// E3 — write skew (the anomaly snapshot isolation admits).
///
/// Every round two "on-call doctors" nodes both satisfy the constraint
/// "at least one of us stays on call". Two concurrent transactions each
/// check the constraint and take a *different* doctor off call. A round is
/// anomalous if both commit and the constraint ends up violated. The
/// serializable-equivalent baseline is approximated by forcing both
/// transactions to update a shared constraint token, turning the skew into
/// a write-write conflict.
pub fn write_skew_probe(
    db: &GraphDb,
    rounds: u64,
    materialize_conflict: bool,
) -> Result<ProbeReport> {
    let mut report = ProbeReport::default();
    for round in 0..rounds {
        // Fresh pair of doctors (and a constraint token) per round.
        let mut tx = db.begin();
        let label = format!("Shift{round}");
        let a = tx.create_node(&[&label], &[("oncall", PropertyValue::Bool(true))])?;
        let b = tx.create_node(&[&label], &[("oncall", PropertyValue::Bool(true))])?;
        let token = tx.create_node(&[&label], &[("guard", PropertyValue::Int(0))])?;
        tx.commit()?;

        let on_call = |tx: &graphsi_core::Transaction, id: NodeId| -> Result<bool> {
            Ok(tx
                .node_property(id, "oncall")?
                .and_then(|v| v.as_bool())
                .unwrap_or(false))
        };

        let mut t1 = db.begin();
        let mut t2 = db.begin();
        let t1_ok = on_call(&t1, a)? && on_call(&t1, b)?;
        let t2_ok = on_call(&t2, a)? && on_call(&t2, b)?;
        let mut committed = 0;
        if t1_ok {
            let mut proceed = t1
                .set_node_property(a, "oncall", PropertyValue::Bool(false))
                .is_ok();
            if proceed && materialize_conflict {
                proceed = t1
                    .set_node_property(token, "guard", PropertyValue::Int(1))
                    .is_ok();
            }
            if proceed && t1.commit().is_ok() {
                committed += 1;
            }
        }
        if t2_ok {
            let mut proceed = t2
                .set_node_property(b, "oncall", PropertyValue::Bool(false))
                .is_ok();
            if proceed && materialize_conflict {
                proceed = t2
                    .set_node_property(token, "guard", PropertyValue::Int(2))
                    .is_ok();
            }
            if proceed && t2.commit().is_ok() {
                committed += 1;
            }
        }
        let _ = committed;

        // Check the constraint after the dust settles.
        let check = db.begin();
        let still_covered = on_call(&check, a)? || on_call(&check, b)?;
        report.rounds += 1;
        if !still_covered {
            report.anomalies += 1;
        }
    }
    Ok(report)
}

// Re-export traversal so probe users can run the two-step algorithms
// directly (kept here to mirror the experiment descriptions).
pub use traversal::friends_of_friends;

#[cfg(test)]
mod tests {
    use super::*;
    use graphsi_core::test_support::TempDir;
    use graphsi_core::DbConfig;

    fn db() -> (TempDir, GraphDb) {
        let dir = TempDir::new("probes");
        let db = GraphDb::open(dir.path(), DbConfig::default()).unwrap();
        (dir, db)
    }

    #[test]
    fn unrepeatable_reads_only_under_read_committed() {
        let (_dir, db) = db();
        let rc = unrepeatable_read_probe(&db, IsolationLevel::ReadCommitted, 10).unwrap();
        let (_dir2, db2) = self::db();
        let si = unrepeatable_read_probe(&db2, IsolationLevel::SnapshotIsolation, 10).unwrap();
        assert_eq!(rc.rounds, 10);
        assert!(rc.anomalies > 0, "read committed must exhibit the anomaly");
        assert_eq!(si.anomalies, 0, "snapshot isolation must not");
        assert!(rc.anomaly_rate() > si.anomaly_rate());
    }

    #[test]
    fn phantoms_only_under_read_committed() {
        let (_dir, db) = db();
        let rc = phantom_read_probe(&db, IsolationLevel::ReadCommitted, 10).unwrap();
        let (_dir2, db2) = self::db();
        let si = phantom_read_probe(&db2, IsolationLevel::SnapshotIsolation, 10).unwrap();
        assert!(rc.anomalies > 0);
        assert_eq!(si.anomalies, 0);
    }

    #[test]
    fn write_skew_occurs_under_si_and_vanishes_when_materialized() {
        let (_dir, db) = db();
        let skew = write_skew_probe(&db, 10, false).unwrap();
        assert!(skew.anomalies > 0, "SI admits write skew");
        let (_dir2, db2) = self::db();
        let guarded = write_skew_probe(&db2, 10, true).unwrap();
        assert_eq!(
            guarded.anomalies, 0,
            "materialising the conflict restores the constraint"
        );
    }

    #[test]
    fn probe_report_rate() {
        let r = ProbeReport {
            rounds: 4,
            anomalies: 1,
        };
        assert!((r.anomaly_rate() - 0.25).abs() < 1e-9);
        assert_eq!(ProbeReport::default().anomaly_rate(), 0.0);
    }
}
