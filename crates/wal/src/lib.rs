//! # graphsi-wal
//!
//! A write-ahead log for the graphsi storage engine. The persistent store
//! (`graphsi-storage`) only ever holds the newest committed version of each
//! entity and its page cache writes back lazily, so the WAL is what makes
//! commits durable: the commit pipeline in `graphsi-core` appends an
//! encoded commit record, syncs (optionally batched / group commit), and
//! only then applies the changes to the record stores. On start-up the
//! core replays the log to bring the stores back to the last durable
//! state; a clean shutdown checkpoints (flushes all stores) and truncates
//! the log.
//!
//! The WAL itself is payload-agnostic: entries are opaque byte strings with
//! an LSN and a CRC-32 checksum. Torn tails left by crashes are detected
//! and truncated on open.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crc;
pub mod error;
pub mod log;
pub mod record;

pub use error::{Result, WalError};
pub use log::{SyncPolicy, Wal, WalScan};
pub use record::{payload_kind, AbortRangeRecord, AbortRecord, LogEntry, PayloadKind};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_api_smoke() {
        let dir = graphsi_storage::test_util::TempDir::new("wal_lib");
        let wal = Wal::open(dir.path().join("wal.log"), SyncPolicy::Always).unwrap();
        let lsn = wal.append_and_sync(b"commit:1").unwrap();
        assert_eq!(lsn, 1);
        let scan = wal.scan().unwrap();
        assert_eq!(scan.entries, vec![LogEntry::new(1, b"commit:1".to_vec())]);
    }
}
