//! # graphsi-wal
//!
//! A write-ahead log for the graphsi storage engine. The persistent store
//! (`graphsi-storage`) only ever holds the newest committed version of each
//! entity and its page cache writes back lazily, so the WAL is what makes
//! commits durable: the commit pipeline in `graphsi-core` appends an
//! encoded commit record, syncs (optionally batched / group commit), and
//! only then applies the changes to the record stores. On start-up the
//! core replays the log to bring the stores back to the last durable
//! state; a clean shutdown checkpoints (flushes all stores) and truncates
//! the log.
//!
//! The WAL itself is payload-agnostic above the bookkeeping records it
//! owns (segment headers, checkpoint markers): entries are opaque byte
//! strings with an LSN and a CRC-32 checksum. The log is **segmented** —
//! a directory of numbered files rotated at a size threshold and reclaimed
//! through a retention watermark once a checkpoint covers them — so
//! recovery replays only the retained suffix and the on-disk footprint
//! stays bounded. Torn tails left by crashes are detected and truncated
//! on open.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crc;
pub mod error;
pub mod log;
pub mod record;

pub use error::{Result, WalError};
pub use log::{is_bookkeeping, SegmentedWal, SyncPolicy, WalScan};
pub use record::{
    payload_kind, AbortRangeRecord, AbortRecord, CheckpointBeginRecord, CheckpointEndRecord,
    LogEntry, PayloadKind, SegmentHeaderRecord,
};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_api_smoke() {
        let dir = graphsi_storage::test_util::TempDir::new("wal_lib");
        let wal = SegmentedWal::open(dir.path().join("wal"), SyncPolicy::Always, 1 << 20).unwrap();
        let lsn = wal.append_and_sync(b"commit:1").unwrap();
        assert_eq!(lsn, 2, "LSN 1 is the first segment's header");
        let scan = wal.scan().unwrap();
        let data: Vec<_> = scan.entries.iter().filter(|e| !is_bookkeeping(e)).collect();
        assert_eq!(data, vec![&LogEntry::new(2, b"commit:1".to_vec())]);
    }
}
