//! The write-ahead log file: append, group sync, scan and checkpoint
//! truncation.
//!
//! The log stores opaque payloads — the commit-record encoding lives in
//! `graphsi-core` — framed and checksummed per entry. A transaction is
//! durable once its entry has been appended **and** the log has been
//! synced; the commit pipeline batches syncs (group commit) by calling
//! [`Wal::append`] for every concurrent committer and a single
//! [`Wal::sync`] afterwards, or uses [`Wal::append_and_sync`] for the
//! simple case.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use crate::error::{Result, WalError};
use crate::record::LogEntry;

/// When the log file is synced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Sync after every append (safest, slowest).
    #[default]
    Always,
    /// Sync only when [`Wal::sync`] is called explicitly (group commit) or
    /// at checkpoints. A crash may lose the most recent commits but never
    /// corrupts the log.
    OnDemand,
}

/// Result of scanning the log from disk.
#[derive(Clone, Debug, Default)]
pub struct WalScan {
    /// The valid entries, in append order.
    pub entries: Vec<LogEntry>,
    /// `true` if the scan stopped early because of a torn or corrupt tail.
    pub truncated_tail: bool,
    /// Number of bytes of valid log data.
    pub valid_bytes: u64,
}

struct WalInner {
    file: File,
    next_lsn: u64,
    appended_bytes: u64,
    unsynced: bool,
    /// Highest LSN known to have reached stable storage.
    synced_lsn: u64,
}

/// The write-ahead log.
pub struct Wal {
    path: PathBuf,
    sync_policy: SyncPolicy,
    inner: Mutex<WalInner>,
    /// Crash-testing hook: number of upcoming sync operations that fail
    /// with an injected I/O error instead of reaching the kernel. See
    /// [`Wal::fail_syncs`].
    injected_sync_failures: std::sync::atomic::AtomicU32,
    /// A second handle onto the same open file description, used by
    /// [`Wal::sync_appended`] so a group-commit leader can fsync *without*
    /// holding the append lock — concurrent committers keep appending (and
    /// joining the next batch) while the current batch is being made
    /// durable.
    sync_file: File,
}

impl Wal {
    /// Opens (creating if necessary) the log at `path`.
    ///
    /// Any torn tail left by a crash is truncated away so new appends start
    /// from a clean boundary.
    pub fn open(path: impl AsRef<Path>, sync_policy: SyncPolicy) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let scan = Self::scan_file(&path)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|source| WalError::OpenFailed {
                path: path.clone(),
                source,
            })?;
        // Drop a torn/corrupt tail so that new entries are never appended
        // after garbage.
        file.set_len(scan.valid_bytes)
            .map_err(|e| WalError::io("truncating torn WAL tail", e))?;
        let next_lsn = scan.entries.last().map_or(1, |e| e.lsn + 1);
        let sync_file = file
            .try_clone()
            .map_err(|e| WalError::io("cloning WAL handle for group sync", e))?;
        Ok(Wal {
            path,
            sync_policy,
            // Lock-order rank: see the README's lock-rank map. Ranked
            // above the commit pipeline's batcher — the group leader
            // appends its range-abort record while holding the batcher.
            inner: Mutex::with_rank(
                WalInner {
                    file,
                    next_lsn,
                    appended_bytes: scan.valid_bytes,
                    unsynced: false,
                    synced_lsn: next_lsn - 1,
                },
                2650,
                "wal.inner",
            ),
            injected_sync_failures: std::sync::atomic::AtomicU32::new(0),
            sync_file,
        })
    }

    /// Makes the next `n` sync operations ([`Wal::sync`] and
    /// [`Wal::sync_appended`]) fail with an injected I/O error without
    /// touching the file. A crash-testing hook: a real `fsync` failure
    /// cannot be provoked deterministically, yet the commit pipeline's
    /// failed-sync paths (aborting the batch, writing abort records) need
    /// coverage. Appends are unaffected, exactly like a kernel-level sync
    /// failure: the data is in the log, it just was not made durable.
    pub fn fail_syncs(&self, n: u32) {
        self.injected_sync_failures
            .store(n, std::sync::atomic::Ordering::SeqCst);
    }

    /// Consumes one injected failure if armed.
    fn take_injected_failure(&self) -> Option<WalError> {
        let counter = &self.injected_sync_failures;
        let mut current = counter.load(std::sync::atomic::Ordering::SeqCst);
        while current > 0 {
            match counter.compare_exchange(
                current,
                current - 1,
                std::sync::atomic::Ordering::SeqCst,
                std::sync::atomic::Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Some(WalError::io(
                        "syncing WAL",
                        std::io::Error::other("injected sync failure"),
                    ))
                }
                Err(observed) => current = observed,
            }
        }
        None
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sync policy this log was opened with.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// Appends a payload, returning its LSN. Syncs immediately under
    /// [`SyncPolicy::Always`].
    pub fn append(&self, payload: &[u8]) -> Result<u64> {
        let mut guard = self.inner.lock();
        let inner = &mut *guard;
        let lsn = inner.next_lsn;
        let bytes = crate::record::encode_frame(lsn, payload);
        inner
            .file
            .seek(SeekFrom::Start(inner.appended_bytes))
            .map_err(|e| WalError::io("seeking WAL", e))?;
        inner
            .file
            .write_all(&bytes)
            .map_err(|e| WalError::io("appending WAL entry", e))?;
        inner.next_lsn += 1;
        inner.appended_bytes += bytes.len() as u64;
        inner.unsynced = true;
        if self.sync_policy == SyncPolicy::Always {
            inner
                .file
                .sync_data()
                .map_err(|e| WalError::io("syncing WAL", e))?;
            inner.unsynced = false;
            inner.synced_lsn = lsn;
        }
        Ok(lsn)
    }

    /// Appends a payload and forces it to stable storage regardless of the
    /// sync policy.
    pub fn append_and_sync(&self, payload: &[u8]) -> Result<u64> {
        let lsn = self.append(payload)?;
        self.sync()?;
        Ok(lsn)
    }

    /// Forces all appended entries to stable storage (group commit).
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.unsynced {
            if let Some(err) = self.take_injected_failure() {
                return Err(err);
            }
            inner
                .file
                .sync_data()
                .map_err(|e| WalError::io("syncing WAL", e))?;
            inner.unsynced = false;
            inner.synced_lsn = inner.next_lsn - 1;
        }
        Ok(())
    }

    /// Makes every entry appended so far durable **without blocking
    /// concurrent appends**, and returns the highest LSN guaranteed stable.
    ///
    /// This is the group-commit leader's sync: the target LSN is snapshotted
    /// under the append lock, but the `fsync` itself runs on a second handle
    /// to the same file description, so followers of the *next* batch can
    /// keep appending while this batch is flushed. Entries appended after
    /// the target snapshot may or may not be covered; they stay marked
    /// unsynced and the next sync picks them up.
    pub fn sync_appended(&self) -> Result<u64> {
        let target = {
            let inner = self.inner.lock();
            if inner.synced_lsn >= inner.next_lsn - 1 {
                return Ok(inner.synced_lsn);
            }
            inner.next_lsn - 1
        };
        if let Some(err) = self.take_injected_failure() {
            return Err(err);
        }
        self.sync_file
            .sync_data()
            .map_err(|e| WalError::io("group-syncing WAL", e))?;
        let mut inner = self.inner.lock();
        if target > inner.synced_lsn {
            inner.synced_lsn = target;
        }
        inner.unsynced = inner.next_lsn - 1 > inner.synced_lsn;
        Ok(target)
    }

    /// Highest LSN known durable on stable storage.
    pub fn durable_lsn(&self) -> u64 {
        self.inner.lock().synced_lsn
    }

    /// Highest LSN appended so far (durable or not).
    pub fn last_appended_lsn(&self) -> u64 {
        self.inner.lock().next_lsn - 1
    }

    /// Scans the log from disk and returns every valid entry.
    pub fn scan(&self) -> Result<WalScan> {
        // Make sure everything appended so far is visible to the read path.
        {
            let mut inner = self.inner.lock();
            inner
                .file
                .flush()
                .map_err(|e| WalError::io("flushing WAL before scan", e))?;
        }
        Self::scan_file(&self.path)
    }

    /// Truncates the log after a checkpoint: the caller has flushed every
    /// store, so the log's contents are no longer needed for recovery.
    pub fn reset(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner
            .file
            .set_len(0)
            .map_err(|e| WalError::io("truncating WAL at checkpoint", e))?;
        inner
            .file
            .sync_data()
            .map_err(|e| WalError::io("syncing truncated WAL", e))?;
        inner.appended_bytes = 0;
        inner.unsynced = false;
        inner.synced_lsn = inner.next_lsn - 1;
        // LSNs keep increasing across checkpoints so they stay unique for
        // the lifetime of the database.
        Ok(())
    }

    /// Number of bytes of log data appended (valid entries only).
    pub fn size_bytes(&self) -> u64 {
        self.inner.lock().appended_bytes
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.inner.lock().next_lsn
    }

    fn scan_file(path: &Path) -> Result<WalScan> {
        let mut scan = WalScan::default();
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(scan),
            Err(e) => {
                return Err(WalError::OpenFailed {
                    path: path.to_path_buf(),
                    source: e,
                })
            }
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)
            .map_err(|e| WalError::io("reading WAL", e))?;
        let mut offset = 0usize;
        while offset < buf.len() {
            match LogEntry::decode(&buf[offset..], offset as u64) {
                Ok(Some((entry, consumed))) => {
                    scan.entries.push(entry);
                    offset += consumed;
                }
                Ok(None) => {
                    // Torn tail — stop here.
                    scan.truncated_tail = true;
                    break;
                }
                Err(_) => {
                    // Corrupt tail — recover everything before it.
                    scan.truncated_tail = true;
                    break;
                }
            }
        }
        scan.valid_bytes = offset as u64;
        Ok(scan)
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("next_lsn", &self.next_lsn())
            .field("size_bytes", &self.size_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphsi_storage::test_util::TempDir;

    fn wal_path(dir: &TempDir) -> PathBuf {
        dir.path().join("wal.log")
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = TempDir::new("wal_roundtrip");
        let wal = Wal::open(wal_path(&dir), SyncPolicy::Always).unwrap();
        assert_eq!(wal.append(b"first").unwrap(), 1);
        assert_eq!(wal.append(b"second").unwrap(), 2);
        let scan = wal.scan().unwrap();
        assert_eq!(scan.entries.len(), 2);
        assert_eq!(scan.entries[0].payload, b"first");
        assert_eq!(scan.entries[1].lsn, 2);
        assert!(!scan.truncated_tail);
    }

    #[test]
    fn reopen_continues_lsn_sequence() {
        let dir = TempDir::new("wal_reopen");
        let path = wal_path(&dir);
        {
            let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(b"a").unwrap();
            wal.append(b"b").unwrap();
        }
        let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(wal.next_lsn(), 3);
        assert_eq!(wal.append(b"c").unwrap(), 3);
        assert_eq!(wal.scan().unwrap().entries.len(), 3);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = TempDir::new("wal_torn");
        let path = wal_path(&dir);
        {
            let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(b"complete entry").unwrap();
        }
        // Simulate a crash mid-append: append garbage that looks like a
        // partial entry.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&crate::record::ENTRY_MAGIC.to_le_bytes())
                .unwrap();
            f.write_all(&[200u8, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        let scan = wal.scan().unwrap();
        assert_eq!(scan.entries.len(), 1);
        assert!(!scan.truncated_tail, "tail was truncated at open time");
        // Appending after recovery works and yields a clean log.
        wal.append(b"after recovery").unwrap();
        assert_eq!(wal.scan().unwrap().entries.len(), 2);
    }

    #[test]
    fn corrupt_middle_entry_stops_the_scan() {
        let dir = TempDir::new("wal_corrupt");
        let path = wal_path(&dir);
        {
            let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
        }
        // Flip a byte in the middle of the file (inside entry payloads).
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let wal = Wal::open(&path, SyncPolicy::Always).unwrap();
        let scan = wal.scan().unwrap();
        assert!(scan.entries.len() < 2);
    }

    #[test]
    fn on_demand_sync_batches() {
        let dir = TempDir::new("wal_group");
        let wal = Wal::open(wal_path(&dir), SyncPolicy::OnDemand).unwrap();
        for i in 0..10u8 {
            wal.append(&[i]).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(wal.scan().unwrap().entries.len(), 10);
    }

    #[test]
    fn reset_truncates_but_keeps_lsns_monotone() {
        let dir = TempDir::new("wal_reset");
        let wal = Wal::open(wal_path(&dir), SyncPolicy::Always).unwrap();
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.size_bytes(), 0);
        assert_eq!(wal.scan().unwrap().entries.len(), 0);
        let lsn = wal.append(b"after checkpoint").unwrap();
        assert_eq!(lsn, 3, "LSNs keep increasing across checkpoints");
        assert_eq!(wal.scan().unwrap().entries.len(), 1);
    }

    #[test]
    fn empty_log_scans_empty() {
        let dir = TempDir::new("wal_empty");
        let wal = Wal::open(wal_path(&dir), SyncPolicy::Always).unwrap();
        let scan = wal.scan().unwrap();
        assert!(scan.entries.is_empty());
        assert_eq!(scan.valid_bytes, 0);
        assert_eq!(wal.next_lsn(), 1);
    }

    #[test]
    fn sync_appended_reports_durable_watermark() {
        let dir = TempDir::new("wal_sync_appended");
        let wal = Wal::open(wal_path(&dir), SyncPolicy::OnDemand).unwrap();
        assert_eq!(wal.durable_lsn(), 0);
        assert_eq!(wal.last_appended_lsn(), 0);
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(wal.last_appended_lsn(), 2);
        assert_eq!(wal.durable_lsn(), 0, "nothing synced yet");
        assert_eq!(wal.sync_appended().unwrap(), 2);
        assert_eq!(wal.durable_lsn(), 2);
        // Idempotent when nothing new was appended.
        assert_eq!(wal.sync_appended().unwrap(), 2);
        wal.append(b"c").unwrap();
        assert_eq!(wal.durable_lsn(), 2);
        assert_eq!(wal.sync_appended().unwrap(), 3);
    }

    #[test]
    fn always_policy_keeps_durable_watermark_current() {
        let dir = TempDir::new("wal_always_watermark");
        let wal = Wal::open(wal_path(&dir), SyncPolicy::Always).unwrap();
        assert_eq!(wal.sync_policy(), SyncPolicy::Always);
        wal.append(b"a").unwrap();
        assert_eq!(wal.durable_lsn(), 1);
        wal.append(b"b").unwrap();
        assert_eq!(wal.durable_lsn(), 2);
    }

    #[test]
    fn injected_sync_failures_fail_then_clear() {
        let dir = TempDir::new("wal_inject");
        let wal = Wal::open(wal_path(&dir), SyncPolicy::OnDemand).unwrap();
        wal.append(b"a").unwrap();
        wal.fail_syncs(1);
        assert!(wal.sync_appended().is_err());
        assert_eq!(wal.durable_lsn(), 0, "a failed sync advances nothing");
        // The injection is consumed: the next sync succeeds and the data
        // (still in the log) becomes durable.
        assert_eq!(wal.sync_appended().unwrap(), 1);
        assert_eq!(wal.durable_lsn(), 1);
        wal.append(b"b").unwrap();
        wal.fail_syncs(1);
        assert!(wal.sync().is_err());
        wal.sync().unwrap();
        assert_eq!(wal.scan().unwrap().entries.len(), 2);
    }

    #[test]
    fn appends_proceed_while_group_sync_runs() {
        use std::sync::Arc;
        let dir = TempDir::new("wal_overlap");
        let wal = Arc::new(Wal::open(wal_path(&dir), SyncPolicy::OnDemand).unwrap());
        wal.append(b"seed").unwrap();
        let syncer = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    wal.sync_appended().unwrap();
                }
            })
        };
        for i in 0..200u8 {
            wal.append(&[i]).unwrap();
        }
        syncer.join().unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.durable_lsn(), 201);
        assert_eq!(wal.scan().unwrap().entries.len(), 201);
    }

    #[test]
    fn concurrent_appends_get_unique_lsns() {
        use std::sync::Arc;
        let dir = TempDir::new("wal_concurrent");
        let wal = Arc::new(Wal::open(wal_path(&dir), SyncPolicy::OnDemand).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let wal = Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                (0..100u8)
                    .map(|i| wal.append(&[t, i]).unwrap())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400);
        wal.sync().unwrap();
        assert_eq!(wal.scan().unwrap().entries.len(), 400);
    }
}
